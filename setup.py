"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works on environments without the ``wheel``
package (legacy editable installs need a ``setup.py``).
"""

from setuptools import setup

setup()

"""Benchmarks of the analytical lower bound (Theorem 1).

These cover the "theoretical model" curves used in every figure: the
unconstrained Young/Daly regime, the constrained regime where the KKT
multiplier must be found numerically, and a bandwidth sweep matching the
Figure 1 axis.
"""

from __future__ import annotations

from repro.core.lower_bound import platform_lower_bound
from repro.experiments.theory import steady_state_classes, theoretical_waste
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform


def test_bench_lower_bound_unconstrained(benchmark):
    """Lower bound when the Daly periods already satisfy the I/O constraint."""
    platform = cielo_platform(bandwidth_gbs=160.0)
    workload = apex_workload(platform)
    classes = steady_state_classes(workload, platform)
    result = benchmark(
        platform_lower_bound, classes, float(platform.num_nodes), platform.node_mtbf_s
    )
    assert not result.constrained
    assert result.lam == 0.0


def test_bench_lower_bound_constrained(benchmark):
    """Lower bound when lambda must be found numerically (scarce bandwidth)."""
    platform = cielo_platform(bandwidth_gbs=10.0)
    workload = apex_workload(platform)
    classes = steady_state_classes(workload, platform)
    result = benchmark(
        platform_lower_bound, classes, float(platform.num_nodes), platform.node_mtbf_s
    )
    assert result.constrained
    assert result.io_pressure <= 1.0 + 1e-9
    # Constrained periods are never shorter than the Daly periods.
    for period, daly in zip(result.periods, result.daly_periods):
        assert period >= daly - 1e-9


def test_bench_lower_bound_bandwidth_sweep(benchmark):
    """The full theoretical curve of Figure 1 (seven bandwidth points)."""

    def sweep() -> list[float]:
        values = []
        for bandwidth in (40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0):
            platform = cielo_platform(bandwidth_gbs=bandwidth)
            values.append(theoretical_waste(apex_workload(platform), platform).waste_fraction)
        return values

    curve = benchmark(sweep)
    print()
    print("Theoretical model, Figure 1 axis (40..160 GB/s):", [round(v, 3) for v in curve])
    # Waste decreases monotonically with bandwidth.
    assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))

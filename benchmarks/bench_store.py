"""Result-store bench: filesystem vs. SQLite throughput at 10k entries.

One synthetic workload per backend — 10 000 ``put`` calls across 100
digests, 10 000 ``probe`` reads back, one full ``stats()`` scan — timed
separately for write, read and stats.  The committed ``BENCH_store.json``
records the comparison so a regression in either backend (or a divergence
between them) shows up in review.  Both stores are verified to hold the
same values before any number is reported: throughput never buys a
different float.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_store.py -q -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.store import open_store

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_store.json"

#: Synthetic cache size: DIGESTS x SEEDS entries.
DIGESTS = 100
SEEDS = 100
STRATEGY = "least-waste"


def _digests() -> list[str]:
    return [f"{index:02x}" * 32 for index in range(DIGESTS)]


def _value(digest_index: int, seed: int) -> float:
    return (digest_index * SEEDS + seed) / (DIGESTS * SEEDS)


def _bench_backend(kind: str, path) -> dict:
    store = open_store(kind, path)
    entries = DIGESTS * SEEDS

    start = time.perf_counter()
    for index, digest in enumerate(_digests()):
        for seed in range(SEEDS):
            store.put(digest, STRATEGY, seed, _value(index, seed))
    write_s = time.perf_counter() - start

    start = time.perf_counter()
    for index, digest in enumerate(_digests()):
        for seed in range(SEEDS):
            assert store.probe(digest, STRATEGY, seed) == _value(index, seed)
    read_s = time.perf_counter() - start

    start = time.perf_counter()
    stats = store.stats()
    stats_s = time.perf_counter() - start
    assert stats.entries == entries
    assert len(store) == entries
    store.close()

    return {
        "kind": kind,
        "entries": entries,
        "write_s": round(write_s, 3),
        "writes_per_s": round(entries / write_s, 1),
        "read_s": round(read_s, 3),
        "reads_per_s": round(entries / read_s, 1),
        "stats_s": round(stats_s, 3),
    }


def test_bench_store_backends(tmp_path):
    legs = [
        _bench_backend("filesystem", tmp_path / "fs"),
        _bench_backend("sqlite", tmp_path / "db.sqlite"),
    ]
    record = {
        "benchmark": "result-store",
        "entries": DIGESTS * SEEDS,
        "digests": DIGESTS,
        "seeds_per_digest": SEEDS,
        "note": (
            "10k synthetic entries per backend: sequential put, sequential "
            "probe (every value asserted), one stats() scan; identical "
            "values verified across backends before timing is reported"
        ),
        "backends": legs,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    for leg in legs:
        print(
            f"{leg['kind']:>10}: write {leg['writes_per_s']:>8.1f}/s  "
            f"read {leg['reads_per_s']:>8.1f}/s  stats {leg['stats_s']:.3f}s"
        )
    # Sanity floor, not a race: both backends must sustain a usable rate.
    for leg in legs:
        assert leg["writes_per_s"] > 100, leg
        assert leg["reads_per_s"] > 100, leg

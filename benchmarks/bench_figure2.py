"""Figure 2 regeneration bench: waste ratio vs. node MTBF at 40 GB/s.

Reduced-scale version of the paper's Figure 2 (two MTBF points instead of
the full 2-50 year axis).  Shape checks:

* the blocking Fixed strategies stay saturated (high waste) regardless of
  the MTBF — the constrained file system, not the failures, is their
  bottleneck;
* the Daly-based cooperative strategies approach the theoretical bound once
  failures become rare;
* every strategy is at least as good at a 20-year node MTBF as at 2 years.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure2 import Figure2Config, render_figure2, run_figure2

_CONFIG = Figure2Config(
    node_mtbf_years=(2.0, 20.0),
    bandwidth_gbs=40.0,
    horizon_days=3.0,
    warmup_days=0.5,
    cooldown_days=0.5,
    num_runs=2,
    base_seed=11,
)


@pytest.fixture(scope="module")
def figure2_result():
    return run_figure2(_CONFIG)


def test_bench_figure2_sweep(benchmark, figure2_result):
    """Time the full Figure 2 sweep and print the reproduced series."""
    result = benchmark.pedantic(run_figure2, args=(_CONFIG,), rounds=1, iterations=1)
    print()
    print(render_figure2(result))

    low_mtbf = 0
    high_mtbf = len(result.parameter_values) - 1
    # Fixed blocking strategies remain expensive even when failures are rare:
    # their cost is dominated by checkpoint I/O pressure, not by failures.
    assert result.waste["oblivious-fixed"][high_mtbf].mean > 0.35
    assert result.waste["ordered-fixed"][high_mtbf].mean > 0.35
    # Cooperative Daly strategies come close to the theoretical bound at the
    # reliable end of the axis.
    assert (
        result.waste["least-waste"][high_mtbf].mean
        <= result.theory[high_mtbf] + 0.10
    )
    assert (
        result.waste["orderednb-daly"][high_mtbf].mean
        <= result.theory[high_mtbf] + 0.10
    )
    # Reliability never hurts.
    for strategy in result.strategies:
        assert (
            result.waste[strategy][high_mtbf].mean
            <= result.waste[strategy][low_mtbf].mean + 0.05
        )


def test_bench_figure2_reliable_point(benchmark):
    """Time a single highly-reliable configuration (50-year node MTBF)."""
    config = Figure2Config(
        node_mtbf_years=(50.0,),
        bandwidth_gbs=40.0,
        horizon_days=2.0,
        warmup_days=0.5,
        cooldown_days=0.5,
        num_runs=1,
        base_seed=5,
    )
    result = benchmark.pedantic(run_figure2, args=(config,), rounds=1, iterations=1)
    # With failures this rare, the Daly cooperative strategies should be well
    # under 20% waste.
    assert result.waste["least-waste"][0].mean < 0.2
    assert result.waste["orderednb-daly"][0].mean < 0.2

"""Figure 3 regeneration bench: minimum bandwidth for 80 % efficiency.

Reduced-scale version of the paper's Figure 3 on the prospective
50 000-node / 7 PB system: a single node-MTBF point and a subset of
strategies (the naive blocking baseline, the blocking Daly variant and the
two cooperative strategies), with a coarse bandwidth bisection.

Shape checks:

* the uncoordinated hourly baseline needs several times the bandwidth of the
  cooperative Least-Waste strategy to reach the same 80 % efficiency;
* Ordered-NB-Daly and Least-Waste land within the search resolution of each
  other and of the theoretical model.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure3 import Figure3Config, render_figure3, run_figure3

_CONFIG = Figure3Config(
    node_mtbf_years=(15.0,),
    strategies=("oblivious-fixed", "ordered-daly", "orderednb-daly", "least-waste"),
    horizon_days=2.0,
    warmup_days=0.25,
    cooldown_days=0.25,
    num_runs=1,
    base_seed=13,
    search_lo_tbs=0.2,
    search_hi_tbs=60.0,
    search_iterations=5,
)


@pytest.fixture(scope="module")
def figure3_result():
    return run_figure3(_CONFIG)


def test_bench_figure3_sizing(benchmark, figure3_result):
    """Time the Figure 3 sizing study and print the reproduced table."""
    result = benchmark.pedantic(run_figure3, args=(_CONFIG,), rounds=1, iterations=1)
    print()
    print(render_figure3(result))

    naive = result.min_bandwidth_tbs["oblivious-fixed"][0]
    coop = result.min_bandwidth_tbs["least-waste"][0]
    ordered_nb = result.min_bandwidth_tbs["orderednb-daly"][0]
    theory = result.theory_tbs[0]

    # Cooperation reduces the required I/O bandwidth by a large factor.
    assert naive >= 2.0 * coop
    # The two cooperative strategies need comparable bandwidth.
    assert ordered_nb <= 2.0 * coop and coop <= 2.0 * ordered_nb
    # Nothing beats the theoretical model by more than the search resolution.
    assert coop >= 0.5 * theory


def test_bench_figure3_theory_only(benchmark):
    """Time the analytical part alone (bandwidth sizing of the lower bound)."""

    def theory_sizing() -> float:
        config = Figure3Config(
            node_mtbf_years=(5.0, 15.0, 25.0),
            strategies=(),
            search_iterations=5,
        )
        result = run_figure3(config)
        return result.theory_tbs[-1]

    value = benchmark(theory_sizing)
    assert value > 0.0

"""Figure 1 regeneration bench: waste ratio vs. bandwidth on Cielo.

The bench runs a laptop-scale version of the paper's Figure 1 sweep (fewer
bandwidth points, shorter segment, fewer Monte-Carlo repetitions) and prints
the same rows the paper plots: one row per bandwidth, one column per
strategy plus the theoretical model.  The *shape* is checked programmatically:

* the blocking Fixed strategies are the worst at the lowest bandwidth;
* the cooperative strategies (Ordered-NB, Least-Waste) are within a few
  points of the theoretical lower bound;
* every strategy improves (or stays flat) when the bandwidth quadruples.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import Figure1Config, render_figure1, run_figure1

#: Laptop-scale stand-in for the paper's 40-160 GB/s sweep.
_CONFIG = Figure1Config(
    bandwidths_gbs=(40.0, 160.0),
    node_mtbf_years=2.0,
    horizon_days=3.0,
    warmup_days=0.5,
    cooldown_days=0.5,
    num_runs=2,
    base_seed=7,
)


@pytest.fixture(scope="module")
def figure1_result():
    return run_figure1(_CONFIG)


def test_bench_figure1_sweep(benchmark, figure1_result):
    """Time the full Figure 1 sweep and print the reproduced series."""
    result = benchmark.pedantic(run_figure1, args=(_CONFIG,), rounds=1, iterations=1)
    print()
    print(render_figure1(result))

    low = 0  # index of the 40 GB/s column
    high = len(result.parameter_values) - 1
    waste_low = {s: result.waste[s][low].mean for s in result.strategies}
    waste_high = {s: result.waste[s][high].mean for s in result.strategies}

    # Blocking + hourly checkpointing saturates the constrained file system.
    assert waste_low["oblivious-fixed"] > 0.55
    assert waste_low["ordered-fixed"] > 0.55
    # Cooperative strategies approach the theoretical bound at 40 GB/s.
    assert waste_low["least-waste"] <= result.theory[low] + 0.12
    assert waste_low["orderednb-daly"] <= result.theory[low] + 0.12
    # The cooperative strategies beat the oblivious baseline by a wide margin.
    assert waste_low["least-waste"] < 0.5 * waste_low["oblivious-fixed"]
    # More bandwidth never hurts (within noise).
    for strategy in result.strategies:
        assert waste_high[strategy] <= waste_low[strategy] + 0.05


def test_bench_figure1_single_point(benchmark):
    """Time a single Figure 1 cell (one bandwidth, all strategies)."""
    config = Figure1Config(
        bandwidths_gbs=(80.0,),
        horizon_days=2.0,
        warmup_days=0.5,
        cooldown_days=0.5,
        num_runs=1,
        base_seed=3,
    )
    result = benchmark.pedantic(run_figure1, args=(config,), rounds=1, iterations=1)
    assert len(result.parameter_values) == 1
    for strategy in result.strategies:
        assert 0.0 <= result.waste[strategy][0].mean <= 1.0

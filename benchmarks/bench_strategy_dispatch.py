"""Strategy-dispatch bench: spec parsing and construction overhead.

The StrategySpec redesign puts a parse + registry lookup on the path every
``make_strategy`` call takes (once per simulation run).  A simulation fires
tens of thousands of events, so dispatch must stay far below per-run noise:

* legacy-name dispatch (``make_strategy("least-waste")``) must stay within
  a small constant factor of the seed implementation's dict lookup — the
  bench asserts > 20k constructions/s, orders of magnitude above need;
* parameterized-spec dispatch (parse + validation + canonicalisation) is
  measured alongside for comparison, as is bare ``canonical_strategy``
  (the normalisation every config construction performs).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_strategy_dispatch.py -q -s
"""

from __future__ import annotations

import time

from repro.iosched.registry import canonical_strategy, make_strategy

#: Constructions per measured leg.
ROUNDS = 2_000


def _rate(func, *args, **kwargs) -> float:
    start = time.perf_counter()
    for _ in range(ROUNDS):
        func(*args, **kwargs)
    return ROUNDS / (time.perf_counter() - start)


def test_bench_strategy_dispatch():
    """Legacy and parameterized dispatch both stay negligible per run."""
    legacy = _rate(make_strategy, "least-waste")
    parameterized = _rate(make_strategy, "ordered[policy=fixed,period_s=1800]")
    normalise = _rate(canonical_strategy, "orderednb-daly")

    print()
    print(f"make_strategy('least-waste')                      : {legacy:,.0f}/s")
    print(f"make_strategy('ordered[policy=fixed,period_s=1800]'): {parameterized:,.0f}/s")
    print(f"canonical_strategy('orderednb-daly')              : {normalise:,.0f}/s")

    # One simulation run costs O(100 ms); dispatch must be microseconds.
    assert legacy > 20_000
    assert parameterized > 10_000
    assert normalise > 20_000


def test_bench_dispatch_scales_with_param_count():
    """Extra parameters add per-parameter cost, not pathological blowup."""
    one = _rate(canonical_strategy, "least-waste[mtbf_bias=2]")
    three = _rate(canonical_strategy, "least-waste[policy=fixed,period_s=900,mtbf_bias=2]")
    print()
    print(f"1 param: {one:,.0f}/s, 3 params: {three:,.0f}/s")
    assert three > one / 10

"""Distributed-spool bench: overhead vs. a pool, and the saturation curve.

Three measurements on the smoke matrix (miniature Cielo):

* ``test_bench_spool_vs_process_throughput`` — the same campaign through a
  local process pool and through a spool drained by two real ``coopckpt
  worker`` subprocesses: what the spool's generality costs on one box.
* ``test_bench_spool_resume_is_pure_cache_replay`` — a drained spool's
  re-submission must be pure cache traffic.
* ``test_bench_spool_saturation_curve`` — worker fleets of 1/2/4/8 drain
  an identical pre-filled spool under an injected parallel-filesystem
  latency model (every spool ``rename`` — claim, ack — sleeps a fixed
  ``DELAY_S``, exactly what a loaded PFS metadata server does).  Latency
  overlaps across workers, so throughput must rise with the fleet: the
  committed ``BENCH_distributed.json`` records the curve and the suite
  asserts 8 workers ≥ 3x 1 worker.  Every leg's cache is verified
  bit-identical to serial simulation — saturation never buys a different
  float.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_distributed.py -q -s
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.distributed import SpoolWorker, WorkSpool, make_task_specs
from repro.distributed import fsops
from repro.exec import ParallelRunner, ResultCache, WasteRatioTask, config_digest
from repro.scenarios.presets import make_campaign
from repro.scenarios.runner import CampaignRunner
from repro.stats.montecarlo import derive_seeds

#: Worker count of both legs (process pool size and spool daemons).
WORKERS = 2

#: Monte-Carlo repetitions per (scenario, strategy) cell.
NUM_RUNS = 4


def _campaign():
    return make_campaign("smoke", num_runs=NUM_RUNS, horizon_days=0.5)


def _seed_count(campaign) -> int:
    return sum(len(s.strategies) * s.num_runs for s in campaign.scenarios())


def _start_worker(spool_dir, cache_dir) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--spool", str(spool_dir), "--cache-dir", str(cache_dir),
            "--poll-interval", "0.05", "--idle-timeout", "60", "--quiet",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def test_bench_spool_vs_process_throughput(tmp_path):
    campaign = _campaign()
    seeds = _seed_count(campaign)

    start = time.perf_counter()
    with ParallelRunner(backend="process", workers=WORKERS) as pool_runner:
        pool_result = CampaignRunner(runner=pool_runner).run(campaign)
    process_s = time.perf_counter() - start

    spool_dir, cache_dir = tmp_path / "spool", tmp_path / "cache"
    workers = [_start_worker(spool_dir, cache_dir) for _ in range(WORKERS)]
    runner = ParallelRunner(
        backend="spool",
        spool_dir=spool_dir,
        cache_dir=cache_dir,
        spool_poll_s=0.02,
        spool_timeout_s=600.0,
    )
    try:
        start = time.perf_counter()
        spool_result = CampaignRunner(runner=runner).run(campaign)
        spool_s = time.perf_counter() - start
    finally:
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.wait(timeout=30)

    # Distribution must not change a single bit of the result.
    assert spool_result == pool_result
    assert runner.stats.remote_seeds == seeds
    assert WorkSpool(spool_dir).status().drained

    print()
    print(
        f"{seeds} seeds: process x{WORKERS} {process_s:.2f}s "
        f"({seeds / process_s:.1f}/s) vs spool x{WORKERS} {spool_s:.2f}s "
        f"({seeds / spool_s:.1f}/s) -> spool overhead {spool_s / process_s:.2f}x"
    )
    # Sanity floor only: the batch is tiny (sub-second simulations), so the
    # spool's fixed costs — worker interpreter startup, per-task spec files,
    # polling — dominate here; real campaigns amortise them.  The bound just
    # catches pathological stalls (lost tasks would hit the 600s timeout).
    assert spool_s < max(process_s * 40.0, 30.0)


def test_bench_spool_resume_is_pure_cache_replay(tmp_path):
    """After a drained run, re-submitting touches neither spool nor workers."""
    campaign = _campaign()
    spool_dir, cache_dir = tmp_path / "spool", tmp_path / "cache"

    workers = [_start_worker(spool_dir, cache_dir) for _ in range(WORKERS)]
    warm = ParallelRunner(
        backend="spool", spool_dir=spool_dir, cache_dir=cache_dir,
        spool_poll_s=0.02, spool_timeout_s=600.0,
    )
    try:
        warm_result = CampaignRunner(runner=warm).run(campaign)
    finally:
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.wait(timeout=30)

    # No workers running at all: the replay must still complete, from cache.
    replay = ParallelRunner(
        backend="spool", spool_dir=spool_dir, cache_dir=cache_dir, spool_timeout_s=5.0
    )
    start = time.perf_counter()
    replay_result = CampaignRunner(runner=replay).run(campaign)
    replay_s = time.perf_counter() - start

    assert replay_result == warm_result
    assert replay.stats.remote_seeds == 0
    assert replay.stats.cache_hits == _seed_count(campaign)
    print()
    print(
        f"spool resume: {replay.stats.cache_hits / replay_s:,.0f} results/s "
        f"({replay_s * 1e3:.1f} ms total), zero spool traffic"
    )


# ------------------------------------------------------------ saturation
#: Fleet sizes of the saturation curve.
WORKER_CURVE = (1, 2, 4, 8)

#: Injected sleep per spool rename — the parallel-filesystem latency model.
#: Sleeps release the GIL and overlap across worker threads, so the curve
#: measures the spool's concurrency, not this machine's core count.
DELAY_S = 0.06

#: Seeds per campaign cell (one single-seed spec each: 8 cells x 4 specs).
SAT_NUM_RUNS = 4
SAT_HORIZON_DAYS = 0.25

#: Where the committed saturation record lives (CI uploads it as artifact).
BENCH_JSON = Path(__file__).resolve().parent / "BENCH_distributed.json"


def _saturation_cells():
    """The smoke matrix as (digest, strategy, seeds, specs) rows: each cell
    is one digest — one spool shard — holding one spec per seed."""
    campaign = make_campaign(
        "smoke", num_runs=SAT_NUM_RUNS, horizon_days=SAT_HORIZON_DAYS
    )
    cells = []
    for scenario in campaign.scenarios():
        seeds = derive_seeds(scenario.base_seed, scenario.num_runs)
        for strategy in scenario.strategies:
            config = scenario.config(strategy)
            digest = config_digest(config)
            specs = make_task_specs(
                WasteRatioTask(config), digest, strategy, seeds, chunk_size=1
            )
            cells.append((config, digest, strategy, seeds, specs))
    return cells


def _drain_with_fleet(spool_dir, cache_dir, workers: int) -> tuple[float, dict]:
    """Drain the spool with ``workers`` threads; wall seconds + fleet stats."""
    fleet = [
        SpoolWorker(
            WorkSpool(spool_dir, lease_ttl_s=30.0),
            ResultCache(cache_dir),
            worker_id=f"sat-{workers}w-{index}",
            poll_interval_s=0.01,
            batch_size=4,
        )
        for index in range(workers)
    ]
    threads = [
        threading.Thread(target=worker.run, kwargs={"drain": True}, daemon=True)
        for worker in fleet
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    wall_s = time.perf_counter() - start
    totals = {
        "tasks_done": sum(worker.stats.tasks_done for worker in fleet),
        "batches_claimed": sum(worker.stats.batches_claimed for worker in fleet),
        "cache_hits": sum(worker.stats.cache_hits for worker in fleet),
        "lease_reclaims": sum(worker.stats.lease_reclaims for worker in fleet),
    }
    return wall_s, totals


def test_bench_spool_saturation_curve(tmp_path):
    cells = _saturation_cells()
    all_specs = [spec for *_, specs in cells for spec in specs]
    num_seeds = sum(len(seeds) for _, _, _, seeds, _ in cells)

    # Serial ground truth, simulated once: every leg must reproduce it.
    serial = {
        (digest, strategy): ParallelRunner().run_config(config, seeds)
        for config, digest, strategy, seeds, _ in cells
    }

    curve = []
    for workers in WORKER_CURVE:
        spool_dir = tmp_path / f"spool-{workers}w"
        cache_dir = tmp_path / f"cache-{workers}w"
        spool = WorkSpool(spool_dir)
        assert spool.enqueue_many(list(all_specs)) == len(all_specs)

        previous_hook = fsops.install_fault_hook(
            fsops.FaultInjector(delay_s=DELAY_S, ops=frozenset({"rename"}))
        )
        try:
            wall_s, totals = _drain_with_fleet(spool_dir, cache_dir, workers)
        finally:
            fsops.install_fault_hook(previous_hook)

        assert spool.status().drained
        assert totals["tasks_done"] == len(all_specs)
        cache = ResultCache(cache_dir)
        for config, digest, strategy, seeds, _ in cells:
            drained = [cache.get(digest, strategy, seed) for seed in seeds]
            assert drained == serial[(digest, strategy)]  # bit-identical
        curve.append(
            {
                "workers": workers,
                "wall_s": round(wall_s, 3),
                "seeds_per_s": round(num_seeds / wall_s, 2),
                **totals,
            }
        )

    base = curve[0]["wall_s"]
    for row in curve:
        row["speedup_vs_1w"] = round(base / row["wall_s"], 2)
    record = {
        "benchmark": "spool-saturation",
        "preset": "smoke",
        "cells": len(cells),
        "specs": len(all_specs),
        "seeds": num_seeds,
        "worker_batch_size": 4,
        "latency_model": {
            "delay_s": DELAY_S,
            "ops": ["rename"],
            "note": (
                "every spool rename (batch claim, per-task ack) sleeps "
                "delay_s, modelling PFS metadata latency; sleeps overlap "
                "across workers, so the curve isolates spool concurrency"
            ),
        },
        "curve": curve,
        "speedup_8w_vs_1w": curve[-1]["speedup_vs_1w"],
        "bit_identical_to_serial": True,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    print()
    for row in curve:
        print(
            f"  {row['workers']}w: {row['wall_s']:.2f}s "
            f"({row['seeds_per_s']:.1f} seeds/s, x{row['speedup_vs_1w']:.2f})"
        )
    # The acceptance floor: the spool must actually saturate — eight
    # latency-bound workers at least 3x one.
    assert curve[-1]["speedup_vs_1w"] >= 3.0, curve

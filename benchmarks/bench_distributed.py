"""Distributed-spool bench: process pool vs. a 2-worker filesystem spool.

Runs the same batch of campaign cells (the smoke matrix on the miniature
Cielo) through the ``"process"`` backend and through the ``"spool"`` backend
drained by two real ``coopckpt worker`` subprocesses, asserting bit-identical
results and reporting both throughputs.  The spool carries per-task spec
files, lease heartbeats and cache polling, so some overhead over a local
pool is expected — the point of the spool is scaling *across machines*, and
this bench quantifies what that generality costs on one box.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_distributed.py -q -s
"""

from __future__ import annotations

import subprocess
import sys
import time

from repro.distributed import WorkSpool
from repro.exec import ParallelRunner
from repro.scenarios.presets import make_campaign
from repro.scenarios.runner import CampaignRunner

#: Worker count of both legs (process pool size and spool daemons).
WORKERS = 2

#: Monte-Carlo repetitions per (scenario, strategy) cell.
NUM_RUNS = 4


def _campaign():
    return make_campaign("smoke", num_runs=NUM_RUNS, horizon_days=0.5)


def _seed_count(campaign) -> int:
    return sum(len(s.strategies) * s.num_runs for s in campaign.scenarios())


def _start_worker(spool_dir, cache_dir) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--spool", str(spool_dir), "--cache-dir", str(cache_dir),
            "--poll-interval", "0.05", "--idle-timeout", "60", "--quiet",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def test_bench_spool_vs_process_throughput(tmp_path):
    campaign = _campaign()
    seeds = _seed_count(campaign)

    start = time.perf_counter()
    with ParallelRunner(backend="process", workers=WORKERS) as pool_runner:
        pool_result = CampaignRunner(runner=pool_runner).run(campaign)
    process_s = time.perf_counter() - start

    spool_dir, cache_dir = tmp_path / "spool", tmp_path / "cache"
    workers = [_start_worker(spool_dir, cache_dir) for _ in range(WORKERS)]
    runner = ParallelRunner(
        backend="spool",
        spool_dir=spool_dir,
        cache_dir=cache_dir,
        spool_poll_s=0.02,
        spool_timeout_s=600.0,
    )
    try:
        start = time.perf_counter()
        spool_result = CampaignRunner(runner=runner).run(campaign)
        spool_s = time.perf_counter() - start
    finally:
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.wait(timeout=30)

    # Distribution must not change a single bit of the result.
    assert spool_result == pool_result
    assert runner.stats.remote_seeds == seeds
    assert WorkSpool(spool_dir).status().drained

    print()
    print(
        f"{seeds} seeds: process x{WORKERS} {process_s:.2f}s "
        f"({seeds / process_s:.1f}/s) vs spool x{WORKERS} {spool_s:.2f}s "
        f"({seeds / spool_s:.1f}/s) -> spool overhead {spool_s / process_s:.2f}x"
    )
    # Sanity floor only: the batch is tiny (sub-second simulations), so the
    # spool's fixed costs — worker interpreter startup, per-task spec files,
    # polling — dominate here; real campaigns amortise them.  The bound just
    # catches pathological stalls (lost tasks would hit the 600s timeout).
    assert spool_s < max(process_s * 40.0, 30.0)


def test_bench_spool_resume_is_pure_cache_replay(tmp_path):
    """After a drained run, re-submitting touches neither spool nor workers."""
    campaign = _campaign()
    spool_dir, cache_dir = tmp_path / "spool", tmp_path / "cache"

    workers = [_start_worker(spool_dir, cache_dir) for _ in range(WORKERS)]
    warm = ParallelRunner(
        backend="spool", spool_dir=spool_dir, cache_dir=cache_dir,
        spool_poll_s=0.02, spool_timeout_s=600.0,
    )
    try:
        warm_result = CampaignRunner(runner=warm).run(campaign)
    finally:
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.wait(timeout=30)

    # No workers running at all: the replay must still complete, from cache.
    replay = ParallelRunner(
        backend="spool", spool_dir=spool_dir, cache_dir=cache_dir, spool_timeout_s=5.0
    )
    start = time.perf_counter()
    replay_result = CampaignRunner(runner=replay).run(campaign)
    replay_s = time.perf_counter() - start

    assert replay_result == warm_result
    assert replay.stats.remote_seeds == 0
    assert replay.stats.cache_hits == _seed_count(campaign)
    print()
    print(
        f"spool resume: {replay.stats.cache_hits / replay_s:,.0f} results/s "
        f"({replay_s * 1e3:.1f} ms total), zero spool traffic"
    )

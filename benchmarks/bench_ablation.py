"""Ablation benches: fixed-period sensitivity and interference-model impact.

These back the design-choice discussion in DESIGN.md §5: how much of the
Fixed strategies' loss comes from the specific one-hour choice, and how the
linear-interference assumption affects the Oblivious results.
"""

from __future__ import annotations

from repro.experiments.ablation import (
    fixed_period_ablation,
    interference_model_ablation,
    render_ablation,
)
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform

_PLATFORM = cielo_platform(bandwidth_gbs=60.0, node_mtbf_years=2.0)
_WORKLOAD = tuple(apex_workload(_PLATFORM))


def test_bench_fixed_period_ablation(benchmark):
    """Sensitivity of Ordered-Fixed to the fixed checkpoint period."""

    def run():
        return fixed_period_ablation(
            _PLATFORM,
            _WORKLOAD,
            strategy="ordered-fixed",
            periods_hours=(0.5, 1.0, 2.0),
            horizon_days=2.0,
            num_runs=1,
            base_seed=0,
        )

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_ablation("Fixed-period ablation (Cielo, 60 GB/s, 2-year node MTBF)", cells))
    # Checkpointing twice as often as the default hour is never better on
    # this failure rate, and the half-hour period is the worst of the three.
    half_hour, one_hour, two_hours = (cell.waste.mean for cell in cells)
    assert half_hour >= one_hour - 0.02
    assert half_hour >= two_hours - 0.02


def test_bench_interference_model_ablation(benchmark):
    """Adversarial interference hurts Oblivious, leaves Least-Waste untouched."""

    def run():
        oblivious = interference_model_ablation(
            _PLATFORM,
            _WORKLOAD,
            strategy="oblivious-daly",
            alphas=(0.0, 1.0),
            horizon_days=2.0,
            num_runs=1,
            base_seed=1,
        )
        cooperative = interference_model_ablation(
            _PLATFORM,
            _WORKLOAD,
            strategy="least-waste",
            alphas=(0.0, 1.0),
            horizon_days=2.0,
            num_runs=1,
            base_seed=1,
        )
        return oblivious, cooperative

    oblivious, cooperative = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_ablation("Interference ablation — oblivious-daly", oblivious))
    print(render_ablation("Interference ablation — least-waste", cooperative))
    # Oblivious suffers under the adversarial model...
    assert oblivious[1].waste.mean >= oblivious[0].waste.mean - 1e-9
    # ...while the serialized cooperative strategy is essentially unaffected.
    assert abs(cooperative[1].waste.mean - cooperative[0].waste.mean) < 0.02

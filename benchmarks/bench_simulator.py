"""Simulator micro/meso benchmarks and strategy ablation.

These benches time the substrate itself (the discrete-event engine and the
shared-bandwidth I/O model) and one full simulation run per strategy, which
doubles as the ablation study called out in DESIGN.md: blocking vs.
non-blocking waits, Fixed vs. Daly periods, FCFS vs. least-waste token
granting all appear as separately-timed (and separately-checked) cells.
"""

from __future__ import annotations

import pytest

from repro.platform.io_subsystem import IOSubsystem
from repro.sim.engine import SimulationEngine
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulation
from repro.units import DAY, GB
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform
from repro.iosched.registry import STRATEGIES


def test_bench_engine_event_throughput(benchmark):
    """Raw event throughput of the DES engine (100k chained events)."""

    def run_chain() -> int:
        engine = SimulationEngine()
        count = 0

        def tick() -> None:
            nonlocal count
            count += 1
            if count < 100_000:
                engine.schedule(1.0, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return count

    assert benchmark(run_chain) == 100_000


def test_bench_io_subsystem_fair_share(benchmark):
    """Weighted fair-share transfer completion with heavy churn."""

    def run_transfers() -> int:
        engine = SimulationEngine()
        io = IOSubsystem(engine, bandwidth_bytes_per_s=100.0 * GB)
        completed = []
        for index in range(500):
            engine.schedule_at(
                float(index),
                lambda i=index: io.start(
                    10.0 * GB, weight=float(1 + i % 7), on_complete=completed.append
                ),
            )
        engine.run()
        return len(completed)

    assert benchmark(run_transfers) == 500


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_bench_simulation_by_strategy(benchmark, strategy):
    """One short Cielo/APEX simulation per strategy (ablation grid)."""
    platform = cielo_platform(bandwidth_gbs=60.0)
    config = SimulationConfig(
        platform=platform,
        classes=tuple(apex_workload(platform)),
        strategy=strategy,
        horizon_s=2.0 * DAY,
        warmup_s=0.5 * DAY,
        cooldown_s=0.5 * DAY,
        seed=42,
    )

    def run_once():
        return Simulation(config).run()

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert 0.0 <= result.waste_ratio <= 1.0
    assert result.node_utilization > 0.9

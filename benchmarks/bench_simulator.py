"""Simulator micro/meso benchmarks, strategy ablation and the kernel race.

These benches time the substrate itself (the discrete-event engine and the
shared-bandwidth I/O model) and one full simulation run per strategy, which
doubles as the ablation study called out in DESIGN.md: blocking vs.
non-blocking waits, Fixed vs. Daly periods, FCFS vs. least-waste token
granting all appear as separately-timed (and separately-checked) cells.

The *kernel race* benches the per-seed end-to-end hot path on the benched
cell — the prospective 50 000-node platform of §6.2, where the reference
node pool's linear scans dominate — once per registered simulator kernel,
and asserts the kernels agree float-for-float while racing.  Running this
module directly re-measures the cell and rewrites the committed baseline::

    PYTHONPATH=src python benchmarks/bench_simulator.py --json benchmarks/BENCH_simulator.json
"""

from __future__ import annotations

import json
import time

import pytest

from repro.platform.io_subsystem import IOSubsystem
from repro.sim.engine import SimulationEngine
from repro.sim.kernel import kernel_names
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulation
from repro.units import DAY, GB
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform
from repro.workloads.prospective import prospective_platform, prospective_workload
from repro.iosched.registry import STRATEGIES

#: The benched cell of the kernel race: one §6.2 prospective scenario
#: (50 000 nodes, 1 TB/s) under least-waste, 8 seeds end to end.
BENCHED_CELL = {
    "platform": "prospective",
    "bandwidth_tbs": 1.0,
    "strategy": "least-waste",
    "horizon_days": 2.0,
    "warmup_days": 0.5,
    "cooldown_days": 0.5,
    "seeds": list(range(8)),
}


def benched_cell_config(kernel: str | None, seed: int) -> SimulationConfig:
    """One seed of the benched cell, pinned to ``kernel``."""
    platform = prospective_platform(bandwidth_tbs=BENCHED_CELL["bandwidth_tbs"])
    return SimulationConfig(
        platform=platform,
        classes=tuple(prospective_workload(platform)),
        strategy=BENCHED_CELL["strategy"],
        horizon_s=BENCHED_CELL["horizon_days"] * DAY,
        warmup_s=BENCHED_CELL["warmup_days"] * DAY,
        cooldown_s=BENCHED_CELL["cooldown_days"] * DAY,
        seed=seed,
        kernel=kernel,
    )


def run_benched_cell(kernel: str) -> tuple[float, list[float]]:
    """Run every seed of the benched cell; (seconds per seed, waste ratios)."""
    seeds = BENCHED_CELL["seeds"]
    wastes = []
    start = time.perf_counter()
    for seed in seeds:
        wastes.append(Simulation(benched_cell_config(kernel, seed)).run().waste_ratio)
    return (time.perf_counter() - start) / len(seeds), wastes


def test_bench_engine_event_throughput(benchmark):
    """Raw event throughput of the DES engine (100k chained events)."""

    def run_chain() -> int:
        engine = SimulationEngine()
        count = 0

        def tick() -> None:
            nonlocal count
            count += 1
            if count < 100_000:
                engine.schedule(1.0, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return count

    assert benchmark(run_chain) == 100_000


def test_bench_io_subsystem_fair_share(benchmark):
    """Weighted fair-share transfer completion with heavy churn."""

    def run_transfers() -> int:
        engine = SimulationEngine()
        io = IOSubsystem(engine, bandwidth_bytes_per_s=100.0 * GB)
        completed = []
        for index in range(500):
            engine.schedule_at(
                float(index),
                lambda i=index: io.start(
                    10.0 * GB, weight=float(1 + i % 7), on_complete=completed.append
                ),
            )
        engine.run()
        return len(completed)

    assert benchmark(run_transfers) == 500


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_bench_simulation_by_strategy(benchmark, strategy):
    """One short Cielo/APEX simulation per strategy (ablation grid)."""
    platform = cielo_platform(bandwidth_gbs=60.0)
    config = SimulationConfig(
        platform=platform,
        classes=tuple(apex_workload(platform)),
        strategy=strategy,
        horizon_s=2.0 * DAY,
        warmup_s=0.5 * DAY,
        cooldown_s=0.5 * DAY,
        seed=42,
    )

    def run_once():
        return Simulation(config).run()

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert 0.0 <= result.waste_ratio <= 1.0
    assert result.node_utilization > 0.9


@pytest.mark.parametrize("kernel", sorted(kernel_names()))
def test_bench_per_seed_kernel_race(benchmark, kernel):
    """Per-seed end-to-end time of the benched cell, one bench per kernel.

    The equivalence contract is asserted while racing: every kernel's waste
    ratios must equal the reference's exactly (see
    tests/test_kernel_equivalence.py for the full suite).
    """
    config = benched_cell_config(kernel, seed=0)
    result = benchmark.pedantic(lambda: Simulation(config).run(), rounds=2, iterations=1)
    reference = Simulation(benched_cell_config("python", seed=0)).run()
    assert result == reference


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="Re-measure the kernel-race baseline")
    parser.add_argument("--json", default=None, help="write the baseline to this path")
    args = parser.parse_args(argv)

    kernels = sorted(kernel_names())
    run_benched_cell("python")  # warm imports and caches before timing
    timings: dict[str, float] = {}
    wastes: dict[str, list[float]] = {}
    for kernel in kernels:
        seconds, ratios = run_benched_cell(kernel)
        timings[kernel], wastes[kernel] = seconds, ratios
        print(f"{kernel:>8}: {seconds * 1e3:8.2f} ms/seed")
    for kernel in kernels:
        if wastes[kernel] != wastes["python"]:
            raise SystemExit(f"kernel {kernel!r} violated the equivalence contract")
    baseline = {
        "benched_cell": BENCHED_CELL,
        "ms_per_seed": {k: round(t * 1e3, 2) for k, t in timings.items()},
        "speedup_vs_python": {
            k: round(timings["python"] / timings[k], 2) for k in kernels
        },
        "waste_ratios": wastes["python"],
    }
    print(f"speedup: {baseline['speedup_vs_python']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"baseline written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmark + regeneration of Table 1 (APEX workload characteristics).

Running ``pytest benchmarks/bench_table1.py --benchmark-only -s`` prints the
reproduced table alongside the timing of its construction.
"""

from __future__ import annotations

from repro.experiments.table1 import render_table1, table1_rows
from repro.workloads.apex import APEX_TABLE, apex_workload
from repro.workloads.cielo import CIELO


def test_bench_table1_render(benchmark):
    """Time the regeneration of Table 1 and print it."""
    text = benchmark(render_table1, CIELO)
    print()
    print(text)
    # The rendered table must contain every class and every row label.
    for spec in APEX_TABLE:
        assert spec.name in text
    assert "Workload percentage" in text
    assert "Checkpoint Size (% of memory)" in text


def test_bench_table1_workload_instantiation(benchmark):
    """Time the conversion of Table 1 percentages into absolute volumes."""
    classes = benchmark(apex_workload, CIELO)
    assert len(classes) == len(APEX_TABLE)
    rows = table1_rows()
    assert rows[0]["EAP"] == 66.0

"""Parallel-runner bench: serial vs. process-pool speedup and cache hits.

Two measurements on a Figure-1-style cell (Cielo + APEX workload at a
constrained 80 GB/s, Least-Waste strategy):

* serial execution vs. a 4-worker process pool over the same derived seeds —
  asserts a >1.5x wall-clock speedup when the machine has at least 4 CPUs
  (on smaller machines the speedup is printed but not asserted);
* cache-hit throughput — a second pass over a warmed on-disk cache must
  touch zero simulations and replay thousands of results per second.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_runner.py -q -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro.exec import ParallelRunner
from repro.experiments.runner import ExperimentCell, run_cell
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform

#: Workers used by the parallel leg (the acceptance configuration).
WORKERS = 4


def _figure1_cell(num_runs: int) -> ExperimentCell:
    """One Figure-1 cell: Cielo at 80 GB/s, 2-year node MTBF, Least-Waste."""
    platform = cielo_platform(bandwidth_gbs=80.0, node_mtbf_years=2.0)
    return ExperimentCell(
        platform=platform,
        workload=tuple(apex_workload(platform)),
        strategy="least-waste",
        horizon_days=6.0,
        warmup_days=1.0,
        cooldown_days=1.0,
        num_runs=num_runs,
        base_seed=7,
    )


def test_bench_parallel_speedup(benchmark):
    """Serial vs. 4-worker process pool on one Figure-1-style cell."""
    cell = _figure1_cell(num_runs=16)

    start = time.perf_counter()
    serial_summary = run_cell(cell)
    serial_s = time.perf_counter() - start

    parallel_runner = ParallelRunner(backend="process", workers=WORKERS)
    parallel_summary = benchmark.pedantic(
        run_cell, args=(cell,), kwargs={"runner": parallel_runner}, rounds=1, iterations=1
    )
    parallel_s = benchmark.stats.stats.mean

    # Parallel dispatch must not change a single bit of the result.
    assert parallel_summary == serial_summary

    speedup = serial_s / parallel_s
    print()
    print(
        f"serial {serial_s:.2f}s vs {WORKERS} workers {parallel_s:.2f}s "
        f"-> speedup {speedup:.2f}x on {os.cpu_count()} CPUs"
    )
    if (os.cpu_count() or 1) >= WORKERS:
        assert speedup > 1.5
    else:
        pytest.skip(f"only {os.cpu_count()} CPUs: speedup {speedup:.2f}x reported, not asserted")


def test_bench_cache_hit_throughput(benchmark, tmp_path):
    """Replaying a warmed cache touches zero simulations."""
    cell = _figure1_cell(num_runs=16)
    warm = ParallelRunner(cache_dir=tmp_path)
    warm_summary = run_cell(cell, runner=warm)
    assert warm.stats.tasks_run == cell.num_runs

    cached_runner = ParallelRunner(cache_dir=tmp_path)
    cached_summary = benchmark.pedantic(
        run_cell, args=(cell,), kwargs={"runner": cached_runner}, rounds=1, iterations=1
    )
    replay_s = benchmark.stats.stats.mean

    assert cached_summary == warm_summary
    assert cached_runner.stats.tasks_run == 0  # the cache absorbed every seed
    assert cached_runner.stats.cache_hits == cell.num_runs
    print()
    print(f"cache replay: {cell.num_runs / replay_s:,.0f} results/s ({replay_s * 1e3:.1f} ms total)")

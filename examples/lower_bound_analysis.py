#!/usr/bin/env python3
"""Theorem 1 in practice: constrained vs. unconstrained checkpoint periods.

This example studies the analytical side of the paper without running any
simulation.  For a range of file-system bandwidths it computes:

* the Young/Daly period of each APEX class,
* the aggregate I/O pressure F of Eq. (6) if every class used its Daly
  period,
* when F would exceed 1, the KKT-optimal constrained periods of Eq. (8) and
  the value of the multiplier lambda,
* the resulting lower bound on the platform waste (Theorem 1).

It shows the key insight of §4: below a certain bandwidth the Young/Daly
periods are simply not feasible for the whole platform, and some classes
must checkpoint less often than their individually-optimal rate.

Usage::

    python examples/lower_bound_analysis.py --bandwidths 5 10 20 40 80 160
"""

from __future__ import annotations

import argparse

from repro.core.lower_bound import io_pressure
from repro.experiments.theory import steady_state_classes, theoretical_waste
from repro.units import HOUR
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bandwidths", type=float, nargs="+", default=[5.0, 10.0, 20.0, 40.0, 80.0, 160.0],
        help="bandwidth points in GB/s",
    )
    parser.add_argument("--node-mtbf-years", type=float, default=2.0)
    args = parser.parse_args()

    header = (
        f"{'BW (GB/s)':>10} {'F(Daly)':>9} {'lambda':>12} {'waste bound':>12} "
        f"{'efficiency':>11}  periods (h, per class)"
    )
    print(header)
    print("-" * len(header))
    for bandwidth in args.bandwidths:
        platform = cielo_platform(
            bandwidth_gbs=bandwidth, node_mtbf_years=args.node_mtbf_years
        )
        workload = apex_workload(platform)
        classes = steady_state_classes(workload, platform)
        bound = theoretical_waste(workload, platform)
        daly_pressure = io_pressure(bound.daly_periods, classes)
        periods = " ".join(
            f"{name}={period / HOUR:.2f}"
            for name, period in zip(bound.class_names, bound.periods)
        )
        print(
            f"{bandwidth:>10g} {daly_pressure:>9.3f} {bound.lam:>12.3e} "
            f"{bound.waste:>12.3f} {bound.efficiency:>11.3f}  {periods}"
        )

    print()
    print(
        "When F(Daly) exceeds 1 the file system cannot absorb every class's "
        "Young/Daly checkpoint traffic even perfectly serialized; lambda "
        "becomes positive and the optimal periods stretch beyond Daly's."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario-campaign walkthrough: a custom platform/failure/workload matrix.

Builds a campaign from scratch — a miniature Cielo swept over file-system
bandwidth crossed with the failure model (exponential vs. bursty Weibull) —
runs it through the shared execution subsystem, and prints the
cross-scenario comparison table plus per-cell candlestick statistics.

Pass ``--cache-dir`` to make re-runs instantaneous (only unseen cells are
simulated) and ``--workers`` to fan repetitions out over processes; both
leave the table byte-identical.

Usage::

    python examples/campaign_matrix.py --num-runs 3 --workers 2
"""

from __future__ import annotations

import argparse

from repro.exec.runner import ParallelRunner
from repro.platform.failures import FailureModel
from repro.scenarios.campaign import Axis, AxisPoint, Campaign
from repro.scenarios.presets import mini_apex_workload, mini_cielo_platform
from repro.scenarios.report import render_campaign, render_campaign_details
from repro.scenarios.runner import CampaignRunner
from repro.scenarios.spec import Scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-runs", type=int, default=3, help="repetitions per cell")
    parser.add_argument("--horizon-days", type=float, default=0.5)
    parser.add_argument("--workers", type=int, default=1, help="worker processes (1 = serial)")
    parser.add_argument("--cache-dir", default=None, help="on-disk result cache")
    args = parser.parse_args()

    platform = mini_cielo_platform()
    base = Scenario(
        name="mini-cielo",
        platform=platform,
        workload=tuple(mini_apex_workload(platform)),
        strategies=("oblivious-daly", "ordered-daly", "orderednb-daly", "least-waste"),
        num_runs=args.num_runs,
        horizon_days=args.horizon_days,
        warmup_days=args.horizon_days / 8.0,
        cooldown_days=args.horizon_days / 8.0,
    )
    campaign = Campaign(
        name="example-matrix",
        base=base,
        axes=(
            Axis.from_values("io", "bandwidth_gbs", [1.0, 2.0, 4.0]),
            Axis(
                name="failures",
                points=(
                    AxisPoint("exp", {"failure_model": FailureModel()}),
                    AxisPoint(
                        "weibull0.7",
                        {"failure_model": FailureModel(kind="weibull", shape=0.7)},
                    ),
                ),
            ),
        ),
    )
    print(campaign.describe())
    print()

    runner = CampaignRunner(
        runner=ParallelRunner(
            backend="process" if args.workers > 1 else "serial",
            workers=args.workers,
            cache_dir=args.cache_dir,
        )
    )
    result = runner.run(campaign)
    print(render_campaign(result))
    print()
    print(render_campaign_details(result))
    stats = runner.runner.stats
    print()
    print(f"simulations: {stats.tasks_run}, cache hits: {stats.cache_hits}")


if __name__ == "__main__":
    main()

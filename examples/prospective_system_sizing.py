#!/usr/bin/env python3
"""Figure 3 scenario: sizing the I/O subsystem of a future platform.

For the prospective 50 000-node / 7 PB system of the paper's §6.2, this
example finds, for each strategy, the minimum aggregate file-system
bandwidth needed to keep the platform at 80 % efficiency, as a function of
the node MTBF.  It answers the procurement question the paper closes with:
how much can cooperative checkpoint scheduling save on the I/O partition?

Usage::

    python examples/prospective_system_sizing.py --mtbf-years 5 15 25 --num-runs 2
"""

from __future__ import annotations

import argparse

from repro.experiments.figure3 import Figure3Config, render_figure3, run_figure3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mtbf-years", type=float, nargs="+", default=[5.0, 15.0, 25.0])
    parser.add_argument(
        "--strategies",
        nargs="+",
        default=["oblivious-fixed", "ordered-daly", "orderednb-daly", "least-waste"],
        help="subset of strategies to size (the full seven take a while)",
    )
    parser.add_argument("--target-efficiency", type=float, default=0.80)
    parser.add_argument("--horizon-days", type=float, default=3.0)
    parser.add_argument("--num-runs", type=int, default=2)
    args = parser.parse_args()

    config = Figure3Config(
        node_mtbf_years=tuple(args.mtbf_years),
        strategies=tuple(args.strategies),
        target_efficiency=args.target_efficiency,
        horizon_days=args.horizon_days,
        num_runs=args.num_runs,
    )
    result = run_figure3(config)
    print(render_figure3(result))
    print()

    # Headline comparison: how much bandwidth does cooperation save?
    if "oblivious-fixed" in result.min_bandwidth_tbs and "least-waste" in result.min_bandwidth_tbs:
        for index, mtbf in enumerate(result.node_mtbf_years):
            naive = result.min_bandwidth_tbs["oblivious-fixed"][index]
            coop = result.min_bandwidth_tbs["least-waste"][index]
            if coop > 0:
                print(
                    f"node MTBF {mtbf:g} years: oblivious-fixed needs "
                    f"{naive / coop:.1f}x the bandwidth of least-waste"
                )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: simulate one strategy on the Cielo/APEX workload.

Runs a short (3-day) simulation of the LANL APEX workload on Cielo with a
constrained 60 GB/s file system, once for the uncoordinated ``oblivious-fixed``
baseline and once for the cooperative ``least-waste`` strategy, and prints
the waste breakdown of both together with the theoretical lower bound.

Usage::

    python examples/quickstart.py [--horizon-days 3] [--bandwidth-gbs 60] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import apex_workload, cielo_platform, run_simulation
from repro.experiments.theory import theoretical_waste


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon-days", type=float, default=3.0)
    parser.add_argument("--bandwidth-gbs", type=float, default=60.0)
    parser.add_argument("--node-mtbf-years", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    platform = cielo_platform(
        bandwidth_gbs=args.bandwidth_gbs, node_mtbf_years=args.node_mtbf_years
    )
    workload = apex_workload(platform)

    print(platform.describe())
    print()
    print("Application classes:")
    for app in workload:
        print(f"  {app.describe()}")
    print()

    bound = theoretical_waste(workload, platform)
    print(
        f"Theoretical lower bound: waste ratio {bound.waste_fraction:.3f} "
        f"(efficiency {bound.efficiency:.3f})"
    )
    print()

    for strategy in ("oblivious-fixed", "least-waste"):
        result = run_simulation(
            platform=platform,
            workload=workload,
            strategy=strategy,
            horizon_days=args.horizon_days,
            seed=args.seed,
        )
        print(f"=== {strategy} ===")
        print(result.summary())
        print()

    print(
        "The cooperative Least-Waste scheduler should be close to the "
        "theoretical bound, while the uncoordinated hourly checkpointing "
        "baseline wastes a large fraction of the platform."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: simulate one strategy on the Cielo/APEX workload.

Runs a short (3-day) simulation of the LANL APEX workload on Cielo with a
constrained 60 GB/s file system, once for the uncoordinated ``oblivious-fixed``
baseline and once for the cooperative ``least-waste`` strategy, and prints
the waste breakdown of both together with the theoretical lower bound.

Usage::

    python examples/quickstart.py [--horizon-days 3] [--bandwidth-gbs 60] [--seed 0]

Running experiments in parallel
-------------------------------

Monte-Carlo repetitions are embarrassingly parallel: the i-th derived seed
depends only on the base seed and ``i``, so repetitions can be fanned out to
worker processes (and cached on disk) without changing a single bit of any
result.  Attach a :class:`repro.ParallelRunner` to any experiment entry
point::

    from repro import ParallelRunner
    from repro.experiments.figure1 import Figure1Config, run_figure1

    runner = ParallelRunner(backend="process", workers=4, cache_dir=".coopckpt-cache")
    result = run_figure1(Figure1Config(num_runs=100), runner=runner)

The cache is keyed by ``(config digest, strategy, seed)``, so re-running
with a larger ``num_runs`` only simulates the new seeds.  The same switches
are available on the CLI: ``coopckpt figure1 --workers 4 --cache-dir PATH``.
Pass ``--workers 4`` to this script to see a small parallel Monte-Carlo
sample at the end of the quickstart.
"""

from __future__ import annotations

import argparse
import time

from repro import ParallelRunner, apex_workload, cielo_platform, run_simulation
from repro.experiments.runner import ExperimentCell
from repro.experiments.theory import theoretical_waste


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon-days", type=float, default=3.0)
    parser.add_argument("--bandwidth-gbs", type=float, default=60.0)
    parser.add_argument("--node-mtbf-years", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="run a small parallel Monte-Carlo sample at the end (1 = skip)",
    )
    args = parser.parse_args()

    platform = cielo_platform(
        bandwidth_gbs=args.bandwidth_gbs, node_mtbf_years=args.node_mtbf_years
    )
    workload = apex_workload(platform)

    print(platform.describe())
    print()
    print("Application classes:")
    for app in workload:
        print(f"  {app.describe()}")
    print()

    bound = theoretical_waste(workload, platform)
    print(
        f"Theoretical lower bound: waste ratio {bound.waste_fraction:.3f} "
        f"(efficiency {bound.efficiency:.3f})"
    )
    print()

    for strategy in ("oblivious-fixed", "least-waste"):
        result = run_simulation(
            platform=platform,
            workload=workload,
            strategy=strategy,
            horizon_days=args.horizon_days,
            seed=args.seed,
        )
        print(f"=== {strategy} ===")
        print(result.summary())
        print()

    print(
        "The cooperative Least-Waste scheduler should be close to the "
        "theoretical bound, while the uncoordinated hourly checkpointing "
        "baseline wastes a large fraction of the platform."
    )

    if args.workers > 1:
        from repro.experiments.runner import run_cell

        cell = ExperimentCell(
            platform=platform,
            workload=tuple(workload),
            strategy="least-waste",
            horizon_days=args.horizon_days,
            warmup_days=args.horizon_days / 4.0,
            cooldown_days=args.horizon_days / 4.0,
            num_runs=2 * args.workers,
            base_seed=args.seed,
        )
        print()
        print(f"=== parallel Monte-Carlo ({cell.num_runs} runs, {args.workers} workers) ===")
        runner = ParallelRunner(backend="process", workers=args.workers)
        start = time.perf_counter()
        summary = run_cell(cell, runner=runner)
        elapsed = time.perf_counter() - start
        print(f"least-waste waste ratio: {summary.format()}  ({elapsed:.1f}s wall-clock)")


if __name__ == "__main__":
    main()

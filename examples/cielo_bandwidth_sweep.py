#!/usr/bin/env python3
"""Figure 1 scenario: waste ratio vs. file-system bandwidth on Cielo.

Sweeps the aggregate parallel-file-system bandwidth of Cielo (the paper uses
40-160 GB/s) and compares the seven I/O & checkpoint scheduling strategies
against the theoretical lower bound, on the LANL APEX workload.

This is the laptop-scale version of the paper's Figure 1: shorter simulated
segments and a handful of Monte-Carlo repetitions instead of 60 days x 1000
runs.  Increase ``--num-runs`` / ``--horizon-days`` to tighten the
statistics.

Usage::

    python examples/cielo_bandwidth_sweep.py --bandwidths 40 80 120 160 --num-runs 3
"""

from __future__ import annotations

import argparse

from repro.experiments.figure1 import Figure1Config, render_figure1, run_figure1
from repro.experiments.report import render_sweep_detailed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bandwidths", type=float, nargs="+", default=[40.0, 80.0, 120.0, 160.0],
        help="bandwidth points in GB/s",
    )
    parser.add_argument("--node-mtbf-years", type=float, default=2.0)
    parser.add_argument("--horizon-days", type=float, default=5.0)
    parser.add_argument("--num-runs", type=int, default=3)
    parser.add_argument("--detailed", action="store_true", help="print candlestick statistics")
    args = parser.parse_args()

    config = Figure1Config(
        bandwidths_gbs=tuple(args.bandwidths),
        node_mtbf_years=args.node_mtbf_years,
        horizon_days=args.horizon_days,
        num_runs=args.num_runs,
    )
    result = run_figure1(config)
    print(render_figure1(result))
    if args.detailed:
        print()
        print(render_sweep_detailed(result, title="Per-cell candlestick statistics"))

    print()
    best_low = result.best_strategy_at(0)
    best_high = result.best_strategy_at(len(result.parameter_values) - 1)
    print(
        f"Best strategy at {result.parameter_values[0]:g} GB/s: {best_low}; "
        f"at {result.parameter_values[-1]:g} GB/s: {best_high}."
    )


if __name__ == "__main__":
    main()

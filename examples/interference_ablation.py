#!/usr/bin/env python3
"""Ablation: how much does the interference model itself matter?

The paper assumes a *linear* interference model: overlapping transfers share
the file system's aggregate bandwidth, which stays constant (footnote 2
notes that a more adversarial model can be substituted).  This example
re-runs the same Cielo/APEX scenario under increasingly adversarial models
(each overlapping stream destroys part of the aggregate throughput) for an
uncoordinated strategy and for the cooperative Least-Waste strategy.

The point it illustrates: the token-based strategies never overlap
transfers, so they are immune to the interference model — the more
pessimistic the real file system behaves under concurrency, the bigger the
win from cooperative checkpoint scheduling.

Usage::

    python examples/interference_ablation.py --alphas 0 0.25 1.0 --num-runs 2
"""

from __future__ import annotations

import argparse

from repro.experiments.ablation import interference_model_ablation, render_ablation
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--alphas", type=float, nargs="+", default=[0.0, 0.25, 1.0])
    parser.add_argument("--bandwidth-gbs", type=float, default=60.0)
    parser.add_argument("--node-mtbf-years", type=float, default=2.0)
    parser.add_argument("--horizon-days", type=float, default=3.0)
    parser.add_argument("--num-runs", type=int, default=2)
    args = parser.parse_args()

    platform = cielo_platform(
        bandwidth_gbs=args.bandwidth_gbs, node_mtbf_years=args.node_mtbf_years
    )
    workload = apex_workload(platform)

    for strategy in ("oblivious-daly", "least-waste"):
        cells = interference_model_ablation(
            platform,
            workload,
            strategy=strategy,
            alphas=tuple(args.alphas),
            horizon_days=args.horizon_days,
            num_runs=args.num_runs,
        )
        print(render_ablation(f"Interference ablation — {strategy}", cells))
        print()

    print(
        "Oblivious strategies degrade as the model becomes more adversarial; "
        "the serialized (cooperative) strategies are unaffected because they "
        "never let two transfers overlap."
    )


if __name__ == "__main__":
    main()

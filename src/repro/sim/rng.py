"""Named, reproducible random streams.

Monte-Carlo experiments need independent random streams for independent
model concerns (workload generation, failure times, failure locations, ...)
so that, e.g., changing how many failures are drawn does not perturb the job
mix.  :class:`RandomStreams` derives one :class:`numpy.random.Generator` per
named stream from a single root seed using ``numpy``'s ``SeedSequence``
spawning, which guarantees independence and reproducibility.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent random generators derived from one seed.

    Streams are created lazily on first access and cached, so two accesses
    to the same name return the same generator object.  The mapping from
    (seed, name) to a stream is stable across runs and across access order.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("failures")
    >>> b = streams.get("workload")
    >>> a is streams.get("failures")
    True
    """

    def __init__(self, seed: int | None = None) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int | None:
        """The root seed this family was created with."""
        return self._seed

    @property
    def entropy(self) -> int:
        """The resolved root entropy (equals ``seed`` when one was given).

        When the family was created with ``seed=None`` this is the entropy
        ``SeedSequence`` gathered from the OS, so the randomness actually
        used is always recoverable.
        """
        entropy = self._root.entropy
        return int(entropy) if entropy is not None else 0

    def clone(self) -> "RandomStreams":
        """A fresh, independent family rooted at the same entropy.

        Every stream of the clone starts from its initial state, so two
        consumers (e.g. two simulator kernels being checked for equivalence)
        can each draw the *same* random sequence without sharing generator
        state.  Works for ``seed=None`` families too, via the resolved
        entropy.
        """
        clone = RandomStreams(seed=self._seed)
        if self._seed is None:
            # Re-root at the resolved entropy so the clone replays this
            # family's randomness instead of gathering fresh entropy.
            clone._root = np.random.SeedSequence(self.entropy)
        return clone

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        if name not in self._streams:
            # Derive a child SeedSequence from the root and the stream name so
            # the stream does not depend on the order streams are requested.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._root.entropy if self._root.entropy is not None else 0,
                spawn_key=tuple(int(x) for x in digest),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def spawn(self, index: int) -> "RandomStreams":
        """Derive an independent child family, e.g. one per Monte-Carlo run."""
        entropy = self._root.entropy if self._root.entropy is not None else 0
        child_seed_seq = np.random.SeedSequence(entropy=entropy, spawn_key=(0xC0FFEE, index))
        # Collapse the child sequence to a plain integer seed so the child is
        # itself a RandomStreams rooted at a reproducible value.
        child_seed = int(child_seed_seq.generate_state(1, dtype=np.uint64)[0])
        return RandomStreams(seed=child_seed)

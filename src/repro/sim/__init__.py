"""Discrete-event simulation substrate.

A small, general-purpose discrete-event engine built from scratch:

* :mod:`repro.sim.events` — event handles and the time-ordered event queue.
* :mod:`repro.sim.engine` — the :class:`~repro.sim.engine.SimulationEngine`
  driving the event loop.
* :mod:`repro.sim.rng` — named, reproducible random streams.
* :mod:`repro.sim.kernel` — selectable hot-path implementations (pure-Python
  reference vs. numpy-batched), registered like execution backends and
  bound to a float-for-float equivalence contract.

The engine knows nothing about HPC platforms; the platform, application and
scheduler models of the other subpackages are built on top of it.
"""

from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import (
    NumpyKernel,
    PythonKernel,
    SimulatorKernel,
    default_kernel_name,
    get_kernel,
    kernel_names,
    register_kernel,
    set_default_kernel,
)
from repro.sim.rng import RandomStreams

__all__ = [
    "SimulationEngine",
    "Event",
    "EventQueue",
    "RandomStreams",
    "SimulatorKernel",
    "PythonKernel",
    "NumpyKernel",
    "default_kernel_name",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "set_default_kernel",
]

"""The discrete-event simulation engine.

:class:`SimulationEngine` owns the clock and the event queue.  Model
components schedule callbacks with :meth:`SimulationEngine.schedule` (a
relative delay) or :meth:`SimulationEngine.schedule_at` (an absolute time)
and the engine fires them in time order until the horizon is reached or the
queue drains.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Event loop with a monotonic simulation clock.

    Parameters
    ----------
    start_time:
        Initial value of the clock (seconds).  Defaults to 0.
    max_events:
        Safety valve: the run aborts with :class:`SimulationError` if more
        than this many events fire, which catches accidental infinite event
        cascades in model code.
    """

    def __init__(self, start_time: float = 0.0, max_events: int = 50_000_000) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._max_events = int(max_events)
        self._fired = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------ API
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    @property
    def pending_events(self) -> int:
        """Number of active (non-cancelled) events still scheduled."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at the absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (time={time}, now={self._now})"
            )
        return self._queue.push(time, callback, *args, label=label)

    def cancel(self, event: Event | None) -> None:
        """Cancel a scheduled event; ``None`` and repeat cancellations are no-ops."""
        if event is not None:
            self._queue.cancel(event)

    def stop(self) -> None:
        """Request the current :meth:`run` to return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------ run
    def run(self, until: float | None = None) -> float:
        """Fire events in time order.

        Parameters
        ----------
        until:
            Horizon (absolute time).  Events scheduled strictly after the
            horizon are left in the queue and the clock is advanced to the
            horizon.  ``None`` runs until the queue drains.

        Returns
        -------
        float
            The simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        try:
            pop_next_until = self._queue.pop_next_until
            while True:
                if self._stopped:
                    break
                event = pop_next_until(until)
                if event is None:
                    break
                if event.time < self._now:
                    raise SimulationError(
                        f"event queue returned an event in the past "
                        f"({event.time} < {self._now}, label={event.label!r})"
                    )
                self._now = event.time
                self._fired += 1
                if self._fired > self._max_events:
                    raise SimulationError(
                        f"more than {self._max_events} events fired; "
                        "likely an event cascade bug in model code"
                    )
                event.callback(*event.args)
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def run_until_empty(self) -> float:
        """Run until no active events remain; convenience alias of ``run(None)``."""
        return self.run(until=None)

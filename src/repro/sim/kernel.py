"""Simulator kernels: selectable hot-path implementations.

A *kernel* bundles the per-seed hot-path implementations of the simulator —
how failure inter-arrival times are accumulated into a trace, which node-pool
data structure backs the space-shared allocator, and how a job's phase
schedule (regular-I/O milestones) is materialised.  Kernels are selected by
name exactly like execution backends (:func:`repro.exec.runner.register_backend`):

* ``"python"`` — the pure-Python reference implementations.  This is the
  default and the semantics every other kernel is measured against.
* ``"numpy"`` — the batched fast path: failure gaps are accumulated with one
  vectorised cumulative sum per block instead of one Python ``float`` add per
  event, and node allocation runs on a boolean-mask
  :class:`~repro.platform.nodes.ArrayNodePool` instead of per-node list
  scans.

**Equivalence contract** (recorded in README/ROADMAP): every kernel must
produce float-for-float identical simulation results to the ``"python"``
reference — same failure instants, same node ids, same waste ratios, same
golden pins.  A kernel that changes any simulated float is a bug; it is
*never* grounds for a ``DIGEST_VERSION`` bump.  The equivalence suite
(``tests/test_kernel_equivalence.py``) enforces this in CI, which is why the
kernel name is excluded from config digests: results do not depend on it.

New kernels plug in through :func:`register_kernel`; the process-wide
default is ``"python"`` unless overridden by :func:`set_default_kernel` or
the ``REPRO_SIM_KERNEL`` environment variable (which worker processes
inherit, so one knob accelerates a whole campaign).
"""

from __future__ import annotations

import difflib
import os
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.platform.failures import FailureModel
    from repro.platform.nodes import NodePool

__all__ = [
    "SimulatorKernel",
    "PythonKernel",
    "NumpyKernel",
    "default_kernel_name",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "set_default_kernel",
]

#: Environment variable consulted for the initial process-wide default.
KERNEL_ENV_VAR = "REPRO_SIM_KERNEL"


class SimulatorKernel:
    """Base class of simulator kernels (the pure-Python reference).

    Subclasses may override any hook, but every override must keep results
    float-for-float identical to this class (see the module docstring); the
    hooks exist to make the same arithmetic *faster*, never different.
    """

    #: Registry name of the kernel (set on subclasses).
    name = "python"

    # ---------------------------------------------------------- failure RNG
    def failure_times(
        self,
        model: "FailureModel",
        rng: np.random.Generator,
        mean_s: float,
        horizon_s: float,
    ) -> list[float]:
        """Accumulate inter-arrival gaps into failure instants in ``[0, horizon]``.

        Gaps are drawn from ``model`` in blocks sized for the expected count
        (consuming the random stream identically in every kernel: whole
        blocks, then nothing else); the returned instants are the running
        float64 sums that land inside the horizon.
        """
        expected = horizon_s / mean_s
        block = _gap_block_size(expected)
        times: list[float] = []
        current = 0.0
        while current <= horizon_s:
            gaps = model.draw_gaps(rng, mean_s, block)
            for gap in gaps:
                current += float(gap)
                if current > horizon_s:
                    break
                times.append(current)
            else:
                continue
            break
        return times

    # ---------------------------------------------------------- node pool
    def make_node_pool(self, num_nodes: int) -> "NodePool":
        """Node-pool implementation backing the space-shared allocator."""
        from repro.platform.nodes import NodePool

        return NodePool(num_nodes)

    # ---------------------------------------------------------- schedules
    def milestone_offsets(self, total_work_s: float, chunks: int) -> list[float]:
        """Work offsets (seconds of progress) of a job's regular-I/O chunks.

        The ``k``-th of ``chunks`` transfers happens after
        ``total_work_s * k / (chunks + 1)`` seconds of work, so the chunks
        split the compute phase into equal parts.
        """
        return [total_work_s * k / (chunks + 1) for k in range(1, chunks + 1)]

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"{self.name}: {type(self).__doc__.strip().splitlines()[0]}"


class PythonKernel(SimulatorKernel):
    """Pure-Python reference implementations (scalar loops, list/set pool)."""

    name = "python"


class NumpyKernel(SimulatorKernel):
    """Batched fast path: cumsum'd failure gaps and a mask-based node pool."""

    name = "numpy"

    def failure_times(
        self,
        model: "FailureModel",
        rng: np.random.Generator,
        mean_s: float,
        horizon_s: float,
    ) -> list[float]:
        # Bit-identical to the reference: numpy's float64 ``cumsum`` is the
        # same strictly-sequential chain of additions the scalar loop
        # performs (accumulated from 0.0 across block boundaries), and the
        # blocks drawn from ``rng`` are the same size in the same order.
        expected = horizon_s / mean_s
        block = _gap_block_size(expected)
        blocks: list[np.ndarray] = []
        while True:
            blocks.append(model.draw_gaps(rng, mean_s, block))
            cumulative = np.cumsum(blocks[0] if len(blocks) == 1 else np.concatenate(blocks))
            # Gaps are non-negative, so the running sum is monotone: once it
            # exceeds the horizon the reference loop stops consuming (it has
            # already drawn the whole block) — but when a block ends exactly
            # *at* or below the horizon the reference draws another one.
            if cumulative[-1] > horizon_s:
                break
        return cumulative[cumulative <= horizon_s].tolist()

    def make_node_pool(self, num_nodes: int) -> "NodePool":
        from repro.platform.nodes import ArrayNodePool

        return ArrayNodePool(num_nodes)

    def milestone_offsets(self, total_work_s: float, chunks: int) -> list[float]:
        if chunks <= 0:
            return []
        # (total * k) / (chunks + 1) elementwise: the same two float64 ops,
        # in the same order, as the reference list comprehension.
        return ((total_work_s * np.arange(1, chunks + 1)) / (chunks + 1)).tolist()


def _gap_block_size(expected: float) -> int:
    """Shared block-sizing rule: a comfortable margin over the expected count."""
    return max(16, int(expected * 1.5) + 16)


# ------------------------------------------------------------------ registry
_KERNEL_FACTORIES: dict[str, Callable[[], SimulatorKernel]] = {
    "python": PythonKernel,
    "numpy": NumpyKernel,
}

_DEFAULT_KERNEL: str | None = None  # resolved lazily (env var, else "python")


def kernel_names() -> tuple[str, ...]:
    """Names of every currently registered simulator kernel."""
    return tuple(_KERNEL_FACTORIES)


def register_kernel(
    name: str,
    factory: Callable[[], SimulatorKernel],
    *,
    replace_existing: bool = False,
) -> None:
    """Register a simulator kernel under ``name``.

    ``factory`` takes no arguments and returns a :class:`SimulatorKernel`.
    Registering an existing name requires ``replace_existing=True`` so typos
    don't silently shadow built-ins.  The registered kernel is bound by the
    equivalence contract: float-for-float identical results to ``"python"``.
    """
    if not name:
        raise ConfigurationError("kernel name must be non-empty")
    if name in _KERNEL_FACTORIES and not replace_existing:
        raise ConfigurationError(
            f"kernel {name!r} is already registered "
            "(pass replace_existing=True to replace it)"
        )
    _KERNEL_FACTORIES[name] = factory


def default_kernel_name() -> str:
    """The process-wide default kernel name (not validated until used)."""
    if _DEFAULT_KERNEL is not None:
        return _DEFAULT_KERNEL
    return os.environ.get(KERNEL_ENV_VAR, "python")


def set_default_kernel(name: str) -> None:
    """Set the process-wide default kernel (used when a config names none).

    Also exports :data:`KERNEL_ENV_VAR` so worker processes spawned later
    (process pools, spool workers started from this process) inherit the
    selection.
    """
    if name not in _KERNEL_FACTORIES:
        raise ConfigurationError(_unknown_kernel_message(name))
    global _DEFAULT_KERNEL
    _DEFAULT_KERNEL = name
    os.environ[KERNEL_ENV_VAR] = name


def get_kernel(name: str | None = None) -> SimulatorKernel:
    """Build the kernel registered under ``name`` (``None`` = the default)."""
    if name is None:
        name = default_kernel_name()
    factory = _KERNEL_FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(_unknown_kernel_message(name))
    return factory()


def _unknown_kernel_message(name: str) -> str:
    known = ", ".join(sorted(_KERNEL_FACTORIES))
    suggestions = difflib.get_close_matches(name, _KERNEL_FACTORIES, n=1)
    hint = f"; did you mean {suggestions[0]!r}?" if suggestions else ""
    return f"unknown simulator kernel {name!r} (known kernels: {known}){hint}"

"""Event handles and the time-ordered event queue of the DES engine.

Events are callbacks scheduled at an absolute simulation time.  The heap is
*slot-free*: entries are plain ``(time, seq, event)`` tuples, so ordering
them costs two scalar comparisons instead of a dataclass ``__lt__`` call,
and the :class:`Event` handle itself never needs to be comparable.

Cancellation is *lazy*: a cancelled event stays in the heap but is skipped
when popped, which keeps both scheduling and cancellation O(log n) / O(1).
When lazily-cancelled entries outnumber the live ones the queue compacts
itself (drops every cancelled tuple and re-heapifies), so a workload that
cancels most of what it schedules cannot grow the heap without bound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]

#: Compaction is considered only above this heap size; below it the wasted
#: tuples are too few to matter and re-heapifying would cost more than it
#: saves.
_COMPACT_MIN_HEAP = 64


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    Events fire in ``(time, seq)`` order: two events scheduled for the same
    instant fire in scheduling order, which makes runs deterministic for a
    given seed.  The ordering lives in the queue's heap keys; the handle
    itself is deliberately not orderable.

    Attributes
    ----------
    time:
        Absolute simulation time at which the event fires (seconds).
    seq:
        Monotonic tie-breaker assigned by the queue.
    callback:
        Zero-or-more-argument callable invoked when the event fires.
    args:
        Positional arguments passed to ``callback``.
    label:
        Optional human-readable tag, useful when tracing a simulation.
    cancelled:
        True when the event has been cancelled and must not fire.
    fired:
        True once the event has been popped by the queue; cancelling a
        fired event is a no-op.
    """

    time: float
    seq: int
    callback: Callable[..., None]
    args: tuple[Any, ...] = ()
    label: str = ""
    cancelled: bool = False
    fired: bool = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped by the queue.

        Prefer :meth:`EventQueue.cancel` (or
        :meth:`~repro.sim.engine.SimulationEngine.cancel`), which also keeps
        the queue's active-event count correct.
        """
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True when the event has not been cancelled."""
        return not self.cancelled


class EventQueue:
    """Min-heap of ``(time, seq, Event)`` tuples ordered by firing time.

    The queue is intentionally minimal: ``push``, ``pop_next`` /
    ``pop_next_until`` (skipping cancelled entries), ``peek_time`` and
    ``__len__`` (counting only active events).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._next_seq = 0
        self._active = 0
        # Cancelled events still sitting in the heap (lazy cancellation);
        # drives the compaction heuristic.
        self._lazy = 0

    def __len__(self) -> int:
        return self._active

    def __bool__(self) -> bool:
        return self._active > 0

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if not (time == time):  # NaN check without importing math
            raise SimulationError("event time must not be NaN")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time=time, seq=seq, callback=callback, args=args, label=label)
        heapq.heappush(self._heap, (time, seq, event))
        self._active += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event.

        Idempotent, and a no-op for events that already fired: a stale
        handle kept around after :meth:`pop_next` returned the event must
        not corrupt the active-event count.
        """
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._active -= 1
        self._lazy += 1
        self._maybe_compact()

    def pop_next(self) -> Event | None:
        """Pop and return the earliest active event, or ``None`` when empty."""
        return self.pop_next_until(None)

    def pop_next_until(self, until: float | None) -> Event | None:
        """Pop the earliest active event firing at or before ``until``.

        Returns ``None`` when the queue is empty or when every remaining
        active event fires strictly after ``until`` (the queue is left
        untouched in that case).  ``None`` as the horizon means "no limit".
        """
        heap = self._heap
        while heap:
            time, _seq, event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                if self._lazy > 0:
                    self._lazy -= 1
                continue
            if until is not None and time > until:
                return None
            heapq.heappop(heap)
            event.fired = True
            self._active -= 1
            return event
        return None

    def peek_time(self) -> float | None:
        """Firing time of the earliest active event, or ``None`` when empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            if self._lazy > 0:
                self._lazy -= 1
        if not heap:
            return None
        return heap[0][0]

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._active = 0
        self._lazy = 0

    def _maybe_compact(self) -> None:
        """Drop lazily-cancelled tuples when they dominate the heap."""
        heap = self._heap
        if len(heap) < _COMPACT_MIN_HEAP or self._lazy <= self._active:
            return
        self._heap = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._lazy = 0

"""Event handles and the time-ordered event queue of the DES engine.

Events are callbacks scheduled at an absolute simulation time.  Cancellation
is *lazy*: a cancelled event stays in the heap but is skipped when popped,
which keeps both scheduling and cancellation O(log n) / O(1).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``: two events scheduled for the same
    instant fire in scheduling order, which makes runs deterministic for a
    given seed.

    Attributes
    ----------
    time:
        Absolute simulation time at which the event fires (seconds).
    seq:
        Monotonic tie-breaker assigned by the queue.
    callback:
        Zero-or-more-argument callable invoked when the event fires.
    args:
        Positional arguments passed to ``callback``.
    label:
        Optional human-readable tag, useful when tracing a simulation.
    cancelled:
        True when the event has been cancelled and must not fire.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped by the queue."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True when the event has not been cancelled."""
        return not self.cancelled


class EventQueue:
    """Min-heap of :class:`Event` ordered by firing time.

    The queue is intentionally minimal: ``push``, ``pop_next`` (skipping
    cancelled entries), ``peek_time`` and ``__len__`` (counting only active
    events).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._active = 0

    def __len__(self) -> int:
        return self._active

    def __bool__(self) -> bool:
        return self._active > 0

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if not (time == time):  # NaN check without importing math
            raise SimulationError("event time must not be NaN")
        event = Event(time=time, seq=next(self._counter), callback=callback, args=args, label=label)
        heapq.heappush(self._heap, event)
        self._active += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._active -= 1

    def pop_next(self) -> Event | None:
        """Pop and return the earliest active event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._active -= 1
            return event
        return None

    def peek_time(self) -> float | None:
        """Firing time of the earliest active event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._active = 0

"""repro — reproduction of *Optimal Cooperative Checkpointing for Shared
High-Performance Computing Platforms* (Hérault et al., IPDPS 2018).

The package provides three layers:

* :mod:`repro.core` — the analytical models of the paper: the Young/Daly
  period, the single-job and platform waste models, the constrained
  lower bound of Theorem 1 and the Least-Waste scoring heuristic.
* the simulation substrate — a from-scratch discrete-event engine
  (:mod:`repro.sim`), a platform model with failure injection and a shared
  parallel file system (:mod:`repro.platform`), an application/job model
  (:mod:`repro.apps`), I/O scheduling strategies (:mod:`repro.iosched`) and
  an online first-fit job scheduler (:mod:`repro.jobsched`).
* the evaluation harness — workload definitions (:mod:`repro.workloads`),
  the top-level simulator (:mod:`repro.simulation`), Monte-Carlo statistics
  (:mod:`repro.stats`), parallel execution and result caching
  (:mod:`repro.exec`), broker-less distributed execution over a filesystem
  work spool (:mod:`repro.distributed`), per-figure experiments
  (:mod:`repro.experiments`), declarative scenario campaigns
  (:mod:`repro.scenarios`) and the per-cell waste drill-down
  (:mod:`repro.trace`).

Quickstart
----------

>>> from repro import run_simulation, cielo_platform, apex_workload
>>> platform = cielo_platform(bandwidth_gbs=80.0)
>>> result = run_simulation(
...     platform=platform,
...     workload=apex_workload(),
...     strategy="least-waste",
...     horizon_days=4.0,
...     seed=1,
... )
>>> 0.0 <= result.waste_ratio
True
"""

from __future__ import annotations

from repro.core.daly import daly_period, young_period, job_mtbf, system_mtbf
from repro.core.waste import job_waste, platform_waste, optimal_job_waste
from repro.core.lower_bound import (
    LowerBoundResult,
    SteadyStateClass,
    optimal_periods,
    platform_lower_bound,
)
from repro.core.least_waste import (
    CkptCandidate,
    IOCandidate,
    expected_waste,
    select_candidate,
)
from repro.platform.failures import FailureModel
from repro.platform.spec import PlatformSpec
from repro.apps.app_class import ApplicationClass
from repro.apps.checkpoint_policy import CheckpointPolicy, DalyPolicy, FixedPolicy
from repro.iosched.registry import (
    STRATEGIES,
    StrategySpec,
    canonical_strategy,
    make_strategy,
    parse_strategy,
    register_strategy,
    strategy_kinds,
    strategy_names,
)
from repro.workloads.apex import APEX_CLASSES, apex_workload
from repro.workloads.cielo import cielo_platform
from repro.workloads.prospective import prospective_platform, prospective_workload
from repro.workloads.generator import WorkloadSpec, generate_jobs
from repro.simulation.config import SimulationConfig
from repro.simulation.results import SimulationResult, WasteBreakdown
from repro.simulation.simulator import Simulation, run_simulation
from repro.stats.summary import DistributionSummary, summarize
from repro.stats.montecarlo import derive_seeds, monte_carlo
from repro.exec.cache import ResultCache
from repro.exec.digest import config_digest
from repro.exec.runner import ParallelRunner
from repro.distributed.spool import WorkSpool
from repro.distributed.worker import SpoolWorker
from repro.scenarios.campaign import Axis, AxisPoint, Campaign
from repro.scenarios.presets import campaign_names, make_campaign
from repro.scenarios.report import campaign_to_csv, render_campaign
from repro.scenarios.runner import CampaignResult, CampaignRunner
from repro.scenarios.spec import Scenario
from repro.trace import (
    WasteDecomposition,
    decomposition_to_csv,
    drill_down_cell,
    render_decomposition,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "daly_period",
    "young_period",
    "job_mtbf",
    "system_mtbf",
    "job_waste",
    "platform_waste",
    "optimal_job_waste",
    "LowerBoundResult",
    "SteadyStateClass",
    "optimal_periods",
    "platform_lower_bound",
    "IOCandidate",
    "CkptCandidate",
    "expected_waste",
    "select_candidate",
    # platform / apps
    "FailureModel",
    "PlatformSpec",
    "ApplicationClass",
    "CheckpointPolicy",
    "DalyPolicy",
    "FixedPolicy",
    # strategies
    "STRATEGIES",
    "StrategySpec",
    "canonical_strategy",
    "make_strategy",
    "parse_strategy",
    "register_strategy",
    "strategy_kinds",
    "strategy_names",
    # workloads
    "APEX_CLASSES",
    "apex_workload",
    "cielo_platform",
    "prospective_platform",
    "prospective_workload",
    "WorkloadSpec",
    "generate_jobs",
    # simulation
    "SimulationConfig",
    "SimulationResult",
    "WasteBreakdown",
    "Simulation",
    "run_simulation",
    # stats
    "DistributionSummary",
    "summarize",
    "monte_carlo",
    "derive_seeds",
    # parallel execution
    "ParallelRunner",
    "ResultCache",
    "config_digest",
    # distributed execution
    "SpoolWorker",
    "WorkSpool",
    # scenario campaigns
    "Axis",
    "AxisPoint",
    "Campaign",
    "CampaignResult",
    "CampaignRunner",
    "Scenario",
    "campaign_names",
    "campaign_to_csv",
    "make_campaign",
    "render_campaign",
    # per-cell drill-down
    "WasteDecomposition",
    "decomposition_to_csv",
    "drill_down_cell",
    "render_decomposition",
]

"""Workload and platform definitions used by the paper's evaluation.

* :mod:`repro.workloads.apex` — the four LANL application classes of the
  APEX workflows report (Table 1 of the paper): EAP, LAP, Silverton, VPIC.
* :mod:`repro.workloads.cielo` — the Cielo platform (§6.1).
* :mod:`repro.workloads.prospective` — the prospective future system of
  §6.2 (50 000 nodes, 7 PB of memory) and the APEX classes scaled to it.
* :mod:`repro.workloads.generator` — random job-mix generation respecting
  the per-class resource shares, as described in §5.
"""

from repro.workloads.apex import APEX_CLASSES, APEX_TABLE, ApexClassSpec, apex_workload
from repro.workloads.cielo import CIELO, cielo_platform
from repro.workloads.prospective import PROSPECTIVE, prospective_platform, prospective_workload
from repro.workloads.generator import WorkloadSpec, generate_jobs

__all__ = [
    "APEX_CLASSES",
    "APEX_TABLE",
    "ApexClassSpec",
    "apex_workload",
    "CIELO",
    "cielo_platform",
    "PROSPECTIVE",
    "prospective_platform",
    "prospective_workload",
    "WorkloadSpec",
    "generate_jobs",
]

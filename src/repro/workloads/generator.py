"""Random job-mix generation (§5 "High level parameters").

A simulation's initial conditions contain a list of jobs drawn from the
application classes so that

1. the platform is kept busy for at least the requested simulated duration,
   and
2. the node-hours received by each class match the representative workload
   percentages of the APEX report (within a small tolerance).

Job work times are drawn uniformly in ``[0.8 w, 1.2 w]`` around the class's
typical work time ``w``, which avoids artificial synchronisation between
hundreds of identical jobs.  The generated list is shuffled and presented to
the job scheduler all at once (arrival order = priority order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.app_class import ApplicationClass
from repro.apps.job import Job
from repro.errors import ConfigurationError
from repro.platform.spec import PlatformSpec
from repro.units import DAY

__all__ = ["WorkloadSpec", "generate_jobs"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the job-mix generator.

    Attributes
    ----------
    classes:
        Application classes with their ``workload_share`` targets.
    min_duration_s:
        The generator adds jobs until their aggregate node-seconds are
        enough to keep the whole platform busy for at least this long
        (plus ``headroom``).
    share_tolerance:
        Maximum allowed absolute deviation between a class's achieved and
        target share of the generated node-seconds (the paper uses 1 %).
    work_time_jitter:
        Half-width of the uniform jitter applied to work times (0.2 means
        ``[0.8 w, 1.2 w]``).
    headroom:
        Extra multiplicative margin on the node-second target, so the job
        scheduler never runs out of queued work before the horizon.
    max_jobs:
        Safety cap on the number of generated jobs.
    """

    classes: tuple[ApplicationClass, ...]
    min_duration_s: float = 8.0 * DAY
    share_tolerance: float = 0.01
    work_time_jitter: float = 0.2
    headroom: float = 1.3
    max_jobs: int = 100_000

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError("WorkloadSpec requires at least one application class")
        if self.min_duration_s <= 0.0:
            raise ConfigurationError("min_duration_s must be positive")
        if not (0.0 < self.share_tolerance < 1.0):
            raise ConfigurationError("share_tolerance must be in (0, 1)")
        if not (0.0 <= self.work_time_jitter < 1.0):
            raise ConfigurationError("work_time_jitter must be in [0, 1)")
        if self.headroom < 1.0:
            raise ConfigurationError("headroom must be >= 1")
        total_share = sum(app.workload_share for app in self.classes)
        if total_share <= 0.0:
            raise ConfigurationError("at least one class must have a positive workload_share")

    @property
    def normalized_shares(self) -> np.ndarray:
        """Target shares normalized to sum to 1."""
        shares = np.array([app.workload_share for app in self.classes], dtype=float)
        return shares / shares.sum()


def _draw_work_time(app: ApplicationClass, jitter: float, rng: np.random.Generator) -> float:
    if jitter == 0.0:
        return app.work_s
    low = app.work_s * (1.0 - jitter)
    high = app.work_s * (1.0 + jitter)
    return float(rng.uniform(low, high))


def generate_jobs(
    spec: WorkloadSpec,
    platform: PlatformSpec,
    rng: np.random.Generator,
) -> list[Job]:
    """Generate a shuffled job list matching the workload specification.

    The greedy construction always extends the class that is currently the
    furthest *below* its target share, which converges to the target mix
    and terminates once both the duration and the share-tolerance criteria
    are met.

    Returns
    -------
    list[Job]
        Jobs with ``submit_time`` 0 and ``priority`` equal to their position
        in the shuffled arrival order.
    """
    targets = spec.normalized_shares
    classes = spec.classes
    for app in classes:
        if app.nodes > platform.num_nodes:
            raise ConfigurationError(
                f"class {app.name!r} needs {app.nodes} nodes but platform "
                f"{platform.name!r} has only {platform.num_nodes}"
            )

    node_seconds_goal = platform.num_nodes * spec.min_duration_s * spec.headroom
    per_class_node_seconds = np.zeros(len(classes), dtype=float)
    drawn: list[tuple[int, float]] = []  # (class index, work time)

    while True:
        total = float(per_class_node_seconds.sum())
        if total >= node_seconds_goal:
            shares = per_class_node_seconds / total
            if np.all(np.abs(shares - targets) <= spec.share_tolerance):
                break
        if len(drawn) >= spec.max_jobs:
            raise ConfigurationError(
                f"workload generation exceeded max_jobs={spec.max_jobs}; "
                "check the class shares and duration target"
            )
        # Pick the class with the largest share deficit.
        if total == 0.0:
            deficits = targets.copy()
        else:
            deficits = targets - per_class_node_seconds / total
        index = int(np.argmax(deficits))
        app = classes[index]
        work = _draw_work_time(app, spec.work_time_jitter, rng)
        drawn.append((index, work))
        per_class_node_seconds[index] += work * app.nodes

    order = rng.permutation(len(drawn))
    jobs: list[Job] = []
    for priority, position in enumerate(order):
        index, work = drawn[int(position)]
        jobs.append(
            Job(
                app_class=classes[index],
                total_work_s=work,
                submit_time=0.0,
                priority=float(priority),
            )
        )
    return jobs

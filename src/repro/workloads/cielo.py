"""The Cielo platform (§6.1 of the paper).

Cielo was a 1.37 Pflop/s capability system at LANL (2010-2016) with 143 104
cores, 286 TB of main memory and a parallel file system with a theoretical
peak of 160 GB/s.  We model it as 8 944 nodes of 16 cores and 32 GB each
(143 104 / 16 = 8 944; 286 TB / 8 944 ≈ 32 GB), which is the granularity the
job scheduler and the failure model operate at.

The paper's reference failure scenario uses an individual-node MTBF of two
years, i.e. a system MTBF of roughly one hour.
"""

from __future__ import annotations

from repro.platform.spec import PlatformSpec
from repro.units import GB, YEAR

__all__ = ["CIELO", "cielo_platform"]

#: Default Cielo description (160 GB/s file system, 2-year node MTBF).
CIELO = PlatformSpec(
    name="Cielo",
    num_nodes=8944,
    cores_per_node=16,
    memory_per_node_bytes=32.0 * GB,
    io_bandwidth_bytes_per_s=160.0 * GB,
    node_mtbf_s=2.0 * YEAR,
)


def cielo_platform(
    *,
    bandwidth_gbs: float = 160.0,
    node_mtbf_years: float = 2.0,
) -> PlatformSpec:
    """Cielo with a chosen file-system bandwidth and node MTBF.

    Parameters
    ----------
    bandwidth_gbs:
        Aggregate parallel-file-system bandwidth in GB/s (the paper sweeps
        40-160 GB/s in Figure 1).
    node_mtbf_years:
        Individual-node MTBF in years (the paper sweeps 2-50 years in
        Figure 2).
    """
    return CIELO.with_bandwidth(bandwidth_gbs * GB).with_node_mtbf(node_mtbf_years * YEAR)

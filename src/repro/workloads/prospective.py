"""The prospective future system of §6.2.

The paper projects the APEX workload onto a future platform with 50 000
compute nodes and 7 PB of main memory (Aurora-class), scaling each class's
problem size proportionally to the growth in machine memory.  The
aggregate file-system bandwidth is the quantity under study in Figure 3
(the minimum bandwidth needed to sustain 80 % efficiency), so it is a
parameter rather than a fixed value.
"""

from __future__ import annotations

from repro.apps.app_class import ApplicationClass
from repro.platform.spec import PlatformSpec
from repro.units import PB, TB, YEAR
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import CIELO

__all__ = ["PROSPECTIVE", "prospective_platform", "prospective_workload"]

#: Default prospective system: 50 000 nodes, 7 PB of memory (140 GB/node),
#: a 1 TB/s file system (overridden by the Figure 3 sweep) and a 15-year
#: node MTBF.
PROSPECTIVE = PlatformSpec(
    name="Prospective",
    num_nodes=50_000,
    cores_per_node=64,
    memory_per_node_bytes=7.0 * PB / 50_000,
    io_bandwidth_bytes_per_s=1.0 * TB,
    node_mtbf_s=15.0 * YEAR,
)


def prospective_platform(
    *,
    bandwidth_tbs: float = 1.0,
    node_mtbf_years: float = 15.0,
) -> PlatformSpec:
    """The prospective system with a chosen bandwidth (TB/s) and node MTBF."""
    return PROSPECTIVE.with_bandwidth(bandwidth_tbs * TB).with_node_mtbf(
        node_mtbf_years * YEAR
    )


def prospective_workload(
    platform: PlatformSpec | None = None,
    *,
    routine_io_fraction: float = 0.0,
) -> list[ApplicationClass]:
    """The APEX classes scaled from Cielo to the prospective system.

    Per §6.2, each class keeps the same fraction of the machine (node share)
    and the same work time, while its memory footprint — and therefore its
    input, output and checkpoint volumes — grows with the machine's memory.
    """
    platform = platform or PROSPECTIVE
    cielo_classes = apex_workload(CIELO, routine_io_fraction=routine_io_fraction)
    return [app.scaled_to(platform, CIELO) for app in cielo_classes]

"""The LANL APEX workflow classes (Table 1 of the paper).

The APEX workflows report characterises the four dominant LANL production
workflows: EAP, LAP, Silverton and VPIC.  Table 1 of the paper lists, for
each, the share of the platform it receives, the typical work time, the core
count and the initial-input / final-output / checkpoint volumes expressed as
percentages of the job's memory footprint.

:data:`APEX_TABLE` reproduces the raw table; :func:`apex_workload` converts
it into concrete :class:`~repro.apps.app_class.ApplicationClass` objects for
a given platform (Cielo by default).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.app_class import ApplicationClass
from repro.platform.spec import PlatformSpec
from repro.units import HOUR
from repro.workloads.cielo import CIELO

__all__ = ["ApexClassSpec", "APEX_TABLE", "APEX_CLASSES", "apex_workload"]


@dataclass(frozen=True)
class ApexClassSpec:
    """One row of Table 1 (percentages exactly as printed in the paper)."""

    name: str
    workload_percent: float
    work_time_hours: float
    cores: int
    input_percent_of_memory: float
    output_percent_of_memory: float
    checkpoint_percent_of_memory: float


#: Table 1 — "LANL Workflow Workload from the APEX Workflows report".
APEX_TABLE: tuple[ApexClassSpec, ...] = (
    ApexClassSpec("EAP", 66.0, 262.4, 16384, 3.0, 105.0, 160.0),
    ApexClassSpec("LAP", 5.5, 64.0, 4096, 5.0, 220.0, 185.0),
    ApexClassSpec("Silverton", 16.5, 128.0, 32768, 70.0, 43.0, 350.0),
    ApexClassSpec("VPIC", 12.0, 157.2, 30000, 10.0, 270.0, 85.0),
)

#: Class names in table order.
APEX_CLASSES: tuple[str, ...] = tuple(spec.name for spec in APEX_TABLE)


def apex_workload(
    platform: PlatformSpec | None = None,
    *,
    routine_io_fraction: float = 0.0,
) -> list[ApplicationClass]:
    """Instantiate the APEX classes for ``platform`` (Cielo by default).

    Parameters
    ----------
    platform:
        Platform whose per-node memory defines the job memory footprints and
        hence the absolute input/output/checkpoint volumes.
    routine_io_fraction:
        Optional regular (non-checkpoint) I/O volume, as a fraction of the
        memory footprint, spread over the job's makespan.  The paper's
        Table 1 does not list it, so it defaults to 0.
    """
    platform = platform or CIELO
    classes: list[ApplicationClass] = []
    for spec in APEX_TABLE:
        classes.append(
            ApplicationClass.from_memory_fractions(
                spec.name,
                platform=platform,
                cores=spec.cores,
                work_s=spec.work_time_hours * HOUR,
                input_fraction=spec.input_percent_of_memory / 100.0,
                output_fraction=spec.output_percent_of_memory / 100.0,
                checkpoint_fraction=spec.checkpoint_percent_of_memory / 100.0,
                routine_io_fraction=routine_io_fraction,
                workload_share=spec.workload_percent / 100.0,
            )
        )
    return classes

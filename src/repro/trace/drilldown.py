"""Re-run (or sidecar-replay) one campaign cell with trace capture.

:func:`drill_down_cell` is the core of the per-cell drill-down: given the
cell's configuration and seed it either replays the cell's trace sidecar
from an attached :class:`~repro.exec.cache.ResultCache` (free) or re-runs
the single simulation with ``collect_trace=True`` and decomposes its
accounting into a :class:`~repro.trace.decompose.WasteDecomposition`.
:func:`drill_down_cell_detailed` additionally reports whether the cell's
scalar value was already cached before the drill (the provenance the CLI's
"matches the cached cell value" claim rests on).

The cell is addressed by its *existing* cache key: the digest excludes both
``seed`` and ``collect_trace``, so a drill-down lands on exactly the entry
the campaign wrote — and because the simulator is a pure function of that
key, the decomposition's waste ratio is bit-identical to the cached scalar.
A fresh drill-down also warms the cache (scalar entry and sidecar), so
drilling before running a campaign is never wasted work.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace

from repro.errors import AnalysisError
from repro.exec.cache import ResultCache
from repro.exec.digest import config_digest
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulation
from repro.trace.decompose import WasteDecomposition

__all__ = ["CellDrillDown", "drill_down_cell", "drill_down_cell_detailed"]


@dataclass(frozen=True)
class CellDrillDown:
    """One drill-down plus its cache provenance.

    ``recorded_value`` is the scalar value the cache held for the cell
    *before* the drill (``None`` without a cache, or when the entry was
    missing/unreadable).  When present it is guaranteed repr-identical to
    ``decomposition.waste_ratio`` — a contradiction raises instead.
    """

    decomposition: WasteDecomposition
    recorded_value: float | None = None


def drill_down_cell(
    config: SimulationConfig,
    seed: int,
    *,
    cache: ResultCache | None = None,
    scenario: str = "",
    use_sidecar: bool = True,
) -> WasteDecomposition:
    """Waste decomposition of the cell ``(config digest, strategy, seed)``.

    Parameters
    ----------
    config:
        The cell's configuration (any seed it carries is replaced).
    seed:
        The concrete derived seed of the repetition to decompose.
    cache:
        Optional result cache.  When it holds a valid trace sidecar for the
        cell the decomposition is replayed from disk without simulating;
        otherwise the run's decomposition (and, if missing, the cell's
        scalar value) is written back.  A scalar entry the fresh simulation
        cannot reproduce raises :class:`~repro.errors.AnalysisError` — the
        cache predates a simulator change and must be pruned.
    scenario:
        Display label recorded in the decomposition.
    use_sidecar:
        ``False`` forces a fresh simulation even when a sidecar exists (the
        write-back still happens), e.g. to cross-check a sidecar.
    """
    return drill_down_cell_detailed(
        config, seed, cache=cache, scenario=scenario, use_sidecar=use_sidecar
    ).decomposition


def drill_down_cell_detailed(
    config: SimulationConfig,
    seed: int,
    *,
    cache: ResultCache | None = None,
    scenario: str = "",
    use_sidecar: bool = True,
) -> CellDrillDown:
    """Like :func:`drill_down_cell`, returning the cache provenance too."""
    digest = config_digest(config)
    strategy = config.strategy
    seed = int(seed)
    # One probe serves every decision below: sidecar agreement, the repair
    # write, the fresh-run contradiction check and the reported provenance.
    recorded = cache.probe(digest, strategy, seed) if cache is not None else None

    if cache is not None and use_sidecar:
        payload = cache.get_trace(digest, strategy, seed)
        if payload is not None:
            try:
                decomposition = WasteDecomposition.from_payload(payload)
            except AnalysisError:
                decomposition = None
            if (
                decomposition is not None
                and decomposition.digest == digest
                and decomposition.strategy == strategy
                and decomposition.seed == seed
                and (recorded is None or recorded == decomposition.waste_ratio)
            ):
                if decomposition.scenario != scenario:
                    # The cell is content-addressed, so another campaign (or
                    # a renamed scenario) may have written the sidecar; the
                    # caller's label wins over the recorded one.
                    decomposition = dataclasses.replace(
                        decomposition, scenario=scenario
                    )
                if recorded is None:
                    # A valid sidecar repairs a lost/corrupt scalar entry
                    # (the value is the same simulation's, just re-derived).
                    cache.put(digest, strategy, seed, decomposition.waste_ratio)
                return CellDrillDown(decomposition, recorded)
            # Wrong key or stale relative to the scalar entry: fall through
            # to a fresh simulation, which rewrites the sidecar.

    sim = Simulation(replace(config, seed=seed, collect_trace=True))
    result = sim.run()
    decomposition = WasteDecomposition.from_simulation(
        sim, result, digest=digest, scenario=scenario
    )
    if cache is not None:
        if recorded is None:
            # Drilling an unseen cell warms the scalar cache too: the next
            # campaign run serves this repetition as a hit.
            cache.put(digest, strategy, seed, result.waste_ratio)
        elif recorded != result.waste_ratio:
            # The entry predates a simulator change that was not digest-
            # bumped: the decomposition cannot sum to the recorded value,
            # and silently repairing the entry would let stale and fresh
            # values coexist in one campaign table.  Fail loudly instead
            # (and leave no contradicting sidecar behind).
            raise AnalysisError(
                f"cell ({digest[:12]}…, {strategy}, {seed}): re-simulated "
                f"waste ratio {result.waste_ratio!r} contradicts the cached "
                f"value {recorded!r}; the cache predates a simulator change "
                "— prune it with `coopckpt cache gc` (and bump DIGEST_VERSION "
                "with intentional behaviour changes)"
            )
        cache.put_trace(digest, strategy, seed, decomposition.to_payload())
    return CellDrillDown(decomposition, recorded)

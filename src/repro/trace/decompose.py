"""Waste decomposition of one simulation run.

A campaign cell is summarised by a single scalar — its waste ratio — which
says *that* a strategy loses resources but not *where*.  The decomposition
splits the cell's node-seconds into the same categories the accounting layer
tracks (checkpoint writes, checkpoint-token waits, recovery reads, lost
work, I/O-queue delay, plus the useful compute and base-I/O time), both in
aggregate and per job.

Exactness contract
------------------
Every aggregate float is copied verbatim from the run's
:class:`~repro.simulation.accounting.Accounting` totals and the derived
quantities are computed by the *same expressions, in the same order* as
:class:`~repro.simulation.results.WasteBreakdown`.  Because a simulation is
a pure function of ``(config digest, strategy, seed)``, a drill-down's
:attr:`WasteDecomposition.waste_ratio` is therefore bit-identical
(repr-exact) to the scalar the result cache recorded for the same cell, and
the waste components sum — in category order — exactly to the total waste.

Per-job rows are labelled by a *stable* scheme (class name + submission
ordinal, restarts suffixed ``+r``) rather than raw ``Job.job_id`` values,
which come from a process-global counter: two drill-downs of the same cell
in one process must serialise byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import AnalysisError
from repro.simulation.accounting import Category
from repro.simulation.results import SimulationResult
from repro.simulation.simulator import Simulation
from repro.simulation.trace import TraceEventType

__all__ = ["JobWaste", "WasteDecomposition"]

#: Waste categories in the summation order of
#: :attr:`repro.simulation.results.WasteBreakdown.waste` — the order matters
#: for the repr-exact components-sum-to-total invariant.
_WASTE_FIELDS: tuple[str, ...] = (
    "io_delay",
    "checkpoint",
    "checkpoint_wait",
    "recovery",
    "lost_work",
)

_USEFUL_FIELDS: tuple[str, ...] = ("compute", "base_io")

_CATEGORY_BY_FIELD: dict[str, Category] = {
    "compute": Category.COMPUTE,
    "base_io": Category.BASE_IO,
    "io_delay": Category.IO_DELAY,
    "checkpoint": Category.CHECKPOINT,
    "checkpoint_wait": Category.CHECKPOINT_WAIT,
    "recovery": Category.RECOVERY,
    "lost_work": Category.LOST_WORK,
}


@dataclass(frozen=True)
class JobWaste:
    """Per-job node-second ledger of one drill-down.

    ``name`` is the stable job label (``EAP#3``, restarts ``EAP#3+r``);
    ``index`` orders rows deterministically (initial jobs in submission
    order, then restarts in resubmission order).
    """

    index: int
    name: str
    compute: float
    base_io: float
    io_delay: float
    checkpoint: float
    checkpoint_wait: float
    recovery: float
    lost_work: float

    @property
    def useful(self) -> float:
        """Useful node-seconds attributed to this job."""
        return self.compute + self.base_io

    @property
    def waste(self) -> float:
        """Wasted node-seconds attributed to this job (category order)."""
        return (
            self.io_delay
            + self.checkpoint
            + self.checkpoint_wait
            + self.recovery
            + self.lost_work
        )


@dataclass(frozen=True)
class WasteDecomposition:
    """Aggregate + per-job waste breakdown of one campaign cell.

    The aggregate category floats are the run's accounting totals verbatim;
    see the module docstring for the exactness contract.  ``scenario`` is a
    display label (empty for ad-hoc configs); ``digest``/``strategy``/``seed``
    are the cell's cache key.
    """

    scenario: str
    strategy: str
    seed: int
    digest: str
    compute: float
    base_io: float
    io_delay: float
    checkpoint: float
    checkpoint_wait: float
    recovery: float
    lost_work: float
    allocated: float
    jobs: tuple[JobWaste, ...] = ()
    jobs_completed: int = 0
    jobs_failed: int = 0
    checkpoints_completed: int = 0
    failures_effective: int = 0

    # ------------------------------------------------------------ derived
    @property
    def useful(self) -> float:
        """Useful node-seconds (same expression as ``WasteBreakdown.useful``)."""
        return self.compute + self.base_io

    @property
    def waste(self) -> float:
        """Total wasted node-seconds — the components summed in category order.

        This is the same expression, evaluated in the same order, as
        :attr:`repro.simulation.results.WasteBreakdown.waste`, so it equals
        the recorded total bit-for-bit.
        """
        return (
            self.io_delay
            + self.checkpoint
            + self.checkpoint_wait
            + self.recovery
            + self.lost_work
        )

    @property
    def waste_ratio(self) -> float:
        """``waste / (useful + waste)`` — repr-exact match of the cached cell value."""
        total = self.useful + self.waste
        if total <= 0.0:
            return 0.0
        return self.waste / total

    @property
    def efficiency(self) -> float:
        """Useful fraction, ``1 - waste_ratio``."""
        return 1.0 - self.waste_ratio

    def waste_components(self) -> dict[str, float]:
        """The five waste components, in summation order."""
        return {name: getattr(self, name) for name in _WASTE_FIELDS}

    # ------------------------------------------------------------ construction
    @classmethod
    def from_simulation(
        cls,
        sim: Simulation,
        result: SimulationResult,
        *,
        digest: str,
        scenario: str = "",
    ) -> "WasteDecomposition":
        """Build the decomposition of a completed trace-enabled run.

        Requires the simulation to have run with ``collect_trace=True`` (which
        also enables per-job accounting); the aggregate floats are taken from
        ``result.breakdown`` so they are the exact values the cache recorded.
        """
        if sim.trace is None or not sim.accounting.tracks_jobs:
            raise AnalysisError(
                "waste decomposition needs a trace-enabled run "
                "(SimulationConfig.collect_trace=True)"
            )
        labels = _stable_job_labels(sim)
        ledgers = sim.accounting.job_totals()
        jobs: list[JobWaste] = []
        for index, (job_id, name) in enumerate(labels):
            ledger = ledgers.get(job_id)
            if ledger is None or not any(ledger.values()):
                continue
            jobs.append(
                JobWaste(
                    index=index,
                    name=name,
                    **{
                        field: ledger[category]
                        for field, category in _CATEGORY_BY_FIELD.items()
                    },
                )
            )
        b = result.breakdown
        return cls(
            scenario=scenario,
            strategy=result.strategy,
            seed=int(sim.config.seed or 0),
            digest=digest,
            compute=b.compute,
            base_io=b.base_io,
            io_delay=b.io_delay,
            checkpoint=b.checkpoint,
            checkpoint_wait=b.checkpoint_wait,
            recovery=b.recovery,
            lost_work=b.lost_work,
            allocated=b.allocated,
            jobs=tuple(jobs),
            jobs_completed=result.jobs_completed,
            jobs_failed=result.jobs_failed,
            checkpoints_completed=result.checkpoints_completed,
            failures_effective=result.failures_effective,
        )

    # ------------------------------------------------------------ serialisation
    def to_payload(self) -> dict:
        """JSON-encodable sidecar payload (floats stay repr-exact via json)."""
        return {
            "scenario": self.scenario,
            "strategy": self.strategy,
            "seed": self.seed,
            "digest": self.digest,
            "categories": {
                name: getattr(self, name)
                for name in (*_USEFUL_FIELDS, *_WASTE_FIELDS)
            },
            "allocated": self.allocated,
            "counters": {
                "jobs_completed": self.jobs_completed,
                "jobs_failed": self.jobs_failed,
                "checkpoints_completed": self.checkpoints_completed,
                "failures_effective": self.failures_effective,
            },
            "jobs": [
                {
                    "index": job.index,
                    "name": job.name,
                    **{
                        name: getattr(job, name)
                        for name in (*_USEFUL_FIELDS, *_WASTE_FIELDS)
                    },
                }
                for job in self.jobs
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "WasteDecomposition":
        """Rebuild a decomposition from a sidecar payload.

        Raises :class:`AnalysisError` on any malformed payload; callers
        treat that as a sidecar miss and re-simulate.
        """
        try:
            categories = payload["categories"]
            counters = payload.get("counters", {})
            jobs = tuple(
                JobWaste(
                    index=int(row["index"]),
                    name=str(row["name"]),
                    **{
                        name: float(row[name])
                        for name in (*_USEFUL_FIELDS, *_WASTE_FIELDS)
                    },
                )
                for row in payload.get("jobs", [])
            )
            return cls(
                scenario=str(payload.get("scenario", "")),
                strategy=str(payload["strategy"]),
                seed=int(payload["seed"]),
                digest=str(payload["digest"]),
                allocated=float(payload["allocated"]),
                jobs=jobs,
                jobs_completed=int(counters.get("jobs_completed", 0)),
                jobs_failed=int(counters.get("jobs_failed", 0)),
                checkpoints_completed=int(counters.get("checkpoints_completed", 0)),
                failures_effective=int(counters.get("failures_effective", 0)),
                **{
                    name: float(categories[name])
                    for name in (*_USEFUL_FIELDS, *_WASTE_FIELDS)
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(f"malformed trace sidecar payload: {exc}") from exc


def _stable_job_labels(sim: Simulation) -> list[tuple[int, str]]:
    """``(job_id, stable label)`` pairs, in deterministic order.

    ``Job.job_id`` comes from a process-global counter, so raw ids differ
    between two runs of the same cell in one process.  Labels are instead
    derived from submission order: initial jobs are ``<class>#<ordinal>``
    (1-based, generation order), and each restart appends ``+r`` to its
    parent's label (chaining for repeated failures), in resubmission order
    from the trace.
    """
    assert sim.trace is not None
    labels: dict[int, str] = {}
    ordered: list[tuple[int, str]] = []
    for ordinal, job in enumerate(sim.jobs, start=1):
        label = f"{job.app_class.name}#{ordinal}"
        labels[job.job_id] = label
        ordered.append((job.job_id, label))
    for event in sim.trace.of_kind(TraceEventType.RESTART_SUBMITTED):
        parent = event.detail.get("parent")
        # A malformed detail dict (no int parent) degrades to the "job#?"
        # placeholder rather than mislabelling some unrelated job.
        base = labels.get(parent, "job#?") if isinstance(parent, int) else "job#?"
        label = base + "+r"
        labels[event.job_id] = label
        ordered.append((event.job_id, label))
    return ordered


# Sanity: the field lists above must stay in lockstep with JobWaste.
assert {f.name for f in fields(JobWaste)} == {
    "index",
    "name",
    *_USEFUL_FIELDS,
    *_WASTE_FIELDS,
}

"""Rendering of waste decompositions.

``render_decomposition`` prints the human-readable per-cell breakdown
(aggregate components with their share of the waste, plus the top per-job
contributors); ``decomposition_to_csv`` exports the aggregate and every
per-job row with ``repr``-exact floats.  Both are pure functions of the
:class:`~repro.trace.decompose.WasteDecomposition`, so two drill-downs of
the same cell produce byte-identical text — the determinism the regression
suite pins.
"""

from __future__ import annotations

import csv
import io

from repro.trace.decompose import JobWaste, WasteDecomposition

__all__ = ["decomposition_to_csv", "render_decomposition"]

#: Display names of the waste components, in summation order.
_COMPONENT_LABELS: tuple[tuple[str, str], ...] = (
    ("io_delay", "I/O queue delay"),
    ("checkpoint", "checkpoint writes"),
    ("checkpoint_wait", "checkpoint wait"),
    ("recovery", "recovery reads"),
    ("lost_work", "lost work"),
)

_CSV_FIELDS: tuple[str, ...] = (
    "compute",
    "base_io",
    "io_delay",
    "checkpoint",
    "checkpoint_wait",
    "recovery",
    "lost_work",
)


def render_decomposition(
    decomposition: WasteDecomposition, *, top_jobs: int = 8, precision: int = 3
) -> str:
    """Plain-text per-cell waste breakdown."""
    d = decomposition
    cell = f"{d.scenario} / {d.strategy}" if d.scenario else d.strategy
    waste = d.waste
    lines = [
        f"Cell {cell} · seed {d.seed} · digest {d.digest[:12]}…",
        f"waste ratio          : {d.waste_ratio!r}",
        f"efficiency           : {d.efficiency:.{precision}f}",
        f"useful node-hours    : {d.useful / 3600.0:.1f} "
        f"(compute {d.compute / 3600.0:.1f}, base I/O {d.base_io / 3600.0:.1f})",
        f"jobs                 : {d.jobs_completed} completed, {d.jobs_failed} failed "
        f"({d.failures_effective} effective failure(s), "
        f"{d.checkpoints_completed} checkpoint(s))",
        "waste components (node-hours, share of waste):",
    ]
    for field, label in _COMPONENT_LABELS:
        value = getattr(d, field)
        share = value / waste if waste > 0.0 else 0.0
        lines.append(f"  {label:<19}: {value / 3600.0:10.2f}  {share:7.1%}")
    ranked = sorted(d.jobs, key=lambda job: (-job.waste, job.index))
    shown = ranked[: max(0, top_jobs)]
    if shown:
        lines.append(f"top {len(shown)} job(s) by waste (node-hours):")
        width = max(len(job.name) for job in shown)
        for job in shown:
            lines.append(
                f"  {job.name:<{width}}  waste {job.waste / 3600.0:8.2f} = "
                f"delay {job.io_delay / 3600.0:.2f} + ckpt {job.checkpoint / 3600.0:.2f} "
                f"+ wait {job.checkpoint_wait / 3600.0:.2f} "
                f"+ recovery {job.recovery / 3600.0:.2f} + lost {job.lost_work / 3600.0:.2f}"
            )
        if len(ranked) > len(shown):
            lines.append(f"  … {len(ranked) - len(shown)} more job(s) in the CSV export")
    return "\n".join(lines)


def decomposition_to_csv(decomposition: WasteDecomposition) -> str:
    """CSV export: one aggregate ``total`` row plus one row per job.

    Floats use ``repr`` (shortest-exact), so the export round-trips the
    decomposition and the ``waste``/``waste_ratio`` columns can be checked
    bit-for-bit against the result cache (CI does exactly that).
    """
    d = decomposition
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["scenario", "strategy", "seed", "scope", "job", *_CSV_FIELDS, "waste", "waste_ratio"]
    )

    def row(scope: str, job: str, source: WasteDecomposition | JobWaste, ratio: str) -> None:
        writer.writerow(
            [
                d.scenario,
                d.strategy,
                d.seed,
                scope,
                job,
                *[repr(getattr(source, field)) for field in _CSV_FIELDS],
                repr(source.waste),
                ratio,
            ]
        )

    row("total", "", d, repr(d.waste_ratio))
    for job in d.jobs:
        row("job", job.name, job, "")
    return buffer.getvalue()

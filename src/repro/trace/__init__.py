"""Per-cell trace drill-down: explain *where* a campaign cell's waste goes.

The campaign layer reduces every ``(scenario, strategy, seed)`` cell to one
scalar waste ratio.  This package re-opens a cell: it re-runs (or replays
from a cache sidecar) the single simulation behind the scalar with event
tracing enabled and decomposes the waste into its sources — checkpoint
writes, checkpoint-token waits, recovery reads, lost work and I/O-queue
delay — in aggregate and per job, with the components summing repr-exactly
to the cell's recorded waste ratio.

Entry points: :func:`drill_down_cell` (configuration + seed),
:meth:`repro.scenarios.runner.CampaignRunner.drill_down` (campaign-level
addressing) and ``coopckpt trace --campaign ...`` on the command line.
"""

from repro.trace.decompose import JobWaste, WasteDecomposition
from repro.trace.drilldown import CellDrillDown, drill_down_cell, drill_down_cell_detailed
from repro.trace.report import decomposition_to_csv, render_decomposition

__all__ = [
    "CellDrillDown",
    "JobWaste",
    "WasteDecomposition",
    "decomposition_to_csv",
    "drill_down_cell",
    "drill_down_cell_detailed",
    "render_decomposition",
]

"""Strategy registry: the seven named strategies of the paper.

A *strategy* pairs an I/O scheduler family with a checkpoint-period policy:

================  =====================  ==============
name              scheduler              period policy
================  =====================  ==============
oblivious-fixed   Oblivious              Fixed (1 h)
oblivious-daly    Oblivious              Young/Daly
ordered-fixed     Ordered (blocking)     Fixed (1 h)
ordered-daly      Ordered (blocking)     Young/Daly
orderednb-fixed   Ordered-NB             Fixed (1 h)
orderednb-daly    Ordered-NB             Young/Daly
least-waste       Least-Waste            Young/Daly
================  =====================  ==============

:func:`make_strategy` builds a :class:`Strategy` from its name;
``Strategy.make_scheduler`` instantiates the scheduler against a concrete
engine/I-O subsystem, and ``Strategy.policy`` provides the period policy.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass

from repro.apps.checkpoint_policy import CheckpointPolicy, make_policy
from repro.errors import ConfigurationError
from repro.iosched.base import IOScheduler
from repro.iosched.least_waste import LeastWasteScheduler
from repro.iosched.oblivious import ObliviousScheduler
from repro.iosched.ordered import OrderedScheduler
from repro.iosched.ordered_nb import OrderedNBScheduler
from repro.platform.io_subsystem import IOSubsystem
from repro.sim.engine import SimulationEngine
from repro.units import HOUR

__all__ = ["Strategy", "STRATEGIES", "make_strategy", "strategy_names"]


@dataclass(frozen=True)
class Strategy:
    """A named (scheduler family, checkpoint policy) pair."""

    name: str
    scheduler_cls: type[IOScheduler]
    policy: CheckpointPolicy
    label: str

    def make_scheduler(
        self,
        engine: SimulationEngine,
        io: IOSubsystem,
        node_mtbf_s: float,
    ) -> IOScheduler:
        """Instantiate the scheduler for one simulation run."""
        return self.scheduler_cls(engine, io, node_mtbf_s)

    @property
    def nonblocking_checkpoints(self) -> bool:
        """True when the strategy lets jobs compute while waiting to checkpoint."""
        return self.scheduler_cls.nonblocking_checkpoints

    @property
    def shares_bandwidth(self) -> bool:
        """True when concurrent transfers interfere (Oblivious only)."""
        return self.scheduler_cls.shares_bandwidth


_SCHEDULERS: dict[str, type[IOScheduler]] = {
    "oblivious": ObliviousScheduler,
    "ordered": OrderedScheduler,
    "orderednb": OrderedNBScheduler,
    "least-waste": LeastWasteScheduler,
}

_LABELS: dict[str, str] = {
    "oblivious-fixed": "Oblivious-Fixed",
    "oblivious-daly": "Oblivious-Daly",
    "ordered-fixed": "Ordered-Fixed",
    "ordered-daly": "Ordered-Daly",
    "orderednb-fixed": "Ordered-NB-Fixed",
    "orderednb-daly": "Ordered-NB-Daly",
    "least-waste": "Least-Waste",
}

#: Names of the seven strategies evaluated in the paper, in the order they
#: appear in the figures.
STRATEGIES: tuple[str, ...] = (
    "oblivious-fixed",
    "oblivious-daly",
    "ordered-fixed",
    "ordered-daly",
    "orderednb-fixed",
    "orderednb-daly",
    "least-waste",
)


def strategy_names() -> tuple[str, ...]:
    """The seven strategy names, in the paper's plotting order."""
    return STRATEGIES


def make_strategy(name: str, *, fixed_period_s: float = HOUR) -> Strategy:
    """Build a :class:`Strategy` from one of the names in :data:`STRATEGIES`.

    Parameters
    ----------
    name:
        Strategy name, case-insensitive (e.g. ``"orderednb-daly"``).
    fixed_period_s:
        Period used by the ``*-fixed`` variants (default one hour).
    """
    if not isinstance(name, str):
        raise ConfigurationError(
            f"strategy name must be a string, got {type(name).__name__}; "
            f"valid names: {', '.join(STRATEGIES)}"
        )
    key = name.strip().lower()
    if key not in _LABELS:
        message = f"unknown strategy {name!r}; expected one of {', '.join(STRATEGIES)}"
        close = difflib.get_close_matches(key, STRATEGIES, n=1, cutoff=0.6)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        raise ConfigurationError(message)
    if key == "least-waste":
        scheduler_key, policy_key = "least-waste", "daly"
    else:
        scheduler_key, policy_key = key.rsplit("-", 1)
    scheduler_cls = _SCHEDULERS[scheduler_key]
    policy = make_policy(policy_key, fixed_period_s=fixed_period_s)
    return Strategy(name=key, scheduler_cls=scheduler_cls, policy=policy, label=_LABELS[key])

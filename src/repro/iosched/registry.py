"""Strategy registry: parameterized strategy kinds plus the paper's seven names.

A *strategy* pairs an I/O scheduler family with a checkpoint-period policy.
Strategies are selected by :class:`~repro.iosched.spec.StrategySpec` — a
*kind* plus typed parameters with a canonical string form such as
``"ordered[policy=fixed,period_s=1800]"`` — and the seven named strategies
of the paper remain valid legacy aliases:

================  =====================  ==============
name              scheduler              period policy
================  =====================  ==============
oblivious-fixed   Oblivious              Fixed (1 h)
oblivious-daly    Oblivious              Young/Daly
ordered-fixed     Ordered (blocking)     Fixed (1 h)
ordered-daly      Ordered (blocking)     Young/Daly
orderednb-fixed   Ordered-NB             Fixed (1 h)
orderednb-daly    Ordered-NB             Young/Daly
least-waste       Least-Waste            Young/Daly
================  =====================  ==============

:func:`make_strategy` builds a :class:`Strategy` from a name or spec;
``Strategy.make_scheduler`` instantiates the scheduler against a concrete
engine/I-O subsystem, and ``Strategy.policy`` provides the period policy.
Third-party strategies plug in through :func:`register_strategy` (re-exported
from :mod:`repro.iosched.spec`); the contract mirrors the execution-backend
registry and is recorded in ROADMAP.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.checkpoint_policy import CheckpointPolicy, DalyPolicy, FixedPolicy, make_policy
from repro.errors import ConfigurationError
from repro.iosched.base import IOScheduler
from repro.iosched.least_waste import LeastWasteScheduler
from repro.iosched.oblivious import ObliviousScheduler
from repro.iosched.ordered import OrderedScheduler
from repro.iosched.ordered_nb import OrderedNBScheduler
from repro.iosched.spec import (
    ParamSpec,
    StrategySpec,
    canonical_strategy,
    format_param_value,
    kind_info,
    legacy_strategy_names,
    parse_strategy,
    register_strategy,
    strategy_kinds,
)
from repro.platform.io_subsystem import IOSubsystem
from repro.sim.engine import SimulationEngine
from repro.units import HOUR

__all__ = [
    "ParamSpec",
    "Strategy",
    "StrategySpec",
    "STRATEGIES",
    "canonical_strategy",
    "kind_info",
    "legacy_strategy_names",
    "make_strategy",
    "parse_strategy",
    "register_strategy",
    "resolved_strategy_spec",
    "strategy_kinds",
    "strategy_names",
]


@dataclass(frozen=True)
class Strategy:
    """A resolved (scheduler family, checkpoint policy) pair.

    ``name`` is the canonical spec string (for the paper's seven
    combinations, the bare legacy name) and is what results, cache keys and
    reports carry.  ``mtbf_bias`` scales the node MTBF handed to the
    scheduler — the Least-Waste tunable; 1.0 (the default) leaves behaviour
    bit-identical to the paper's heuristic.
    """

    name: str
    scheduler_cls: type[IOScheduler]
    policy: CheckpointPolicy
    label: str
    mtbf_bias: float = 1.0

    def make_scheduler(
        self,
        engine: SimulationEngine,
        io: IOSubsystem,
        node_mtbf_s: float,
    ) -> IOScheduler:
        """Instantiate the scheduler for one simulation run."""
        return self.scheduler_cls(engine, io, node_mtbf_s * self.mtbf_bias)

    @property
    def nonblocking_checkpoints(self) -> bool:
        """True when the strategy lets jobs compute while waiting to checkpoint."""
        return self.scheduler_cls.nonblocking_checkpoints

    @property
    def shares_bandwidth(self) -> bool:
        """True when concurrent transfers interfere (Oblivious only)."""
        return self.scheduler_cls.shares_bandwidth


#: Names of the seven strategies evaluated in the paper, in the order they
#: appear in the figures.  Parameterized specs and registered kinds are
#: accepted everywhere these names are; see :mod:`repro.iosched.spec`.
STRATEGIES: tuple[str, ...] = legacy_strategy_names()


def strategy_names() -> tuple[str, ...]:
    """The seven legacy strategy names, in the paper's plotting order."""
    return STRATEGIES


# --------------------------------------------------------------- built-ins
def _family_validate(spec: StrategySpec) -> None:
    """Cross-parameter check shared by the built-in families."""
    if spec.get("period_s") is not None and spec.get("policy", "daly") != "fixed":
        raise ConfigurationError(
            f"strategy {spec.kind!r}: period_s only applies with policy=fixed"
        )


def _family_label(spec: StrategySpec, display: str) -> str:
    """Human-readable label derived from the spec (legacy labels preserved)."""
    policy = spec.get("policy", "daly")
    extras = [(key, value) for key, value in spec.params if key != "policy"]
    if spec.kind == "least-waste" and policy == "daly":
        head = display
    else:
        head = f"{display}-{str(policy).capitalize()}"
    if extras:
        body = ",".join(f"{key}={format_param_value(value)}" for key, value in extras)
        head += f"[{body}]"
    return head


def _float_param(value: object) -> float:
    """Narrow an already-coerced spec parameter to ``float``.

    ``StrategySpec`` construction runs every parameter through
    :meth:`ParamSpec.coerce`, so a ``float``-typed parameter is numeric by
    the time a factory reads it — the assert records that invariant.
    """
    assert isinstance(value, (int, float)), value
    return float(value)


def _family_factory(scheduler_cls: type[IOScheduler], display: str):
    """Factory for the built-in families: policy/period (+ Least-Waste bias)."""

    def build(spec: StrategySpec, *, fixed_period_s: float = HOUR) -> Strategy:
        period = spec.get("period_s")
        policy = make_policy(
            str(spec.get("policy", "daly")),
            fixed_period_s=_float_param(period) if period is not None else fixed_period_s,
        )
        return Strategy(
            name=spec.canonical,
            scheduler_cls=scheduler_cls,
            policy=policy,
            label=_family_label(spec, display),
            mtbf_bias=_float_param(spec.get("mtbf_bias", 1.0)),
        )

    return build


_FAMILY_PARAMS: tuple[ParamSpec, ...] = (
    ParamSpec(
        "policy", str, default="daly", choices=("fixed", "daly"),
        help="checkpoint-period policy: per-class Young/Daly or a fixed period",
    ),
    ParamSpec(
        "period_s", float, default=None, positive=True,
        help="fixed checkpoint period in seconds (policy=fixed only; "
        "defaults to the run's fixed_period_s)",
    ),
)

_LEAST_WASTE_PARAMS: tuple[ParamSpec, ...] = _FAMILY_PARAMS + (
    ParamSpec(
        "mtbf_bias", float, default=1.0, positive=True,
        help="scales the node MTBF the waste scoring assumes "
        "(>1 biases toward fewer assumed failures)",
    ),
)

for _kind, _cls, _display, _params, _doc in (
    (
        "oblivious", ObliviousScheduler, "Oblivious", _FAMILY_PARAMS,
        "no coordination: transfers start immediately and share bandwidth",
    ),
    (
        "ordered", OrderedScheduler, "Ordered", _FAMILY_PARAMS,
        "single FCFS I/O token; jobs block (idle) while waiting",
    ),
    (
        "orderednb", OrderedNBScheduler, "Ordered-NB", _FAMILY_PARAMS,
        "FCFS token, but jobs keep computing while a checkpoint waits",
    ),
    (
        "least-waste", LeastWasteScheduler, "Least-Waste", _LEAST_WASTE_PARAMS,
        "cooperative token: serve the request minimizing expected waste",
    ),
):
    register_strategy(
        _kind,
        _family_factory(_cls, _display),
        params=_params,
        description=_doc,
        display=_display,
        validate=_family_validate,
        replace_existing=True,  # legacy alias "least-waste" shares the name
    )
del _kind, _cls, _display, _params, _doc


def make_strategy(name: str | StrategySpec, *, fixed_period_s: float = HOUR) -> Strategy:
    """Build a :class:`Strategy` from a name, spec string or :class:`StrategySpec`.

    Parameters
    ----------
    name:
        A legacy strategy name (e.g. ``"orderednb-daly"``), a parameterized
        spec string (``"ordered[policy=fixed,period_s=1800]"``) or a
        :class:`StrategySpec`; case-insensitive.
    fixed_period_s:
        Period used by fixed-policy strategies whose spec carries no
        explicit ``period_s`` (default one hour).
    """
    spec = parse_strategy(name)
    strategy = kind_info(spec.kind).factory(spec, fixed_period_s=fixed_period_s)
    if not isinstance(strategy, Strategy):
        raise ConfigurationError(
            f"strategy factory for kind {spec.kind!r} returned "
            f"{type(strategy).__name__}, expected Strategy"
        )
    return strategy


def resolved_strategy_spec(
    strategy: str | StrategySpec, *, fixed_period_s: float = HOUR
) -> str:
    """Explicit spec string with the *effective* policy and period resolved.

    Unlike :func:`~repro.iosched.spec.canonical_strategy` (which omits
    defaults so legacy cache keys survive), this spells everything out —
    ``"ordered-fixed"`` with a 30-minute run period resolves to
    ``"ordered[policy=fixed,period_s=1800]"`` — so exported tables
    distinguish cells that share a name but ran with different parameters.
    """
    spec = parse_strategy(strategy)
    built = make_strategy(spec, fixed_period_s=fixed_period_s)
    values = dict(spec.params)
    if isinstance(built.policy, FixedPolicy):
        values["policy"] = "fixed"
        values["period_s"] = built.policy.period_s
    elif isinstance(built.policy, DalyPolicy):
        values["policy"] = "daly"
        values.pop("period_s", None)
    info = kind_info(spec.kind)
    ordered = [param.name for param in info.params if param.name in values]
    ordered += [name for name in values if name not in ordered]
    body = ",".join(f"{name}={format_param_value(values[name])}" for name in ordered)
    return f"{spec.kind}[{body}]" if body else spec.kind

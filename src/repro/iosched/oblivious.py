"""Oblivious I/O scheduling (§3.1): no coordination, linear interference.

Every request starts its transfer immediately.  Concurrent transfers share
the aggregate bandwidth proportionally to the node counts of their jobs
(the :class:`~repro.platform.io_subsystem.IOSubsystem` implements the
fair-share arithmetic), so commits are dilated whenever I/O overlaps.  This
models today's uncoordinated production behaviour and is the baseline the
cooperative strategies are compared against.
"""

from __future__ import annotations

from repro.apps.job import Job
from repro.iosched.base import IORequest, IOScheduler

__all__ = ["ObliviousScheduler"]


class ObliviousScheduler(IOScheduler):
    """Uncoordinated I/O: all transfers start at once and interfere."""

    name = "oblivious"
    shares_bandwidth = True
    nonblocking_checkpoints = False

    def __init__(self, engine, io, node_mtbf_s: float) -> None:
        super().__init__(engine, io, node_mtbf_s)
        self._active: list[IORequest] = []

    def submit(self, request: IORequest) -> None:
        self._active.append(request)
        self._start_transfer(request)

    def cancel_job(self, job: Job) -> None:
        for request in list(self._active):
            if request.job is job:
                request.cancelled = True
                if request.transfer is not None:
                    self.io.abort(request.transfer)
                self._active.remove(request)

    def pending_requests(self) -> tuple[IORequest, ...]:
        # Nothing ever waits under oblivious scheduling.
        return ()

    def active_requests(self) -> tuple[IORequest, ...]:
        return tuple(self._active)

    def _after_completion(self, request: IORequest) -> None:
        if request in self._active:
            self._active.remove(request)

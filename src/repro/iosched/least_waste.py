"""Least-Waste I/O scheduling (§3.5).

Like Ordered-NB, checkpoints are non-blocking and a single transfer is in
flight at a time; but instead of serving requests in arrival order, the
token is granted to the request whose service minimizes the expected waste
inflicted on all the *other* pending requests (Eq. (1) and (2) of the
paper, implemented in :mod:`repro.core.least_waste`).

Blocking requests (input, output, recovery, regular I/O) are *I/O
candidates*: their jobs sit idle, so every second of delay is ``q_j``
node-seconds of deterministic waste.  Checkpoint requests are *checkpoint
candidates*: their jobs keep computing but accumulate failure exposure
proportional to the time since their last protected state.
"""

from __future__ import annotations

from repro.core.least_waste import Candidate, CkptCandidate, IOCandidate, select_candidate
from repro.iosched.base import IORequest, TokenScheduler

__all__ = ["LeastWasteScheduler"]


class LeastWasteScheduler(TokenScheduler):
    """Cooperative token scheduler minimizing expected platform waste."""

    name = "least-waste"
    shares_bandwidth = False
    nonblocking_checkpoints = True

    def _candidate_for(self, request: IORequest, now: float) -> Candidate:
        duration = self.io.duration_alone(request.volume_bytes)
        # Zero-volume requests (possible for synthetic classes with no input)
        # are served "for free"; give them an epsilon duration so the scoring
        # stays well defined and they win immediately.
        duration = max(duration, 1e-9)
        if request.kind.is_checkpoint:
            job = request.job
            last_capture = job.last_capture_time
            if last_capture is None:
                last_capture = request.submitted_at
            recovery = self.io.duration_alone(job.checkpoint_bytes)
            return CkptCandidate(
                key=request,
                duration=duration,
                nodes=float(job.nodes),
                since_last_checkpoint=max(0.0, now - last_capture),
                recovery_time=recovery,
            )
        return IOCandidate(
            key=request,
            duration=duration,
            nodes=float(request.job.nodes),
            waited=request.waiting_for(now),
        )

    def _select_next(self, pending: tuple[IORequest, ...]) -> IORequest:
        now = self.engine.now
        candidates = [self._candidate_for(request, now) for request in pending]
        best, _ = select_candidate(candidates, self.node_mtbf_s)
        selected = best.key
        assert isinstance(selected, IORequest)
        return selected

"""I/O request abstraction and the scheduler interfaces.

The simulator submits :class:`IORequest` objects to an :class:`IOScheduler`.
The scheduler decides *when* each request is granted access to the file
system (and therefore how long it waits and whether it shares bandwidth);
when the transfer starts the scheduler invokes ``on_granted`` and when it
finishes ``on_complete``, letting the job runtime advance the job's state
machine.

Two scheduler families exist:

* :class:`~repro.iosched.oblivious.ObliviousScheduler` grants everything
  immediately (transfers interfere);
* :class:`TokenScheduler` serializes transfers behind a single token and is
  specialised by the FCFS (Ordered / Ordered-NB) and Least-Waste policies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.apps.job import Job
from repro.apps.phases import IOKind
from repro.errors import SchedulingError
from repro.platform.io_subsystem import IOSubsystem, Transfer
from repro.sim.engine import SimulationEngine

__all__ = ["IORequest", "IOScheduler", "TokenScheduler"]


class IORequest:
    """One I/O request from a job to the shared file system.

    Attributes
    ----------
    job:
        The requesting job.
    kind:
        What the transfer is (input, output, recovery, regular I/O or
        checkpoint); drives blocking semantics and accounting.
    volume_bytes:
        Transfer volume.
    submitted_at:
        Time the request was submitted to the scheduler.
    on_granted / on_complete:
        Callbacks invoked with the request when the transfer starts and when
        it finishes.  ``on_granted`` is where a non-blocking checkpoint
        captures the job's progress.
    granted_at / completed_at:
        Times the transfer started / finished (``None`` until they happen).
    cancelled:
        True when the request was withdrawn (job failed or was killed).
    """

    __slots__ = (
        "job",
        "kind",
        "volume_bytes",
        "submitted_at",
        "on_granted",
        "on_complete",
        "granted_at",
        "completed_at",
        "cancelled",
        "transfer",
    )

    def __init__(
        self,
        job: Job,
        kind: IOKind,
        volume_bytes: float,
        submitted_at: float,
        on_granted: Callable[["IORequest"], None] | None = None,
        on_complete: Callable[["IORequest"], None] | None = None,
    ) -> None:
        if volume_bytes < 0.0:
            raise SchedulingError("volume_bytes must be non-negative")
        self.job = job
        self.kind = kind
        self.volume_bytes = float(volume_bytes)
        self.submitted_at = submitted_at
        self.on_granted = on_granted
        self.on_complete = on_complete
        self.granted_at: float | None = None
        self.completed_at: float | None = None
        self.cancelled = False
        self.transfer: Transfer | None = None

    @property
    def pending(self) -> bool:
        """True while the request waits for the file system."""
        return self.granted_at is None and not self.cancelled

    @property
    def in_flight(self) -> bool:
        """True while the transfer is running."""
        return self.granted_at is not None and self.completed_at is None and not self.cancelled

    @property
    def waited(self) -> float:
        """Waiting time between submission and grant (0 while still pending)."""
        if self.granted_at is None:
            return 0.0
        return self.granted_at - self.submitted_at

    def waiting_for(self, now: float) -> float:
        """How long the request has been waiting at time ``now``."""
        reference = self.granted_at if self.granted_at is not None else now
        return max(0.0, min(reference, now) - self.submitted_at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = (
            "cancelled"
            if self.cancelled
            else "pending" if self.pending else "in-flight" if self.in_flight else "done"
        )
        return f"IORequest({self.job.name}, {self.kind.value}, {self.volume_bytes:.3g} B, {status})"


class IOScheduler(ABC):
    """Common interface of every I/O scheduling strategy."""

    #: Short strategy family name, e.g. ``"oblivious"``.
    name: str = "abstract"
    #: True when concurrent transfers share bandwidth (Oblivious only).
    shares_bandwidth: bool = False
    #: True when jobs keep computing while waiting for a checkpoint token.
    nonblocking_checkpoints: bool = False

    def __init__(self, engine: SimulationEngine, io: IOSubsystem, node_mtbf_s: float) -> None:
        if node_mtbf_s <= 0.0:
            raise SchedulingError("node_mtbf_s must be positive")
        self.engine = engine
        self.io = io
        self.node_mtbf_s = node_mtbf_s

    # ------------------------------------------------------------ interface
    @abstractmethod
    def submit(self, request: IORequest) -> None:
        """Submit a request; the scheduler decides when to start its transfer."""

    @abstractmethod
    def cancel_job(self, job: Job) -> None:
        """Withdraw all pending requests and abort in-flight transfers of ``job``."""

    @abstractmethod
    def pending_requests(self) -> tuple[IORequest, ...]:
        """Snapshot of requests waiting to be granted."""

    @abstractmethod
    def active_requests(self) -> tuple[IORequest, ...]:
        """Snapshot of requests whose transfer is in flight."""

    # ------------------------------------------------------------ shared helpers
    def _start_transfer(self, request: IORequest) -> None:
        """Grant ``request`` now and start its transfer on the I/O subsystem."""
        request.granted_at = self.engine.now
        if request.on_granted is not None:
            request.on_granted(request)
        request.transfer = self.io.start(
            request.volume_bytes,
            weight=float(request.job.nodes),
            on_complete=lambda transfer, req=request: self._transfer_done(req),
            owner=request.job,
            label=f"{request.kind.value}:{request.job.name}",
        )

    def _transfer_done(self, request: IORequest) -> None:
        if request.cancelled:
            return
        request.completed_at = self.engine.now
        self._after_completion(request)
        if request.on_complete is not None:
            request.on_complete(request)

    def _after_completion(self, request: IORequest) -> None:
        """Hook for subclasses, called before the caller's completion callback."""


class TokenScheduler(IOScheduler):
    """Serializes all transfers behind a single I/O token.

    Subclasses choose the next request to serve by overriding
    :meth:`_select_next`.  Exactly one transfer is in flight at any time, so
    every granted transfer proceeds at the full aggregate bandwidth.
    """

    def __init__(self, engine: SimulationEngine, io: IOSubsystem, node_mtbf_s: float) -> None:
        super().__init__(engine, io, node_mtbf_s)
        self._pending: list[IORequest] = []
        self._current: IORequest | None = None

    # ------------------------------------------------------------ interface
    def submit(self, request: IORequest) -> None:
        self._pending.append(request)
        self._dispatch()

    def cancel_job(self, job: Job) -> None:
        for request in list(self._pending):
            if request.job is job:
                request.cancelled = True
                self._pending.remove(request)
        if self._current is not None and self._current.job is job:
            current = self._current
            current.cancelled = True
            if current.transfer is not None:
                self.io.abort(current.transfer)
            self._current = None
            self._dispatch()

    def pending_requests(self) -> tuple[IORequest, ...]:
        return tuple(self._pending)

    def active_requests(self) -> tuple[IORequest, ...]:
        return (self._current,) if self._current is not None else ()

    # ------------------------------------------------------------ internals
    def _dispatch(self) -> None:
        """Grant the token if it is free and requests are waiting."""
        if self._current is not None or not self._pending:
            return
        request = self._select_next(tuple(self._pending))
        if request not in self._pending:
            raise SchedulingError(
                f"{type(self).__name__}._select_next returned a request not in the pending pool"
            )
        self._pending.remove(request)
        self._current = request
        self._start_transfer(request)

    def _after_completion(self, request: IORequest) -> None:
        if self._current is request:
            self._current = None
        self._dispatch()

    @abstractmethod
    def _select_next(self, pending: tuple[IORequest, ...]) -> IORequest:
        """Pick the next request to serve among ``pending`` (non-empty)."""

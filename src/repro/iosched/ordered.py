"""Blocking Ordered FCFS I/O scheduling (§3.2).

All I/O (application I/O and checkpoints) is serialized behind a single
token granted in request-arrival order.  The granted transfer proceeds at
the full bandwidth; every other job with an outstanding request blocks
(stays idle) until its turn.  Compared to Oblivious, the average completion
time drops, but jobs pay for the serialization with idle wait time and the
achieved checkpoint period can exceed the requested one.
"""

from __future__ import annotations

from repro.iosched.base import IORequest, TokenScheduler

__all__ = ["OrderedScheduler"]


class OrderedScheduler(TokenScheduler):
    """Single I/O token, First-Come-First-Served, blocking waits."""

    name = "ordered"
    shares_bandwidth = False
    nonblocking_checkpoints = False

    def _select_next(self, pending: tuple[IORequest, ...]) -> IORequest:
        # FCFS: requests are kept in arrival order, serve the oldest.
        return pending[0]

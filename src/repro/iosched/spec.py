"""Parameterized strategy specifications and the open strategy registry.

A *strategy spec* is a :class:`StrategySpec`: a strategy ``kind`` (the
scheduler family, e.g. ``"ordered"``) plus typed parameters declared by the
kind's registration (e.g. the checkpoint-period policy and a fixed period in
seconds).  Specs have a canonical, round-trippable string form::

    ordered                               # all defaults (Young/Daly periods)
    ordered[policy=fixed]                 # fixed periods, length from the run
    ordered[policy=fixed,period_s=1800]   # explicit 30-minute fixed period
    least-waste[mtbf_bias=2]              # tuned Least-Waste risk model

Parsing is whitespace- and case-insensitive; formatting emits parameters in
their declared order with default values omitted.  The seven legacy names of
the paper (``ordered-fixed``, ``least-waste``, ...) remain valid aliases,
and — crucially for the on-disk result cache — a spec that collapses onto a
legacy combination formats back to the bare legacy string, so legacy cache
keys and digests are byte-identical to what they always were.

New strategy kinds plug in through :func:`register_strategy`, mirroring the
execution-backend registry (``repro.exec.runner.register_backend``): a
factory taking a resolved spec (plus the run's ``fixed_period_s`` fallback)
and returning a ``repro.iosched.registry.Strategy``.  The contract is
recorded in ROADMAP.md next to the backend contract.
"""

from __future__ import annotations

import difflib
import math
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "ParamSpec",
    "StrategyKindInfo",
    "StrategySpec",
    "canonical_strategy",
    "format_param_value",
    "kind_info",
    "legacy_strategy_names",
    "parse_strategy",
    "register_strategy",
    "strategy_kinds",
]


def format_param_value(value: object) -> str:
    """Canonical string form of one parameter value.

    Floats use shortest-exact ``repr`` (so values round-trip bit-exactly)
    with a trailing ``.0`` dropped — ``1800.0`` formats as ``1800`` and
    parses back to the same float.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        text = repr(value)
        return text[:-2] if text.endswith(".0") else text
    return str(value)


@dataclass(frozen=True)
class ParamSpec:
    """Declaration of one strategy parameter.

    Attributes
    ----------
    name:
        Parameter key (lowercase) as written in spec strings.
    type:
        Value type: ``float``, ``int``, ``str`` or ``bool``.  String values
        are normalised to lowercase so canonical forms are deterministic.
    default:
        Value assumed when the parameter is omitted; a parameter given at
        its default is dropped from the canonical form.  ``None`` marks a
        parameter with no inherent default (e.g. ``period_s``, which falls
        back to the run's ``fixed_period_s``) — such values always stay
        explicit.
    choices:
        Optional closed set of accepted values.
    positive:
        Require numeric values to be strictly positive.
    help:
        One-line description shown by ``coopckpt strategies``.
    """

    name: str
    type: type = float
    default: object | None = None
    choices: tuple[object, ...] | None = None
    positive: bool = False
    help: str = ""

    def coerce(self, value: object, *, context: str) -> object:
        """Validate and convert one raw value (string or Python) to the
        declared type, raising :class:`ConfigurationError` on mismatch."""
        try:
            if self.type is bool:
                if isinstance(value, bool):
                    coerced: object = value
                elif isinstance(value, str) and value.strip().lower() in ("true", "false"):
                    coerced = value.strip().lower() == "true"
                else:
                    raise ValueError(value)
            elif self.type is float:
                if isinstance(value, bool) or not isinstance(value, (int, float, str)):
                    raise ValueError(value)
                coerced = float(value)
                # Non-finite values would poison cache keys (and NaN breaks
                # spec equality), so they are never valid parameters.
                if not math.isfinite(coerced):
                    raise ValueError(value)
            elif self.type is int:
                if isinstance(value, bool) or not isinstance(value, (int, float, str)):
                    raise ValueError(value)
                if isinstance(value, float) and not value.is_integer():
                    raise ValueError(value)
                coerced = int(value)
            else:
                coerced = str(value).strip().lower()
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"{context}: parameter {self.name!r} expects a "
                f"{self.type.__name__}, got {value!r}"
            ) from None
        if self.choices is not None and coerced not in self.choices:
            raise ConfigurationError(
                f"{context}: parameter {self.name!r} must be one of "
                f"{', '.join(map(format_param_value, self.choices))}, got {value!r}"
            )
        if self.positive and isinstance(coerced, (int, float)) and coerced <= 0:
            raise ConfigurationError(
                f"{context}: parameter {self.name!r} must be positive, got {value!r}"
            )
        return coerced

    def describe_default(self) -> str:
        """Human-readable default for listings."""
        return "-" if self.default is None else format_param_value(self.default)


@dataclass(frozen=True)
class StrategyKindInfo:
    """One registered strategy kind: factory, parameter declarations, docs."""

    kind: str
    factory: Callable[..., object]
    params: tuple[ParamSpec, ...] = ()
    description: str = ""
    display: str = ""
    #: Optional cross-parameter validation hook, called with the normalised
    #: spec after per-parameter checks (e.g. "period_s needs policy=fixed").
    validate: Callable[["StrategySpec"], None] | None = None

    def param(self, name: str) -> ParamSpec | None:
        for spec in self.params:
            if spec.name == name:
                return spec
        return None


#: Registry of strategy kinds: kind -> registration info.  The built-in
#: families are registered by :mod:`repro.iosched.registry` at import time.
_KINDS: dict[str, StrategyKindInfo] = {}

#: The paper's seven strategy names, each an alias for (kind, params); the
#: canonical form of a spec matching one of these combinations is the bare
#: legacy name, which keeps historical cache keys and digests byte-identical.
_LEGACY_ALIASES: dict[str, tuple[str, tuple[tuple[str, object], ...]]] = {
    "oblivious-fixed": ("oblivious", (("policy", "fixed"),)),
    "oblivious-daly": ("oblivious", ()),
    "ordered-fixed": ("ordered", (("policy", "fixed"),)),
    "ordered-daly": ("ordered", ()),
    "orderednb-fixed": ("orderednb", (("policy", "fixed"),)),
    "orderednb-daly": ("orderednb", ()),
    "least-waste": ("least-waste", ()),
}

_LEGACY_BY_SPEC: dict[tuple[str, tuple[tuple[str, object], ...]], str] = {
    target: name for name, target in _LEGACY_ALIASES.items()
}


def legacy_strategy_names() -> tuple[str, ...]:
    """The seven legacy strategy names, in the paper's order."""
    return tuple(_LEGACY_ALIASES)


def _registered_kinds() -> dict[str, StrategyKindInfo]:
    """The kind registry, with the built-in families guaranteed present."""
    # Importing the registry module registers the built-ins; after the first
    # time this is a dict lookup in sys.modules.
    import repro.iosched.registry  # noqa: F401

    return _KINDS


def strategy_kinds() -> tuple[str, ...]:
    """Names of every registered strategy kind, registration order."""
    return tuple(_registered_kinds())


def _unknown_strategy_error(name: str) -> ConfigurationError:
    valid = [*_registered_kinds(), *(a for a in _LEGACY_ALIASES if a not in _KINDS)]
    message = f"unknown strategy {name!r}; expected one of {', '.join(valid)}"
    close = difflib.get_close_matches(name.strip().lower(), valid, n=1, cutoff=0.6)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    return ConfigurationError(message)


def kind_info(kind: str) -> StrategyKindInfo:
    """Registration info of one strategy kind (did-you-mean on unknowns)."""
    info = _registered_kinds().get(kind.strip().lower())
    if info is None:
        raise _unknown_strategy_error(kind)
    return info


def register_strategy(
    kind: str,
    factory: Callable[..., object],
    *,
    params: Sequence[ParamSpec] = (),
    description: str = "",
    display: str = "",
    validate: Callable[["StrategySpec"], None] | None = None,
    replace_existing: bool = False,
) -> None:
    """Register a strategy kind under ``kind``.

    ``factory`` receives the parsed :class:`StrategySpec` and the run's
    ``fixed_period_s`` fallback as a keyword argument, and returns a
    ``repro.iosched.registry.Strategy`` (see the strategy-registry contract
    in ROADMAP.md).  ``params`` declares the accepted parameters in the
    order the canonical form lists them.  Registering an existing kind (or
    shadowing a legacy alias) requires ``replace_existing=True`` so typos
    don't silently replace built-ins.
    """
    key = str(kind).strip().lower()
    if not key:
        raise ConfigurationError("strategy kind must be non-empty")
    if any(ch in key for ch in "[],= \t") :
        raise ConfigurationError(
            f"strategy kind {key!r} may not contain brackets, commas, '=' or whitespace"
        )
    if not replace_existing and (key in _KINDS or key in _LEGACY_ALIASES):
        raise ConfigurationError(
            f"strategy {key!r} is already registered; pass replace_existing=True to override"
        )
    declared = [param.name for param in params]
    if len(set(declared)) != len(declared):
        raise ConfigurationError(f"strategy {key!r} declares duplicate parameter names")
    _KINDS[key] = StrategyKindInfo(
        kind=key,
        factory=factory,
        params=tuple(params),
        description=description,
        display=display or key,
        validate=validate,
    )


@dataclass(frozen=True)
class StrategySpec:
    """A strategy kind plus typed parameters, normalised on construction.

    ``params`` may be given as a mapping or as ``(name, value)`` pairs;
    values are validated against the kind's declarations, parameters at
    their default value are dropped, and the remainder is ordered by
    declaration, so two specs compare (and hash) equal iff they select the
    same strategy.  The canonical string form is :attr:`canonical`.
    """

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        info = kind_info(self.kind)
        raw = self.params
        if isinstance(raw, Mapping):
            raw = tuple(raw.items())
        object.__setattr__(self, "kind", info.kind)
        object.__setattr__(self, "params", self._normalize(info, tuple(raw)))
        if info.validate is not None:
            info.validate(self)

    @staticmethod
    def _normalize(
        info: StrategyKindInfo, raw: tuple[tuple[str, object], ...]
    ) -> tuple[tuple[str, object], ...]:
        context = f"strategy {info.kind!r}"
        values: dict[str, object] = {}
        for key, value in raw:
            name = str(key).strip().lower()
            param = info.param(name)
            if param is None:
                declared = ", ".join(p.name for p in info.params) or "(none)"
                message = (
                    f"{context} has no parameter {name!r}; declared parameters: {declared}"
                )
                close = difflib.get_close_matches(
                    name, [p.name for p in info.params], n=1, cutoff=0.6
                )
                if close:
                    message += f" (did you mean {close[0]!r}?)"
                raise ConfigurationError(message)
            if name in values:
                raise ConfigurationError(f"{context}: duplicate parameter {name!r}")
            values[name] = param.coerce(value, context=context)
        return tuple(
            (param.name, values[param.name])
            for param in info.params
            if param.name in values and values[param.name] != param.default
        )

    # ------------------------------------------------------------ access
    def get(self, name: str, default: object | None = None) -> object | None:
        """Value of parameter ``name``, or the kind's declared default, or
        ``default`` when neither exists."""
        for key, value in self.params:
            if key == name:
                return value
        param = kind_info(self.kind).param(name)
        if param is not None and param.default is not None:
            return param.default
        return default

    @property
    def canonical(self) -> str:
        """Canonical, round-trippable string form (the cache-key form).

        Specs matching one of the paper's seven strategies collapse to the
        bare legacy name, preserving historical cache keys.
        """
        legacy = _LEGACY_BY_SPEC.get((self.kind, self.params))
        if legacy is not None:
            return legacy
        if not self.params:
            return self.kind
        body = ",".join(f"{key}={format_param_value(value)}" for key, value in self.params)
        return f"{self.kind}[{body}]"

    def __str__(self) -> str:
        return self.canonical

    def with_params(self, **params: object) -> "StrategySpec":
        """Copy of this spec with additional/overriding parameters."""
        merged = dict(self.params)
        merged.update(params)
        return StrategySpec(self.kind, tuple(merged.items()))

    # ------------------------------------------------------------ parsing
    @classmethod
    def parse(cls, text: str) -> "StrategySpec":
        """Parse ``"kind"`` or ``"kind[key=value,...]"`` (or a legacy name).

        Whitespace around tokens and letter case are ignored; parameter
        values may not contain ``[ ] , =``.
        """
        if not isinstance(text, str):
            raise ConfigurationError(
                f"strategy must be a string or StrategySpec, got "
                f"{type(text).__name__}; valid names include "
                f"{', '.join(_LEGACY_ALIASES)}"
            )
        stripped = text.strip()
        key = stripped.lower()
        if key in _LEGACY_ALIASES:
            kind, params = _LEGACY_ALIASES[key]
            return cls(kind, params)
        if "[" not in stripped:
            if "]" in stripped:
                raise ConfigurationError(f"malformed strategy spec {text!r}: stray ']'")
            if not key:
                raise ConfigurationError("strategy name must be non-empty")
            return cls(key, ())
        head, _, rest = stripped.partition("[")
        if not rest.endswith("]") or "]" in rest[:-1] or "[" in rest:
            raise ConfigurationError(
                f"malformed strategy spec {text!r}: expected kind[key=value,...]"
            )
        kind = head.strip().lower()
        if not kind:
            raise ConfigurationError(f"malformed strategy spec {text!r}: missing kind")
        body = rest[:-1].strip()
        params: list[tuple[str, object]] = []
        if body:
            for item in body.split(","):
                name, sep, value = item.partition("=")
                name, value = name.strip(), value.strip()
                if not sep or not name or not value:
                    raise ConfigurationError(
                        f"malformed strategy spec {text!r}: parameter {item.strip()!r} "
                        "must look like key=value"
                    )
                params.append((name, value))
        return cls(kind, tuple(params))


def parse_strategy(value: "str | StrategySpec") -> StrategySpec:
    """Coerce a strategy given as a name, spec string or :class:`StrategySpec`."""
    if isinstance(value, StrategySpec):
        return value
    return StrategySpec.parse(value)


def canonical_strategy(value: "str | StrategySpec") -> str:
    """Canonical string form of a strategy (the cache-key/digest form).

    This is the single validator every layer routes strategy input through:
    :class:`~repro.simulation.config.SimulationConfig`, scenarios, the
    experiment harness and the CLI all share its error messages (including
    the did-you-mean suggestion on near-miss names).
    """
    return parse_strategy(value).canonical

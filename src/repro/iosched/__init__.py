"""I/O scheduling strategies (paper §3).

Four strategies decide when the file system serves each I/O request:

* :class:`~repro.iosched.oblivious.ObliviousScheduler` — no coordination;
  every request starts immediately and concurrent transfers share the
  bandwidth (linear interference).  This is the status quo.
* :class:`~repro.iosched.ordered.OrderedScheduler` — a single I/O token
  granted First-Come-First-Served; jobs block (idle) while they wait.
* :class:`~repro.iosched.ordered_nb.OrderedNBScheduler` — same FCFS token,
  but jobs keep computing while they wait for a *checkpoint* token.
* :class:`~repro.iosched.least_waste.LeastWasteScheduler` — the paper's
  cooperative heuristic: the token goes to the request that minimizes the
  expected waste inflicted on all other waiting requests (Eq. (1)/(2)).

Strategies are selected by *spec* — a kind plus typed parameters with a
canonical string form such as ``"ordered[policy=fixed,period_s=1800]"``
(see :mod:`repro.iosched.spec`); the paper's seven names (each family in a
``fixed`` and a ``daly`` period variant, Least-Waste with Daly periods)
remain valid aliases.  Strategy instances are created through
:mod:`repro.iosched.registry`, and third-party strategies plug in with
:func:`register_strategy`.
"""

from repro.iosched.base import IORequest, IOScheduler, TokenScheduler
from repro.iosched.oblivious import ObliviousScheduler
from repro.iosched.ordered import OrderedScheduler
from repro.iosched.ordered_nb import OrderedNBScheduler
from repro.iosched.least_waste import LeastWasteScheduler
from repro.iosched.registry import (
    STRATEGIES,
    ParamSpec,
    Strategy,
    StrategySpec,
    canonical_strategy,
    make_strategy,
    parse_strategy,
    register_strategy,
    resolved_strategy_spec,
    strategy_kinds,
    strategy_names,
)

__all__ = [
    "IORequest",
    "IOScheduler",
    "TokenScheduler",
    "ObliviousScheduler",
    "OrderedScheduler",
    "OrderedNBScheduler",
    "LeastWasteScheduler",
    "ParamSpec",
    "Strategy",
    "StrategySpec",
    "STRATEGIES",
    "canonical_strategy",
    "make_strategy",
    "parse_strategy",
    "register_strategy",
    "resolved_strategy_spec",
    "strategy_kinds",
    "strategy_names",
]

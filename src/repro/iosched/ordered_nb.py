"""Non-blocking Ordered FCFS I/O scheduling (§3.3).

The token is still granted First-Come-First-Served, but a job waiting for a
*checkpoint* token keeps computing until the scheduler signals that the
token is available; the checkpoint then captures the job's state at that
instant.  Initial input, final output and recovery I/O remain blocking (the
job cannot progress without its data).

Postponing a checkpoint increases the job's exposure to failures, but if the
postponed checkpoint completes, a later failure rolls back to the (more
recent) postponed state rather than to the originally requested instant.
"""

from __future__ import annotations

from repro.iosched.base import IORequest, TokenScheduler

__all__ = ["OrderedNBScheduler"]


class OrderedNBScheduler(TokenScheduler):
    """FCFS token with non-blocking checkpoint waits."""

    name = "ordered-nb"
    shares_bandwidth = False
    nonblocking_checkpoints = True

    def _select_next(self, pending: tuple[IORequest, ...]) -> IORequest:
        # FCFS, identical to Ordered: the difference between the two
        # strategies lies entirely in the blocking semantics flag above,
        # which the job runtime consults while a checkpoint request waits.
        return pending[0]

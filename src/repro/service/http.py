"""The campaign-results HTTP API (``coopckpt serve``).

A stdlib-only JSON API in front of one shared
:class:`~repro.store.ResultStore` and a :class:`~repro.service.jobs.JobManager`
— the same threaded :class:`http.server.ThreadingHTTPServer` pattern as the
worker metrics endpoint, grown a router.  Endpoints:

========================================  =====================================
``GET  /healthz``                         liveness probe, ``{"ok": true}``
``GET  /metrics``                         job counts, request counter, store stats
``GET  /v1/presets``                      submittable preset campaign names
``POST /v1/jobs``                         submit a campaign (preset / JSON / TOML)
``GET  /v1/jobs``                         every job's snapshot
``GET  /v1/jobs/<id>``                    one job's snapshot
``GET  /v1/jobs/<id>/result``             finished campaign summaries (409 until done)
``GET  /v1/jobs/<id>/csv``                the campaign CSV export (text/csv)
``GET  /v1/jobs/<id>/cells``              cell listing; ``?scenario=&strategy=&seed=``
``GET  /v1/jobs/<id>/trace``              waste decomposition; ``?scenario=&strategy=&rep=``
========================================  =====================================

The CSV endpoint calls the same :func:`~repro.scenarios.report.campaign_to_csv`
as ``coopckpt campaign --csv``, on the same :class:`CampaignResult` type —
so a served export is byte-identical to the offline one for the same
campaign and cache.  Errors are JSON: bad requests
(:class:`~repro.errors.ConfigurationError`) map to 400, unknown jobs/paths
to 404, results not ready to 409, everything unexpected to 500 — a broken
request must never take the service down.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigurationError, ReproError
from repro.service.jobs import JobManager, campaign_from_request, result_payload
from repro.store.base import ResultStore

__all__ = ["CampaignService"]

_MAX_BODY_BYTES = 4 * 1024 * 1024  # campaign matrices are small; refuse blobs


class _HTTPStatus(Exception):
    """A deliberate non-200 response (status + JSON error message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _single_param(query: dict[str, list[str]], name: str) -> str | None:
    values = query.get(name)
    if not values:
        return None
    if len(values) > 1:
        raise _HTTPStatus(400, f"duplicate query parameter {name!r}")
    return values[0]


def _int_param(query: dict[str, list[str]], name: str) -> int | None:
    raw = _single_param(query, name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise _HTTPStatus(400, f"query parameter {name!r} must be an integer") from None


class CampaignService:
    """Serve campaign submission, results and drill-downs over HTTP.

    Binds eagerly (a busy port fails construction with a
    :class:`ConfigurationError`, which the CLI maps to exit 2); request
    handling starts with :meth:`serve_forever` (blocking, for the CLI) or
    :meth:`start` (background thread, for tests).  Bind to port 0 to let
    the OS pick — the chosen port is in :attr:`port`.
    """

    def __init__(
        self,
        manager: JobManager,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.manager = manager
        self.requests = 0
        self._lock = threading.Lock()
        service = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                service._handle(self, "GET")

            def do_POST(self) -> None:  # noqa: N802 (stdlib API name)
                service._handle(self, "POST")

            def log_message(self, format: str, *args: object) -> None:
                pass  # request logs belong to the client, not the server tty

        try:
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
        except OSError as exc:
            raise ConfigurationError(f"cannot serve on {host}:{port}: {exc}") from exc
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread: threading.Thread | None = None
        self._serving = False

    @property
    def store(self) -> ResultStore:
        return self.manager.store

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------ lifecycle
    def serve_forever(self) -> None:
        """Handle requests on the calling thread until :meth:`close`."""
        self._serving = True
        self._httpd.serve_forever()

    def start(self) -> "CampaignService":
        """Handle requests on a background daemon thread (for tests)."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"serve-:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        # shutdown() waits on serve_forever's exit handshake, so calling it
        # on a bound-but-never-served instance would block forever.
        if self._serving:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ dispatch
    def _handle(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        with self._lock:
            self.requests += 1
        split = urlsplit(handler.path)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        try:
            status, payload = self._route(handler, method, path, query)
        except _HTTPStatus as exc:
            self._send_json(handler, exc.status, {"error": str(exc)})
            return
        except ConfigurationError as exc:
            self._send_json(handler, 400, {"error": str(exc)})
            return
        except ReproError as exc:
            self._send_json(handler, 500, {"error": str(exc)})
            return
        except Exception as exc:  # one bad request must not kill the service
            self._send_json(handler, 500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        if isinstance(payload, bytes):  # pre-encoded non-JSON body (CSV)
            self._send(handler, status, payload, "text/csv; charset=utf-8")
        else:
            self._send_json(handler, status, payload)

    def _route(
        self,
        handler: BaseHTTPRequestHandler,
        method: str,
        path: str,
        query: dict[str, list[str]],
    ) -> tuple[int, object]:
        if path == "/healthz":
            return 200, {"ok": True}
        if path == "/metrics":
            return 200, self._metrics()
        if path == "/v1/presets":
            from repro.scenarios.presets import CAMPAIGNS

            return 200, {"presets": sorted(CAMPAIGNS)}
        if path == "/v1/jobs":
            if method == "POST":
                body = self._read_json(handler)
                campaign = campaign_from_request(body)
                job = self.manager.submit(campaign)
                return 202, job.snapshot()
            return 200, {"jobs": [job.snapshot() for job in self.manager.jobs()]}
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise _HTTPStatus(405, f"{method} not allowed here")
            parts = path.split("/")[3:]  # ["<id>"] or ["<id>", "<aspect>"]
            if len(parts) > 2:
                raise _HTTPStatus(404, f"unknown path {path!r}")
            job = self.manager.get(parts[0])
            if job is None:
                raise _HTTPStatus(404, f"no job {parts[0]!r}")
            aspect = parts[1] if len(parts) == 2 else None
            if aspect is None:
                return 200, job.snapshot()
            if aspect in ("result", "csv", "cells"):
                result = job.result
                if result is None:
                    raise _HTTPStatus(
                        409,
                        f"job {job.id} is {job.state}"
                        + (f": {job.error}" if job.error else "; poll until done"),
                    )
                if aspect == "result":
                    return 200, result_payload(result)
                if aspect == "csv":
                    from repro.scenarios.report import campaign_to_csv

                    return 200, campaign_to_csv(result).encode("utf-8")
                return 200, {
                    "cells": self.manager.cells(
                        job,
                        scenario=_single_param(query, "scenario"),
                        strategy=_single_param(query, "strategy"),
                        seed=_int_param(query, "seed"),
                    )
                }
            if aspect == "trace":
                scenario = _single_param(query, "scenario")
                strategy = _single_param(query, "strategy")
                if scenario is None or strategy is None:
                    raise _HTTPStatus(
                        400, "trace needs ?scenario=<name>&strategy=<name>[&rep=N]"
                    )
                rep = _int_param(query, "rep") or 0
                return 200, self.manager.drill(job, scenario, strategy, rep)
            raise _HTTPStatus(404, f"unknown path {path!r}")
        raise _HTTPStatus(
            404,
            f"unknown path {path!r} (try /healthz, /metrics, /v1/presets, /v1/jobs)",
        )

    # ------------------------------------------------------------ helpers
    def _metrics(self) -> dict:
        store = self.store
        try:
            stats = dataclasses.asdict(store.stats())
        except Exception as exc:  # metrics must stay scrapeable
            stats = {"error": repr(exc)}
        with self._lock:
            requests = self.requests
        return {
            "requests": requests,
            "jobs": self.manager.counts(),
            "store": {
                "kind": store.kind,
                "root": str(store.root),
                "hits": store.hits,
                "misses": store.misses,
                "writes": store.writes,
                "stats": stats,
            },
        }

    def _read_json(self, handler: BaseHTTPRequestHandler) -> object:
        try:
            length = int(handler.headers.get("Content-Length", "0"))
        except ValueError:
            raise _HTTPStatus(400, "bad Content-Length header") from None
        if length <= 0:
            raise _HTTPStatus(400, "request needs a JSON body (Content-Length)")
        if length > _MAX_BODY_BYTES:
            raise _HTTPStatus(413, f"body over {_MAX_BODY_BYTES} bytes")
        raw = handler.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPStatus(400, f"body is not valid JSON: {exc}") from None

    def _send_json(
        self, handler: BaseHTTPRequestHandler, status: int, payload: object
    ) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        self._send(handler, status, body, "application/json")

    def _send(
        self,
        handler: BaseHTTPRequestHandler,
        status: int,
        body: bytes,
        content_type: str,
    ) -> None:
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", content_type)
            handler.send_header("Content-Length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

"""Campaign-results service: the HTTP front door to a shared result store.

``coopckpt serve`` (see :mod:`repro.cli`) wires one
:class:`~repro.store.ResultStore` (filesystem or SQLite, chosen with
``--store``) into a :class:`~repro.service.jobs.JobManager` and exposes it
through :class:`~repro.service.http.CampaignService` — submit campaigns,
poll progress, list cells, stream CSV exports and fetch per-cell waste
decompositions, all over stdlib HTTP + JSON, no shell access to the cache
directory required.  Every number the service returns travels through the
same code paths as the CLI (``CampaignRunner``, ``campaign_to_csv``,
``repro.trace``), so served results are bit-identical to offline ones.
"""

from repro.service.http import CampaignService
from repro.service.jobs import (
    CampaignJob,
    JobManager,
    campaign_from_request,
    result_payload,
)

__all__ = [
    "CampaignJob",
    "CampaignService",
    "JobManager",
    "campaign_from_request",
    "result_payload",
]

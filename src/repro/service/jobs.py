"""Campaign jobs: background execution behind the results service.

:class:`JobManager` turns a submitted :class:`~repro.scenarios.campaign.Campaign`
into a :class:`CampaignJob` running on a daemon thread through the ordinary
:class:`~repro.scenarios.runner.CampaignRunner` — the service layer adds
*no* execution semantics of its own, so a job's
:class:`~repro.scenarios.runner.CampaignResult` is repr-identical to the
same campaign run from the CLI against the same store.  All jobs share one
:class:`~repro.store.ResultStore`, which is the whole point: every seed a
job simulates warms the store for every later job (and every CLI user),
and a re-submitted campaign is served entirely from cache.

Progress is observed through the runner's
:class:`~repro.exec.runner.ProgressEvent` stream: each (scenario, strategy)
cell emits a final event with ``completed == total``, which is what
advances the job's ``cells_done`` counter.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping

from repro.errors import ConfigurationError
from repro.exec.digest import config_digest
from repro.exec.runner import ParallelRunner, ProgressEvent
from repro.scenarios.campaign import Campaign
from repro.scenarios.runner import CampaignResult, CampaignRunner
from repro.stats.montecarlo import derive_seeds
from repro.store.base import ResultStore

__all__ = ["CampaignJob", "JobManager", "campaign_from_request", "result_payload"]


def campaign_from_request(body: Mapping) -> Campaign:
    """Build a campaign from one submitted JSON request body.

    Accepted shapes (exactly one source):

    * ``{"preset": "smoke", ...}`` — a named preset, with optional
      ``num_runs`` / ``horizon_days`` / ``strategies`` overrides;
    * ``{"campaign": {...}}`` — an inline campaign matrix, the same schema
      ``Campaign.from_file`` reads from JSON files;
    * ``{"toml": "..."}`` — a campaign matrix as TOML text, the same schema
      ``Campaign.from_file`` reads from TOML files.
    """
    if not isinstance(body, Mapping):
        raise ConfigurationError("request body must be a JSON object")
    sources = [key for key in ("preset", "campaign", "toml") if key in body]
    if len(sources) != 1:
        raise ConfigurationError(
            "submit exactly one campaign source: 'preset', 'campaign' (inline "
            "JSON matrix) or 'toml' (matrix as TOML text)"
        )
    overrides: dict[str, object] = {}
    num_runs = body.get("num_runs")
    if num_runs is not None:
        if not isinstance(num_runs, int) or num_runs <= 0:
            raise ConfigurationError("num_runs must be a positive integer")
        overrides["num_runs"] = num_runs
    horizon_days = body.get("horizon_days")
    if horizon_days is not None:
        if not isinstance(horizon_days, (int, float)) or horizon_days <= 0:
            raise ConfigurationError("horizon_days must be a positive number")
        overrides["horizon_days"] = float(horizon_days)
    strategies = body.get("strategies")
    if strategies is not None:
        if not isinstance(strategies, list) or not all(
            isinstance(s, str) for s in strategies
        ):
            raise ConfigurationError("strategies must be an array of spec strings")
        overrides["strategies"] = tuple(strategies)

    source = sources[0]
    if source == "preset":
        from repro.scenarios.presets import make_campaign

        preset = body["preset"]
        if not isinstance(preset, str):
            raise ConfigurationError("preset must be a string")
        return make_campaign(preset, **overrides)
    if overrides:
        raise ConfigurationError(
            "num_runs/horizon_days/strategies overrides only apply to presets; "
            "edit the submitted matrix instead"
        )
    if source == "campaign":
        data = body["campaign"]
        if not isinstance(data, Mapping):
            raise ConfigurationError("'campaign' must be a JSON object (the matrix)")
        return Campaign.from_mapping(data, source="<submitted campaign>")
    try:
        import tomllib
    except ModuleNotFoundError as exc:  # pragma: no cover - py3.10
        raise ConfigurationError(
            "TOML submissions need Python 3.11+ (tomllib) on the server; "
            "submit the matrix as inline JSON under 'campaign' instead"
        ) from exc
    toml_text = body["toml"]
    if not isinstance(toml_text, str):
        raise ConfigurationError("'toml' must be a string (the matrix as TOML text)")
    try:
        data = tomllib.loads(toml_text)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigurationError(f"cannot parse submitted TOML: {exc}") from exc
    return Campaign.from_mapping(data, source="<submitted toml>")


class CampaignJob:
    """One submitted campaign and its lifecycle.

    States: ``queued`` → ``running`` → ``done`` | ``failed``.  All mutable
    fields are guarded by ``_lock``; :meth:`snapshot` is the thread-safe
    read the HTTP layer serves.
    """

    def __init__(self, job_id: str, campaign: Campaign) -> None:
        self.id = job_id
        self.campaign = campaign
        self.scenarios = campaign.scenarios()  # expanded once, reused everywhere
        self.state = "queued"
        self.error: str | None = None
        self.result: CampaignResult | None = None
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.cells_total = sum(len(s.strategies) for s in self.scenarios)
        self.cells_done = 0
        self.current_cell: str | None = None
        self.seeds_cached = 0
        self.seeds_simulated = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------ progress
    def on_progress(self, event: ProgressEvent) -> None:
        """Advance the job's counters from one runner progress event."""
        with self._lock:
            self.current_cell = event.label
            if event.completed >= event.total:
                # Every cell ends in exactly one completed==total event
                # (all-cached cells emit it up-front, simulated cells from
                # their final seed), so this counts finished cells.
                self.cells_done += 1
                self.current_cell = None
                self.seeds_cached += event.cached
                self.seeds_simulated += event.total - event.cached

    def snapshot(self) -> dict:
        """JSON-ready view of the job (no result payload; see ``/result``)."""
        with self._lock:
            return {
                "id": self.id,
                "campaign": self.campaign.name,
                "state": self.state,
                "error": self.error,
                "cells_total": self.cells_total,
                "cells_done": self.cells_done,
                "current_cell": self.current_cell,
                "seeds_cached": self.seeds_cached,
                "seeds_simulated": self.seeds_simulated,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
            }


def result_payload(result: CampaignResult) -> dict:
    """One finished campaign as JSON (floats repr-exact via ``json.dumps``)."""
    return {
        "campaign": result.campaign,
        "strategies": list(result.strategies),
        "outcomes": [
            {
                "scenario": outcome.scenario.name,
                "best": outcome.best_strategy(),
                "summaries": {
                    strategy: summary.as_dict()
                    for strategy, summary in outcome.summaries.items()
                },
            }
            for outcome in result.outcomes
        ],
    }


class JobManager:
    """Submits, tracks and queries campaign jobs over one shared store."""

    def __init__(self, store: ResultStore, *, workers: int = 1) -> None:
        if workers <= 0:
            raise ConfigurationError("workers must be positive")
        self.store = store
        self.workers = workers
        self._jobs: dict[str, CampaignJob] = {}
        self._lock = threading.Lock()
        self._counter = 0

    # ------------------------------------------------------------ execution
    def _make_runner(self, progress) -> ParallelRunner:
        return ParallelRunner(
            backend="process" if self.workers > 1 else "serial",
            workers=self.workers,
            cache=self.store,
            progress=progress,
        )

    def submit(self, campaign: Campaign) -> CampaignJob:
        """Register ``campaign`` and start running it on a daemon thread."""
        with self._lock:
            self._counter += 1
            job = CampaignJob(f"job-{self._counter:04d}", campaign)
            self._jobs[job.id] = job
        thread = threading.Thread(target=self._run, args=(job,), name=job.id, daemon=True)
        thread.start()
        return job

    def _run(self, job: CampaignJob) -> None:
        with job._lock:
            job.state = "running"
            job.started_at = time.time()
        try:
            runner = self._make_runner(job.on_progress)
            try:
                result = CampaignRunner(runner=runner).run(job.campaign)
            finally:
                runner.close()
            with job._lock:
                job.result = result
                job.state = "done"
                job.finished_at = time.time()
        except Exception as exc:  # a failed job must never kill the service
            with job._lock:
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                job.finished_at = time.time()

    # ------------------------------------------------------------ queries
    def get(self, job_id: str) -> CampaignJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[CampaignJob]:
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # ------------------------------------------------------------ cells
    def cells(
        self,
        job: CampaignJob,
        *,
        scenario: str | None = None,
        strategy: str | None = None,
        seed: int | None = None,
    ) -> list[dict]:
        """Filterable per-(scenario, strategy) cell listing of one done job.

        Each record carries the cell's summary statistics, its store
        coordinates (config digest + derived seeds) and the per-seed values
        currently held by the shared store — the self-serve answer to
        "which simulated node-seconds back this number".  ``seed`` filters
        to cells whose derived seeds include that exact seed.
        """
        result = job.result
        if result is None:
            raise ConfigurationError(f"job {job.id} has no result (state: {job.state})")
        from repro.iosched.registry import resolved_strategy_spec

        records: list[dict] = []
        for outcome in result.outcomes:
            if scenario is not None and outcome.scenario.name != scenario:
                continue
            cell_scenario = outcome.scenario
            seeds = (
                list(derive_seeds(cell_scenario.base_seed, cell_scenario.num_runs))
                if cell_scenario.base_seed is not None
                else None
            )
            best = outcome.best_strategy()
            for cell_strategy in result.strategies:
                if cell_strategy not in outcome.summaries:
                    continue
                if strategy is not None and cell_strategy != strategy:
                    continue
                wanted = seeds
                if seed is not None:
                    if seeds is None or seed not in seeds:
                        continue
                    wanted = [seed]
                digest = config_digest(cell_scenario.config(cell_strategy))
                try:
                    spec = resolved_strategy_spec(
                        cell_strategy, fixed_period_s=cell_scenario.fixed_period_s
                    )
                except ConfigurationError:
                    spec = cell_strategy  # unregistered plugin kind: degrade
                record = {
                    "scenario": cell_scenario.name,
                    "strategy": cell_strategy,
                    "spec": spec,
                    "best": cell_strategy == best,
                    "digest": digest,
                    "stats": outcome.summaries[cell_strategy].as_dict(),
                }
                if wanted is not None:
                    record["seeds"] = wanted
                    record["values"] = {
                        str(s): self.store.probe(digest, cell_strategy, s)
                        for s in wanted
                    }
                records.append(record)
        return records

    # ------------------------------------------------------------ drill-down
    def drill(
        self, job: CampaignJob, scenario_name: str, strategy: str, rep: int = 0
    ) -> dict:
        """Waste decomposition of one cell of ``job``, as a JSON payload.

        Served through :mod:`repro.trace`: replayed for free from the
        store's trace sidecar when one exists, otherwise re-simulated once
        (which also warms the store for the next caller).
        """
        by_name = {s.name: s for s in job.scenarios}
        scenario = by_name.get(scenario_name)
        if scenario is None:
            names = ", ".join(repr(name) for name in by_name)
            raise ConfigurationError(
                f"no scenario named {scenario_name!r} in job {job.id}; "
                f"known scenarios: {names}"
            )
        runner = ParallelRunner(cache=self.store)
        try:
            decomposition = CampaignRunner(runner=runner).drill_down(
                scenario, strategy, rep
            )
        finally:
            runner.close()
        return decomposition.to_payload()

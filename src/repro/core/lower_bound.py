"""Lower bound on platform waste under an aggregate I/O constraint (§4).

The paper derives the optimal checkpoint periods for a steady-state mix of
application classes sharing a single I/O subsystem.  Without constraints
each class would use its Young/Daly period (Eq. (5)); when the aggregate
checkpoint I/O pressure

    F = sum_i n_i * C_i / P_i                                     (Eq. 6)

would exceed 1 (the file system cannot absorb all checkpoints even when they
are perfectly serialized), the Karush-Kuhn-Tucker conditions give the
constrained optimum (Eq. (8))::

    P_i(lambda) = sqrt( 2 * mu * N * (q_i / N + lambda) * C_i / q_i**2 )

where ``lambda >= 0`` is the smallest value such that ``F <= 1``.  The
resulting platform waste (Eq. (7)) is a *lower bound* for any feasible
checkpointing strategy, because Eq. (6) is necessary but not sufficient
(the checkpoints must additionally be orchestrated into a non-overlapping
schedule).

This module implements Theorem 1: the per-class optimal periods, the
numerical search for ``lambda`` and the resulting waste bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np
from scipy.optimize import brentq

from repro.core.daly import young_period
from repro.core.waste import platform_waste
from repro.errors import AnalysisError

__all__ = [
    "SteadyStateClass",
    "LowerBoundResult",
    "io_pressure",
    "constrained_periods",
    "optimal_periods",
    "platform_lower_bound",
]


@dataclass(frozen=True)
class SteadyStateClass:
    """Steady-state description of one application class.

    Attributes
    ----------
    name:
        Human-readable class name (e.g. ``"EAP"``).
    count:
        ``n_i`` — number of jobs of this class running concurrently.  May be
        fractional: the steady-state analysis only needs the average.
    nodes:
        ``q_i`` — nodes per job.
    checkpoint_time:
        ``C_i`` — interference-free checkpoint commit time (seconds).
    recovery_time:
        ``R_i`` — recovery time (seconds).  Defaults to ``checkpoint_time``
        (symmetric read/write bandwidth, as assumed in §5).
    """

    name: str
    count: float
    nodes: float
    checkpoint_time: float
    recovery_time: float | None = None

    def __post_init__(self) -> None:
        if self.count <= 0.0:
            raise AnalysisError(f"class {self.name!r}: count must be positive")
        if self.nodes <= 0.0:
            raise AnalysisError(f"class {self.name!r}: nodes must be positive")
        if self.checkpoint_time <= 0.0:
            raise AnalysisError(f"class {self.name!r}: checkpoint_time must be positive")
        if self.recovery_time is not None and self.recovery_time < 0.0:
            raise AnalysisError(f"class {self.name!r}: recovery_time must be >= 0")

    @property
    def effective_recovery_time(self) -> float:
        """Recovery time, defaulting to the checkpoint time when unspecified."""
        return self.checkpoint_time if self.recovery_time is None else self.recovery_time


@dataclass(frozen=True)
class LowerBoundResult:
    """Result of the constrained steady-state optimization (Theorem 1).

    Attributes
    ----------
    periods:
        Optimal checkpoint period per class (seconds), in input order.
    daly_periods:
        Unconstrained Young/Daly period per class (seconds).
    lam:
        The KKT multiplier ``lambda`` (0 when the I/O constraint is slack).
    io_pressure:
        Value of Eq. (6) at the optimal periods.
    waste:
        Lower bound on the platform waste (Eq. (7)).
    unconstrained_waste:
        Platform waste if every class used its Daly period regardless of the
        I/O constraint (equal to ``waste`` when the constraint is slack).
    constrained:
        True when the I/O constraint is active (``lambda > 0``).
    class_names:
        Class names, in input order.
    """

    periods: tuple[float, ...]
    daly_periods: tuple[float, ...]
    lam: float
    io_pressure: float
    waste: float
    unconstrained_waste: float
    constrained: bool
    class_names: tuple[str, ...]

    @property
    def efficiency(self) -> float:
        """Upper bound on platform efficiency, ``1 / (1 + waste)``.

        Eq. (3)/(7) express waste relative to useful work, so the
        corresponding efficiency (useful fraction of the allocated
        resources) is ``1 / (1 + W)``.
        """
        return 1.0 / (1.0 + self.waste)

    @property
    def waste_fraction(self) -> float:
        """The bound expressed as a fraction of total resources, ``W / (1 + W)``.

        This is the scale on which the simulator reports its waste ratio
        (wasted node-seconds over total accounted node-seconds), so the
        figure experiments plot this value as the "theoretical model" curve.
        Since ``x / (1 + x) <= x``, it remains a valid lower bound.
        """
        return self.waste / (1.0 + self.waste)

    def period_for(self, name: str) -> float:
        """Optimal period of the class called ``name``."""
        try:
            index = self.class_names.index(name)
        except ValueError as exc:
            raise AnalysisError(f"unknown class {name!r}") from exc
        return self.periods[index]


def _as_arrays(
    classes: Sequence[SteadyStateClass],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    if len(classes) == 0:
        raise AnalysisError("at least one application class is required")
    n = np.array([c.count for c in classes], dtype=float)
    q = np.array([c.nodes for c in classes], dtype=float)
    ckpt = np.array([c.checkpoint_time for c in classes], dtype=float)
    rec = np.array([c.effective_recovery_time for c in classes], dtype=float)
    return n, q, ckpt, rec


def io_pressure(
    periods: Iterable[float],
    classes: Sequence[SteadyStateClass],
) -> float:
    """Aggregate checkpoint I/O pressure ``F`` of Eq. (6).

    ``F <= 1`` is necessary for the periods to be feasible: the fraction of
    time the file system spends committing checkpoints cannot exceed 1 even
    with a perfect, interference-free schedule.
    """
    n, _, ckpt, _ = _as_arrays(classes)
    p = np.asarray(list(periods), dtype=float)
    if p.shape != n.shape:
        raise AnalysisError("periods must have one entry per class")
    if np.any(p <= 0.0):
        raise AnalysisError("all periods must be positive")
    return float(np.sum(n * ckpt / p))


def constrained_periods(
    lam: float,
    classes: Sequence[SteadyStateClass],
    total_nodes: float,
    mu_ind: float,
) -> np.ndarray:
    """Per-class periods of Eq. (8) for a given multiplier ``lambda``.

    With ``lam == 0`` this reduces to the Young/Daly periods.
    """
    if lam < 0.0:
        raise AnalysisError("lambda must be non-negative")
    if total_nodes <= 0.0 or mu_ind <= 0.0:
        raise AnalysisError("total_nodes and mu_ind must be positive")
    _, q, ckpt, _ = _as_arrays(classes)
    return np.sqrt(2.0 * mu_ind * total_nodes * (q / total_nodes + lam) * ckpt / (q * q))


def optimal_periods(
    classes: Sequence[SteadyStateClass],
    total_nodes: float,
    mu_ind: float,
    *,
    max_lambda: float = 1e12,
) -> tuple[np.ndarray, float]:
    """Optimal checkpoint periods under the I/O constraint (Theorem 1).

    Returns the per-class periods and the multiplier ``lambda``.  ``lambda``
    is 0 when the Daly periods already satisfy Eq. (6), otherwise it is the
    (unique) positive root of ``F(lambda) = 1`` found numerically.
    """
    daly = constrained_periods(0.0, classes, total_nodes, mu_ind)
    if io_pressure(daly, classes) <= 1.0:
        return daly, 0.0

    def pressure_minus_one(lam: float) -> float:
        return io_pressure(constrained_periods(lam, classes, total_nodes, mu_ind), classes) - 1.0

    # F(lambda) is continuous and strictly decreasing towards 0, so a root
    # exists; grow the bracket geometrically until it is enclosed.
    lo = 0.0
    hi = 1.0 / total_nodes
    while pressure_minus_one(hi) > 0.0:
        hi *= 4.0
        if hi > max_lambda:
            raise AnalysisError(
                "could not bracket lambda: the I/O constraint cannot be satisfied "
                "for any checkpoint period (checkpoint times too large?)"
            )
    lam = float(brentq(pressure_minus_one, lo, hi, xtol=1e-18, rtol=1e-12, maxiter=200))
    return constrained_periods(lam, classes, total_nodes, mu_ind), lam


def platform_lower_bound(
    classes: Sequence[SteadyStateClass],
    total_nodes: float,
    mu_ind: float,
) -> LowerBoundResult:
    """Lower bound on the platform waste (Theorem 1).

    Parameters
    ----------
    classes:
        Steady-state description of the concurrently running application
        classes.
    total_nodes:
        ``N`` — number of nodes of the platform.
    mu_ind:
        Individual-node MTBF (seconds).
    """
    n, q, ckpt, rec = _as_arrays(classes)
    daly = constrained_periods(0.0, classes, total_nodes, mu_ind)
    periods, lam = optimal_periods(classes, total_nodes, mu_ind)

    waste = platform_waste(periods, ckpt, rec, q, n, total_nodes, mu_ind)
    unconstrained = platform_waste(daly, ckpt, rec, q, n, total_nodes, mu_ind)
    pressure = io_pressure(periods, classes)
    if waste + 1e-12 < unconstrained:
        # The constrained optimum can never beat the unconstrained one.
        raise AnalysisError(
            f"internal error: constrained waste {waste} below unconstrained {unconstrained}"
        )
    return LowerBoundResult(
        periods=tuple(float(p) for p in periods),
        daly_periods=tuple(float(p) for p in daly),
        lam=lam,
        io_pressure=pressure,
        waste=waste,
        unconstrained_waste=unconstrained,
        constrained=lam > 0.0,
        class_names=tuple(c.name for c in classes),
    )

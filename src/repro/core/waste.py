"""Waste models: single job (Eq. (3)) and platform-wide (Eq. (4)/(7)).

The *waste* of a job is the fraction of its allocated node-time spent on
resilience rather than useful progress.  For a job of class ``A_i`` running
on ``q_i`` nodes, checkpointing every ``P_i`` seconds with commit time
``C_i`` and recovery time ``R_i`` on a platform with individual-node MTBF
``mu``::

    W_i(P_i) = C_i / P_i + (q_i / mu) * (P_i / 2 + R_i)          (Eq. 3)

The platform waste is the node-weighted average over all concurrently
running jobs (Eq. (4)), which expands to Eq. (7) when the per-class waste is
substituted.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.core.daly import young_period
from repro.errors import AnalysisError

__all__ = [
    "job_waste",
    "optimal_job_waste",
    "platform_waste",
]


def job_waste(
    period: float,
    checkpoint_time: float,
    recovery_time: float,
    q: float,
    mu_ind: float,
) -> float:
    """Steady-state waste of a single job, Eq. (3) of the paper.

    Parameters
    ----------
    period:
        Checkpointing period ``P_i`` (seconds).
    checkpoint_time:
        Interference-free checkpoint commit time ``C_i`` (seconds).
    recovery_time:
        Recovery (checkpoint read) time ``R_i`` (seconds).
    q:
        Number of nodes enrolled by the job.
    mu_ind:
        MTBF of an individual node (seconds).

    Returns
    -------
    float
        The dimensionless waste ratio ``W_i``.  The first-order model is
        only meaningful when the result is well below 1.
    """
    if period <= 0.0:
        raise AnalysisError(f"period must be positive, got {period!r}")
    if checkpoint_time < 0.0 or recovery_time < 0.0:
        raise AnalysisError("checkpoint_time and recovery_time must be non-negative")
    if q <= 0.0 or mu_ind <= 0.0:
        raise AnalysisError("q and mu_ind must be positive")
    return checkpoint_time / period + (q / mu_ind) * (period / 2.0 + recovery_time)


def optimal_job_waste(
    checkpoint_time: float,
    recovery_time: float,
    q: float,
    mu_ind: float,
) -> tuple[float, float]:
    """Waste of a job checkpointing at its unconstrained Daly period.

    Returns
    -------
    (period, waste):
        The Young/Daly period ``sqrt(2 mu_i C_i)`` (with ``mu_i = mu_ind/q``)
        and the corresponding waste from Eq. (3).
    """
    if checkpoint_time <= 0.0:
        raise AnalysisError("checkpoint_time must be positive")
    mu_job = mu_ind / q
    period = young_period(checkpoint_time, mu_job)
    return period, job_waste(period, checkpoint_time, recovery_time, q, mu_ind)


def platform_waste(
    periods: Sequence[float],
    checkpoint_times: Sequence[float],
    recovery_times: Sequence[float],
    qs: Sequence[float],
    counts: Sequence[float],
    total_nodes: float,
    mu_ind: float,
) -> float:
    """Platform waste, Eq. (4)/(7): node-weighted mean of per-class waste.

    Parameters
    ----------
    periods, checkpoint_times, recovery_times, qs, counts:
        Per-class arrays: checkpoint period ``P_i``, commit time ``C_i``,
        recovery time ``R_i``, nodes per job ``q_i`` and number of
        concurrently running jobs ``n_i``.
    total_nodes:
        ``N``, the number of nodes of the platform (used as the weight
        denominator; the classes need not exactly fill the platform).
    mu_ind:
        Individual-node MTBF (seconds).
    """
    p = np.asarray(periods, dtype=float)
    c = np.asarray(checkpoint_times, dtype=float)
    r = np.asarray(recovery_times, dtype=float)
    q = np.asarray(qs, dtype=float)
    n = np.asarray(counts, dtype=float)
    if not (p.shape == c.shape == r.shape == q.shape == n.shape):
        raise AnalysisError("per-class arrays must all have the same length")
    if p.size == 0:
        raise AnalysisError("at least one application class is required")
    if np.any(p <= 0.0):
        raise AnalysisError("all periods must be positive")
    if total_nodes <= 0.0 or mu_ind <= 0.0:
        raise AnalysisError("total_nodes and mu_ind must be positive")
    per_class = c / p + (q / mu_ind) * (p / 2.0 + r)
    weights = n * q / float(total_nodes)
    value = float(np.sum(weights * per_class))
    if not math.isfinite(value):
        raise AnalysisError("platform waste is not finite; check the inputs")
    return value

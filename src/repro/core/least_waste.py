"""Least-Waste candidate scoring (§3.5, Eq. (1) and (2)).

When the I/O token becomes free, the Least-Waste scheduler considers every
pending request and grants the token to the one whose service minimizes the
expected waste inflicted on *all the other* candidates:

* an **I/O candidate** (initial input, final output, recovery, or regular
  I/O) of duration ``v_i`` keeps its ``q_i`` processors idle; every other
  I/O candidate ``j`` accumulates deterministic waste ``q_j (d_j + v_i)``
  where ``d_j`` is how long it has already been waiting;
* a **checkpoint candidate** keeps computing while it waits, but remains
  exposed to failures: its expected waste over the granted transfer of
  duration ``T`` is ``(T / mu_ind) * q_j^2 * (R_j + d_j + T/2)`` where
  ``d_j`` is the time since its last checkpoint.

The candidate with the minimal total expected waste is served next.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Union

from repro.errors import AnalysisError

__all__ = [
    "IOCandidate",
    "CkptCandidate",
    "Candidate",
    "expected_waste",
    "select_candidate",
]


@dataclass(frozen=True)
class IOCandidate:
    """A pending blocking I/O request (input, output, recovery or regular I/O).

    Attributes
    ----------
    key:
        Opaque identifier used to report the selection (e.g. the job id).
    duration:
        ``v_i`` — time the transfer will occupy the I/O subsystem (seconds).
    nodes:
        ``q_i`` — processors enrolled by the requesting job.
    waited:
        ``d_i`` — how long the job has already been blocked on this request
        (seconds).
    """

    key: object
    duration: float
    nodes: float
    waited: float

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise AnalysisError("IOCandidate.duration must be positive")
        if self.nodes <= 0.0:
            raise AnalysisError("IOCandidate.nodes must be positive")
        if self.waited < 0.0:
            raise AnalysisError("IOCandidate.waited must be non-negative")


@dataclass(frozen=True)
class CkptCandidate:
    """A pending (non-blocking) checkpoint request.

    Attributes
    ----------
    key:
        Opaque identifier used to report the selection (e.g. the job id).
    duration:
        ``C_i`` — checkpoint commit time at full bandwidth (seconds).
    nodes:
        ``q_i`` — processors enrolled by the requesting job.
    since_last_checkpoint:
        ``d_i`` — time since the job's last protected state (seconds); this
        is the amount of work at risk if a failure strikes now.
    recovery_time:
        ``R_i`` — time to read back the last checkpoint after a failure
        (seconds).
    """

    key: object
    duration: float
    nodes: float
    since_last_checkpoint: float
    recovery_time: float

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise AnalysisError("CkptCandidate.duration must be positive")
        if self.nodes <= 0.0:
            raise AnalysisError("CkptCandidate.nodes must be positive")
        if self.since_last_checkpoint < 0.0:
            raise AnalysisError("CkptCandidate.since_last_checkpoint must be non-negative")
        if self.recovery_time < 0.0:
            raise AnalysisError("CkptCandidate.recovery_time must be non-negative")


Candidate = Union[IOCandidate, CkptCandidate]


def _service_duration(candidate: Candidate) -> float:
    return candidate.duration


def expected_waste(
    selected: Candidate,
    candidates: Sequence[Candidate],
    mu_ind: float,
) -> float:
    """Expected waste ``W_i`` of serving ``selected`` next (Eq. (1)/(2)).

    The waste is accumulated over every *other* candidate in ``candidates``
    (the selected one is excluded if present, compared by identity).

    Parameters
    ----------
    selected:
        The candidate whose transfer would be granted the I/O token.
    candidates:
        The full pool of pending candidates (may or may not contain
        ``selected``).
    mu_ind:
        Individual-node MTBF (seconds), used for the failure-exposure term
        of checkpoint candidates.
    """
    if mu_ind <= 0.0:
        raise AnalysisError("mu_ind must be positive")
    duration = _service_duration(selected)
    total = 0.0
    for other in candidates:
        if other is selected:
            continue
        if isinstance(other, IOCandidate):
            # Deterministic: q_j processors stay idle for d_j + duration.
            total += other.nodes * (other.waited + duration)
        elif isinstance(other, CkptCandidate):
            # Probabilistic: failure probability duration/mu_j with
            # mu_j = mu_ind / q_j, losing R_j + d_j + duration/2 on q_j nodes.
            total += (
                duration
                / mu_ind
                * other.nodes
                * other.nodes
                * (other.recovery_time + other.since_last_checkpoint + duration / 2.0)
            )
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown candidate type: {type(other)!r}")
    return total


def select_candidate(
    candidates: Sequence[Candidate],
    mu_ind: float,
) -> tuple[Candidate, float]:
    """Pick the candidate whose service minimizes the expected waste.

    Ties are broken in favour of the candidate appearing first in
    ``candidates`` (i.e. FCFS order when the pool is kept in arrival order),
    which matches the behaviour of the Ordered-NB scheduler when all
    candidates are equivalent.

    Returns
    -------
    (candidate, waste):
        The selected candidate and its expected waste.

    Raises
    ------
    AnalysisError
        If ``candidates`` is empty.
    """
    if len(candidates) == 0:
        raise AnalysisError("select_candidate requires at least one candidate")
    best: Candidate | None = None
    best_waste = float("inf")
    for candidate in candidates:
        waste = expected_waste(candidate, candidates, mu_ind)
        if waste < best_waste:
            best = candidate
            best_waste = waste
    assert best is not None
    return best, best_waste

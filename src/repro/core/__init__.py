"""Analytical models from the paper.

* :mod:`repro.core.daly` — Young/Daly optimal checkpoint periods and MTBF
  scaling rules (paper §1 and Eq. (5)).
* :mod:`repro.core.waste` — single-job waste (Eq. (3)) and platform waste
  (Eq. (4)/(7)).
* :mod:`repro.core.lower_bound` — the constrained optimization of §4
  (Theorem 1): optimal per-class periods under the aggregate I/O constraint
  of Eq. (6), and the resulting lower bound on platform waste.
* :mod:`repro.core.least_waste` — the Least-Waste scoring heuristic of §3.5
  (Eq. (1) and (2)) used by the cooperative I/O scheduler.
"""

from repro.core.daly import daly_period, young_period, job_mtbf, system_mtbf
from repro.core.waste import job_waste, optimal_job_waste, platform_waste
from repro.core.lower_bound import (
    LowerBoundResult,
    SteadyStateClass,
    io_pressure,
    optimal_periods,
    platform_lower_bound,
)
from repro.core.least_waste import (
    CkptCandidate,
    IOCandidate,
    expected_waste,
    select_candidate,
)

__all__ = [
    "daly_period",
    "young_period",
    "job_mtbf",
    "system_mtbf",
    "job_waste",
    "optimal_job_waste",
    "platform_waste",
    "LowerBoundResult",
    "SteadyStateClass",
    "io_pressure",
    "optimal_periods",
    "platform_lower_bound",
    "IOCandidate",
    "CkptCandidate",
    "expected_waste",
    "select_candidate",
]

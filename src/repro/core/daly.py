"""Young/Daly optimal checkpoint periods and MTBF scaling.

The paper (§1, §2 and Eq. (5)) uses the first-order Young/Daly formula for
the optimal checkpoint period of a single job::

    P_opt = sqrt(2 * mu * C)

where ``C`` is the (interference-free) checkpoint commit time and ``mu`` the
MTBF seen by the job.  For a job enrolling ``q`` processors on a platform
whose individual-processor MTBF is ``mu_ind``, ``mu = mu_ind / q``.

This module provides those formulas plus Daly's higher-order refinement,
which is exposed for completeness (the paper and the simulator both use the
first-order form).
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError

__all__ = [
    "job_mtbf",
    "system_mtbf",
    "young_period",
    "daly_period",
    "daly_period_high_order",
    "checkpoint_time",
]


def _check_positive(name: str, value: float) -> None:
    if not (value > 0.0) or not math.isfinite(value):
        raise AnalysisError(f"{name} must be a positive finite number, got {value!r}")


def job_mtbf(mu_ind: float, q: int | float) -> float:
    """MTBF experienced by a job enrolling ``q`` processors.

    Follows the classical scaling rule ``mu_job = mu_ind / q`` (paper §1):
    a job running on ``q`` processors sees failures ``q`` times as often as
    a single processor.

    Parameters
    ----------
    mu_ind:
        MTBF of an individual processor, in seconds.
    q:
        Number of processors enrolled by the job (must be >= 1).
    """
    _check_positive("mu_ind", mu_ind)
    if q < 1:
        raise AnalysisError(f"q must be >= 1, got {q!r}")
    return mu_ind / float(q)


def system_mtbf(mu_ind: float, num_nodes: int | float) -> float:
    """MTBF of the whole platform of ``num_nodes`` processors.

    Identical scaling rule as :func:`job_mtbf`; provided as a separate name
    because experiments are parameterised by *node* MTBF while the paper
    quotes the corresponding *system* MTBF (e.g. a 2-year node MTBF on Cielo
    maps to roughly one failure per hour platform-wide).
    """
    return job_mtbf(mu_ind, num_nodes)


def young_period(checkpoint_time_s: float, mtbf_s: float) -> float:
    """First-order optimal checkpoint period ``sqrt(2 * mu * C)``.

    Parameters
    ----------
    checkpoint_time_s:
        Interference-free checkpoint commit duration ``C`` (seconds).
    mtbf_s:
        MTBF ``mu`` seen by the job (seconds).  Use :func:`job_mtbf` to
        derive it from the individual-processor MTBF.
    """
    _check_positive("checkpoint_time_s", checkpoint_time_s)
    _check_positive("mtbf_s", mtbf_s)
    return math.sqrt(2.0 * mtbf_s * checkpoint_time_s)


def daly_period(checkpoint_time_s: float, mtbf_s: float) -> float:
    """Alias of :func:`young_period`.

    The paper refers to the first-order period as the "Daly period"
    (``P_Daly = sqrt(2 C mu)``); both names are provided so code reads like
    the paper.
    """
    return young_period(checkpoint_time_s, mtbf_s)


def daly_period_high_order(checkpoint_time_s: float, mtbf_s: float) -> float:
    """Daly's higher-order estimate of the optimum checkpoint period.

    Implements the refinement from Daly (FGCS 2006)::

        P = C + sqrt(2 C mu) * (1 + 1/3 sqrt(C / (2 mu)) + (C / (2 mu)) / 9) - C   if C < 2 mu
        P = mu                                                                     otherwise

    expressed here as the *total* period between the starts of two
    consecutive checkpoints.  The simulator does not use this form (the
    paper uses the first-order one), but it is useful for sensitivity
    studies.
    """
    _check_positive("checkpoint_time_s", checkpoint_time_s)
    _check_positive("mtbf_s", mtbf_s)
    c, mu = checkpoint_time_s, mtbf_s
    if c >= 2.0 * mu:
        return mu
    ratio = c / (2.0 * mu)
    return math.sqrt(2.0 * mu * c) * (1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0)


def checkpoint_time(checkpoint_bytes: float, bandwidth_bytes_per_s: float) -> float:
    """Interference-free checkpoint commit time ``C = size / beta``.

    Parameters
    ----------
    checkpoint_bytes:
        Size of the (coordinated) checkpoint of the whole job, in bytes.
    bandwidth_bytes_per_s:
        Aggregate file-system bandwidth available to the transfer, bytes/s.
    """
    _check_positive("checkpoint_bytes", checkpoint_bytes)
    _check_positive("bandwidth_bytes_per_s", bandwidth_bytes_per_s)
    return checkpoint_bytes / bandwidth_bytes_per_s

"""Space-shared node pool.

The job scheduler allocates whole nodes to jobs; nodes are never shared
between jobs (only the file system is).  The pool keeps the node → job
mapping so the failure injector can determine which job (if any) a failing
node was running.

Allocation hands out the lowest-numbered free nodes.  The model does not
capture network topology, so the identity of the nodes only matters for
failure targeting; first-fit over node ids is sufficient and deterministic.
"""

from __future__ import annotations

from repro.errors import SchedulingError

__all__ = ["NodePool"]


class NodePool:
    """Tracks which nodes are free and which job owns each allocated node."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise SchedulingError("num_nodes must be positive")
        self._num_nodes = num_nodes
        # Sorted container of free node ids.  A sorted list plus set gives
        # O(q) allocation of the q lowest free ids and O(1) membership tests.
        self._free: list[int] = list(range(num_nodes))
        self._free_set: set[int] = set(self._free)
        self._owner: dict[int, object] = {}

    # ------------------------------------------------------------ queries
    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the pool."""
        return self._num_nodes

    @property
    def num_free(self) -> int:
        """Number of currently unallocated nodes."""
        return len(self._free_set)

    @property
    def num_allocated(self) -> int:
        """Number of currently allocated nodes."""
        return self._num_nodes - len(self._free_set)

    @property
    def utilization(self) -> float:
        """Fraction of nodes currently allocated."""
        return self.num_allocated / self._num_nodes

    def owner_of(self, node_id: int) -> object | None:
        """The job owning ``node_id``, or ``None`` if the node is free."""
        self._check_node(node_id)
        return self._owner.get(node_id)

    def nodes_of(self, owner: object) -> list[int]:
        """All node ids currently owned by ``owner`` (possibly empty)."""
        return [n for n, o in self._owner.items() if o is owner]

    def can_allocate(self, count: int) -> bool:
        """True when ``count`` nodes are currently free."""
        return 0 < count <= self.num_free

    # ------------------------------------------------------------ mutation
    def allocate(self, count: int, owner: object) -> list[int]:
        """Allocate the ``count`` lowest-numbered free nodes to ``owner``.

        Raises
        ------
        SchedulingError
            If fewer than ``count`` nodes are free.
        """
        if count <= 0:
            raise SchedulingError("cannot allocate a non-positive number of nodes")
        if count > self.num_free:
            raise SchedulingError(
                f"cannot allocate {count} nodes: only {self.num_free} free"
            )
        # _free is kept sorted; take the first `count` that are still free.
        allocated: list[int] = []
        kept: list[int] = []
        for node in self._free:
            if node not in self._free_set:
                continue  # stale entry from a release/allocate cycle
            if len(allocated) < count:
                allocated.append(node)
            else:
                kept.append(node)
        self._free = kept
        for node in allocated:
            self._free_set.discard(node)
            self._owner[node] = owner
        return allocated

    def release(self, node_ids: list[int]) -> None:
        """Return ``node_ids`` to the free pool."""
        for node in node_ids:
            self._check_node(node)
            if node in self._free_set:
                raise SchedulingError(f"node {node} is already free")
            del self._owner[node]
            self._free_set.add(node)
        self._free = sorted(self._free_set)

    def release_owner(self, owner: object) -> list[int]:
        """Release every node owned by ``owner``; returns the released ids."""
        nodes = self.nodes_of(owner)
        if nodes:
            self.release(nodes)
        return nodes

    # ------------------------------------------------------------ helpers
    def _check_node(self, node_id: int) -> None:
        if not (0 <= node_id < self._num_nodes):
            raise SchedulingError(
                f"node id {node_id} outside the pool [0, {self._num_nodes})"
            )

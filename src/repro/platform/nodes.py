"""Space-shared node pool.

The job scheduler allocates whole nodes to jobs; nodes are never shared
between jobs (only the file system is).  The pool keeps the node → job
mapping so the failure injector can determine which job (if any) a failing
node was running.

Allocation hands out the lowest-numbered free nodes.  The model does not
capture network topology, so the identity of the nodes only matters for
failure targeting; first-fit over node ids is sufficient and deterministic.

Two implementations share this contract:

* :class:`NodePool` — the pure-Python reference (sorted free list + set +
  per-node owner dict), selected by the ``"python"`` simulator kernel;
* :class:`ArrayNodePool` — a numpy boolean-mask pool whose allocate/release
  are vectorised, selected by the ``"numpy"`` kernel.  On platform-sized
  pools (thousands of nodes) the reference's O(nodes) list scan per
  allocation dominates a simulation's wall-clock; the mask pool removes it
  while handing out the exact same node ids.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError

__all__ = ["ArrayNodePool", "NodePool"]


class NodePool:
    """Tracks which nodes are free and which job owns each allocated node."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise SchedulingError("num_nodes must be positive")
        self._num_nodes = num_nodes
        # Sorted container of free node ids.  A sorted list plus set gives
        # O(q) allocation of the q lowest free ids and O(1) membership tests.
        self._free: list[int] = list(range(num_nodes))
        self._free_set: set[int] = set(self._free)
        self._owner: dict[int, object] = {}

    # ------------------------------------------------------------ queries
    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the pool."""
        return self._num_nodes

    @property
    def num_free(self) -> int:
        """Number of currently unallocated nodes."""
        return len(self._free_set)

    @property
    def num_allocated(self) -> int:
        """Number of currently allocated nodes."""
        return self._num_nodes - len(self._free_set)

    @property
    def utilization(self) -> float:
        """Fraction of nodes currently allocated."""
        return self.num_allocated / self._num_nodes

    def owner_of(self, node_id: int) -> object | None:
        """The job owning ``node_id``, or ``None`` if the node is free."""
        self._check_node(node_id)
        return self._owner.get(node_id)

    def nodes_of(self, owner: object) -> list[int]:
        """All node ids currently owned by ``owner`` (possibly empty)."""
        return [n for n, o in self._owner.items() if o is owner]

    def can_allocate(self, count: int) -> bool:
        """True when ``count`` nodes are currently free."""
        return 0 < count <= self.num_free

    # ------------------------------------------------------------ mutation
    def allocate(self, count: int, owner: object) -> list[int]:
        """Allocate the ``count`` lowest-numbered free nodes to ``owner``.

        Raises
        ------
        SchedulingError
            If fewer than ``count`` nodes are free.
        """
        if count <= 0:
            raise SchedulingError("cannot allocate a non-positive number of nodes")
        if count > self.num_free:
            raise SchedulingError(
                f"cannot allocate {count} nodes: only {self.num_free} free"
            )
        # _free is kept sorted; take the first `count` that are still free.
        allocated: list[int] = []
        kept: list[int] = []
        for node in self._free:
            if node not in self._free_set:
                continue  # stale entry from a release/allocate cycle
            if len(allocated) < count:
                allocated.append(node)
            else:
                kept.append(node)
        self._free = kept
        for node in allocated:
            self._free_set.discard(node)
            self._owner[node] = owner
        return allocated

    def release(self, node_ids: list[int]) -> None:
        """Return ``node_ids`` to the free pool."""
        for node in node_ids:
            self._check_node(node)
            if node in self._free_set:
                raise SchedulingError(f"node {node} is already free")
            del self._owner[node]
            self._free_set.add(node)
        self._free = sorted(self._free_set)

    def release_owner(self, owner: object) -> list[int]:
        """Release every node owned by ``owner``; returns the released ids."""
        nodes = self.nodes_of(owner)
        if nodes:
            self.release(nodes)
        return nodes

    # ------------------------------------------------------------ helpers
    def _check_node(self, node_id: int) -> None:
        if not (0 <= node_id < self._num_nodes):
            raise SchedulingError(
                f"node id {node_id} outside the pool [0, {self._num_nodes})"
            )


class ArrayNodePool(NodePool):
    """Vectorised :class:`NodePool`: free nodes as a numpy boolean mask.

    Behaviour (returned node ids, raised errors, release semantics) is
    identical to the reference pool — the kernel equivalence suite holds the
    two to the same random operation sequences — but allocation of the
    ``q`` lowest free ids is a single ``flatnonzero`` slice and releasing a
    whole job is two fancy-indexed stores, so cost no longer scales with
    per-node Python objects.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise SchedulingError("num_nodes must be positive")
        self._num_nodes = num_nodes
        self._free_mask = np.ones(num_nodes, dtype=bool)
        self._owners = np.empty(num_nodes, dtype=object)  # None when free
        # id(owner) -> (owner, sorted list of owned node ids).  The tuple
        # keeps a strong reference to the owner so its id() stays valid for
        # the lifetime of the allocation.
        self._owned: dict[int, tuple[object, list[int]]] = {}
        self._num_free = num_nodes

    # ------------------------------------------------------------ queries
    @property
    def num_free(self) -> int:
        return self._num_free

    @property
    def num_allocated(self) -> int:
        return self._num_nodes - self._num_free

    def owner_of(self, node_id: int) -> object | None:
        self._check_node(node_id)
        return self._owners[node_id]

    def nodes_of(self, owner: object) -> list[int]:
        entry = self._owned.get(id(owner))
        return list(entry[1]) if entry is not None else []

    # ------------------------------------------------------------ mutation
    def allocate(self, count: int, owner: object) -> list[int]:
        if count <= 0:
            raise SchedulingError("cannot allocate a non-positive number of nodes")
        if count > self._num_free:
            raise SchedulingError(
                f"cannot allocate {count} nodes: only {self._num_free} free"
            )
        ids = np.flatnonzero(self._free_mask)[:count]
        self._free_mask[ids] = False
        # A 0-d object wrapper broadcasts the owner itself into every slot,
        # even when the owner happens to be iterable.
        boxed = np.empty((), dtype=object)
        boxed[()] = owner
        self._owners[ids] = boxed
        allocated = ids.tolist()
        key = id(owner)
        entry = self._owned.get(key)
        if entry is None:
            self._owned[key] = (owner, list(allocated))
        else:
            # Insertion order, matching the reference pool's owner dict.
            self._owned[key] = (owner, entry[1] + allocated)
        self._num_free -= count
        return allocated

    def release(self, node_ids: list[int]) -> None:
        for node in node_ids:
            self._check_node(node)
            if self._free_mask[node]:
                raise SchedulingError(f"node {node} is already free")
            owner = self._owners[node]
            self._owners[node] = None
            self._free_mask[node] = True
            self._num_free += 1
            key = id(owner)
            entry = self._owned.get(key)
            if entry is not None:
                entry[1].remove(node)
                if not entry[1]:
                    del self._owned[key]

    def release_owner(self, owner: object) -> list[int]:
        entry = self._owned.pop(id(owner), None)
        if entry is None:
            return []
        ids = entry[1]
        arr = np.asarray(ids, dtype=np.intp)
        self._free_mask[arr] = True
        self._owners[arr] = None
        self._num_free += len(ids)
        return ids

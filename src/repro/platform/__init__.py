"""Platform substrate: nodes, failures and the shared parallel file system.

* :mod:`repro.platform.spec` — static description of a platform
  (:class:`~repro.platform.spec.PlatformSpec`): node count, memory,
  aggregate file-system bandwidth, node MTBF.
* :mod:`repro.platform.nodes` — the space-shared node pool used by the job
  scheduler, tracking which nodes run which job.
* :mod:`repro.platform.failures` — failure-trace generation with pluggable
  inter-arrival distributions (exponential by default, Weibull optional) and
  the failure injector that maps failures to running jobs.
* :mod:`repro.platform.io_subsystem` — the time-shared parallel file system
  with the paper's linear interference model (concurrent transfers share
  the aggregate bandwidth proportionally to their node counts).
"""

from repro.platform.spec import PlatformSpec
from repro.platform.nodes import NodePool
from repro.platform.failures import (
    FAILURE_MODEL_KINDS,
    FailureEvent,
    FailureModel,
    FailureTrace,
    generate_failure_trace,
)
from repro.platform.interference import (
    CappedConcurrencyInterference,
    DegradingInterference,
    InterferenceModel,
    LinearInterference,
)
from repro.platform.io_subsystem import IOSubsystem, Transfer

__all__ = [
    "PlatformSpec",
    "NodePool",
    "FAILURE_MODEL_KINDS",
    "FailureEvent",
    "FailureModel",
    "FailureTrace",
    "generate_failure_trace",
    "InterferenceModel",
    "LinearInterference",
    "DegradingInterference",
    "CappedConcurrencyInterference",
    "IOSubsystem",
    "Transfer",
]

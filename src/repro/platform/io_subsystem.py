"""Time-shared parallel file system with linear interference.

The paper's interference model (§2) is linear and fair: when several
transfers are in flight, the aggregate bandwidth ``beta`` is split between
them proportionally to the number of nodes of the requesting jobs, and the
aggregate throughput stays constant.  The :class:`IOSubsystem` implements
this as a weighted processor-sharing server on top of the discrete-event
engine:

* each active :class:`Transfer` progresses at rate
  ``beta * weight / sum(weights)``;
* whenever the set of active transfers changes, the remaining volume of
  every transfer is advanced to the current time and its completion event is
  rescheduled at the new rate.

The I/O *scheduling strategies* (:mod:`repro.iosched`) decide **when** a
transfer is admitted; strategies that serialize I/O simply admit one
transfer at a time, in which case the transfer receives the full bandwidth.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.platform.interference import InterferenceModel, LinearInterference
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event

__all__ = ["Transfer", "IOSubsystem"]


class Transfer:
    """A single in-flight data transfer through the shared file system.

    Attributes
    ----------
    owner:
        Opaque reference to the entity performing the transfer (a job).
    label:
        Human-readable tag (``"checkpoint"``, ``"input"``, ...).
    volume_bytes:
        Total volume of the transfer.
    remaining_bytes:
        Volume still to transfer at the time of the last progress update.
    weight:
        Fair-share weight (the paper uses the job's node count).
    started_at:
        Simulation time at which the transfer was admitted.
    finished_at:
        Simulation time of completion, or ``None`` while in flight.
    aborted:
        True when the transfer was cancelled (e.g. its job failed).
    """

    __slots__ = (
        "owner",
        "label",
        "volume_bytes",
        "remaining_bytes",
        "weight",
        "started_at",
        "finished_at",
        "aborted",
        "on_complete",
        "_completion_event",
    )

    def __init__(
        self,
        owner: object,
        label: str,
        volume_bytes: float,
        weight: float,
        started_at: float,
        on_complete: Callable[["Transfer"], None] | None,
    ) -> None:
        self.owner = owner
        self.label = label
        self.volume_bytes = float(volume_bytes)
        self.remaining_bytes = float(volume_bytes)
        self.weight = float(weight)
        self.started_at = started_at
        self.finished_at: float | None = None
        self.aborted = False
        self.on_complete = on_complete
        self._completion_event: Event | None = None

    @property
    def done(self) -> bool:
        """True when the transfer completed (not aborted)."""
        return self.finished_at is not None and not self.aborted

    @property
    def active(self) -> bool:
        """True while the transfer is in flight."""
        return self.finished_at is None and not self.aborted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("aborted" if self.aborted else "active")
        return (
            f"Transfer({self.label}, {self.volume_bytes:.3g} B, "
            f"remaining={self.remaining_bytes:.3g} B, {state})"
        )


class IOSubsystem:
    """Weighted processor-sharing model of the parallel file system.

    Parameters
    ----------
    engine:
        The discrete-event engine providing the clock.
    bandwidth_bytes_per_s:
        Nominal aggregate bandwidth ``beta``.
    interference:
        Optional :class:`~repro.platform.interference.InterferenceModel`
        modulating the aggregate throughput as a function of the number of
        concurrent transfers.  Defaults to the paper's linear (conserving)
        model.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        bandwidth_bytes_per_s: float,
        interference: InterferenceModel | None = None,
    ) -> None:
        if bandwidth_bytes_per_s <= 0.0:
            raise SimulationError("bandwidth_bytes_per_s must be positive")
        self._engine = engine
        self._bandwidth = float(bandwidth_bytes_per_s)
        self._interference = interference or LinearInterference()
        self._active: list[Transfer] = []
        self._last_update = engine.now
        # Aggregate statistics.
        self._busy_seconds = 0.0
        self._bytes_completed = 0.0
        self._transfers_completed = 0
        self._max_concurrency = 0

    # ------------------------------------------------------------ queries
    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Nominal aggregate bandwidth ``beta`` (bytes/s)."""
        return self._bandwidth

    @property
    def interference_model(self) -> InterferenceModel:
        """The interference model modulating the aggregate throughput."""
        return self._interference

    @property
    def active_transfers(self) -> tuple[Transfer, ...]:
        """Snapshot of the transfers currently in flight."""
        return tuple(self._active)

    @property
    def busy(self) -> bool:
        """True when at least one transfer is in flight."""
        return bool(self._active)

    @property
    def busy_seconds(self) -> float:
        """Total time with at least one active transfer (updated lazily)."""
        self._advance_progress()
        return self._busy_seconds

    @property
    def bytes_completed(self) -> float:
        """Total volume of completed transfers (bytes)."""
        return self._bytes_completed

    @property
    def transfers_completed(self) -> int:
        """Number of completed transfers."""
        return self._transfers_completed

    @property
    def max_concurrency(self) -> int:
        """Maximum number of simultaneously active transfers observed."""
        return self._max_concurrency

    def duration_alone(self, volume_bytes: float) -> float:
        """Time the transfer would take with the full bandwidth to itself."""
        if volume_bytes < 0.0:
            raise SimulationError("volume_bytes must be non-negative")
        return volume_bytes / self._bandwidth

    # ------------------------------------------------------------ mutation
    def start(
        self,
        volume_bytes: float,
        weight: float,
        on_complete: Callable[[Transfer], None] | None = None,
        *,
        owner: object = None,
        label: str = "io",
    ) -> Transfer:
        """Admit a new transfer and start it immediately.

        A zero-volume transfer completes at the current time (its completion
        callback is scheduled as an immediate event rather than invoked
        synchronously, to keep callback ordering uniform).
        """
        if volume_bytes < 0.0:
            raise SimulationError("volume_bytes must be non-negative")
        if weight <= 0.0:
            raise SimulationError("weight must be positive")
        self._advance_progress()
        transfer = Transfer(
            owner=owner,
            label=label,
            volume_bytes=volume_bytes,
            weight=weight,
            started_at=self._engine.now,
            on_complete=on_complete,
        )
        self._active.append(transfer)
        self._max_concurrency = max(self._max_concurrency, len(self._active))
        self._reschedule_completions()
        return transfer

    def abort(self, transfer: Transfer) -> None:
        """Cancel an in-flight transfer (no completion callback is invoked)."""
        if not transfer.active:
            return
        self._advance_progress()
        transfer.aborted = True
        transfer.finished_at = self._engine.now
        if transfer._completion_event is not None:
            self._engine.cancel(transfer._completion_event)
            transfer._completion_event = None
        self._active.remove(transfer)
        self._reschedule_completions()

    # ------------------------------------------------------------ internals
    def _rate_of(self, transfer: Transfer, total_weight: float) -> float:
        aggregate = self._interference.effective_bandwidth(self._bandwidth, len(self._active))
        return aggregate * transfer.weight / total_weight

    def _advance_progress(self) -> None:
        """Advance every active transfer's remaining volume to the current time."""
        now = self._engine.now
        elapsed = now - self._last_update
        if elapsed < 0.0:  # pragma: no cover - engine guarantees monotonic time
            raise SimulationError("simulation time moved backwards")
        if elapsed > 0.0 and self._active:
            total_weight = sum(t.weight for t in self._active)
            for transfer in self._active:
                progressed = self._rate_of(transfer, total_weight) * elapsed
                transfer.remaining_bytes = max(0.0, transfer.remaining_bytes - progressed)
            self._busy_seconds += elapsed
        self._last_update = now

    def _reschedule_completions(self) -> None:
        """Recompute and reschedule the completion event of every active transfer."""
        total_weight = sum(t.weight for t in self._active)
        for transfer in self._active:
            if transfer._completion_event is not None:
                self._engine.cancel(transfer._completion_event)
                transfer._completion_event = None
            rate = self._rate_of(transfer, total_weight)
            delay = transfer.remaining_bytes / rate if rate > 0.0 else float("inf")
            transfer._completion_event = self._engine.schedule(
                delay, self._complete, transfer, label=f"io-complete:{transfer.label}"
            )

    def _complete(self, transfer: Transfer) -> None:
        """Completion event handler for ``transfer``."""
        if not transfer.active:  # aborted in the meantime
            return
        self._advance_progress()
        # Guard against floating-point drift: by construction the transfer
        # is (numerically) finished when its completion event fires.
        if transfer.remaining_bytes > 1e-6 * max(1.0, transfer.volume_bytes):
            raise SimulationError(
                f"transfer {transfer!r} completion fired early "
                f"({transfer.remaining_bytes} bytes left)"
            )
        transfer.remaining_bytes = 0.0
        transfer.finished_at = self._engine.now
        transfer._completion_event = None
        self._active.remove(transfer)
        self._bytes_completed += transfer.volume_bytes
        self._transfers_completed += 1
        self._reschedule_completions()
        if transfer.on_complete is not None:
            transfer.on_complete(transfer)

"""Static platform description.

A :class:`PlatformSpec` captures the few platform-level parameters the model
needs: the number of (space-shared) compute nodes, the per-node memory, the
aggregate parallel-file-system bandwidth and the MTBF of an individual node.
Concrete platforms (Cielo, the prospective exascale-class system) are
defined in :mod:`repro.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.daly import system_mtbf
from repro.errors import ConfigurationError
from repro.units import GB, YEAR, to_gb, to_hours

__all__ = ["PlatformSpec"]


@dataclass(frozen=True)
class PlatformSpec:
    """Description of a shared HPC platform.

    Attributes
    ----------
    name:
        Human-readable platform name (e.g. ``"Cielo"``).
    num_nodes:
        Number of space-shared compute nodes ``N``.
    cores_per_node:
        Cores per node; only used to convert the APEX per-job core counts
        into node counts.
    memory_per_node_bytes:
        Main memory per node (bytes); checkpoint/input/output sizes are
        expressed as fractions of a job's aggregate memory footprint.
    io_bandwidth_bytes_per_s:
        Aggregate parallel-file-system bandwidth ``beta`` shared by all
        concurrent I/O (bytes/s).
    node_mtbf_s:
        MTBF of an individual node ``mu_ind`` (seconds).
    """

    name: str
    num_nodes: int
    cores_per_node: int
    memory_per_node_bytes: float
    io_bandwidth_bytes_per_s: float
    node_mtbf_s: float

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if self.cores_per_node <= 0:
            raise ConfigurationError("cores_per_node must be positive")
        if self.memory_per_node_bytes <= 0.0:
            raise ConfigurationError("memory_per_node_bytes must be positive")
        if self.io_bandwidth_bytes_per_s <= 0.0:
            raise ConfigurationError("io_bandwidth_bytes_per_s must be positive")
        if self.node_mtbf_s <= 0.0:
            raise ConfigurationError("node_mtbf_s must be positive")

    # ------------------------------------------------------------ derived
    @property
    def total_cores(self) -> int:
        """Total core count of the platform."""
        return self.num_nodes * self.cores_per_node

    @property
    def total_memory_bytes(self) -> float:
        """Aggregate main memory of the platform (bytes)."""
        return self.num_nodes * self.memory_per_node_bytes

    @property
    def system_mtbf_s(self) -> float:
        """Platform-wide MTBF ``mu_ind / N`` (seconds)."""
        return system_mtbf(self.node_mtbf_s, self.num_nodes)

    @property
    def failure_rate_per_s(self) -> float:
        """Platform-wide failure rate (failures per second)."""
        return 1.0 / self.system_mtbf_s

    # ------------------------------------------------------------ variants
    def with_bandwidth(self, bandwidth_bytes_per_s: float) -> "PlatformSpec":
        """Copy of this platform with a different aggregate I/O bandwidth."""
        return replace(self, io_bandwidth_bytes_per_s=bandwidth_bytes_per_s)

    def with_node_mtbf(self, node_mtbf_s: float) -> "PlatformSpec":
        """Copy of this platform with a different individual-node MTBF."""
        return replace(self, node_mtbf_s=node_mtbf_s)

    def with_num_nodes(self, num_nodes: int) -> "PlatformSpec":
        """Copy of this platform with a different node count."""
        return replace(self, num_nodes=num_nodes)

    # ------------------------------------------------------------ reporting
    def describe(self) -> str:
        """Multi-line human-readable summary of the platform."""
        return (
            f"Platform {self.name}\n"
            f"  nodes              : {self.num_nodes} x {self.cores_per_node} cores\n"
            f"  memory             : {to_gb(self.total_memory_bytes):.0f} GB total "
            f"({self.memory_per_node_bytes / GB:.0f} GB/node)\n"
            f"  PFS bandwidth      : {self.io_bandwidth_bytes_per_s / GB:.1f} GB/s\n"
            f"  node MTBF          : {self.node_mtbf_s / YEAR:.1f} years\n"
            f"  system MTBF        : {to_hours(self.system_mtbf_s):.2f} hours"
        )

"""Pluggable I/O interference models.

The paper's baseline model (§2) is *linear*: when several transfers share
the file system, the aggregate throughput stays constant and is split
proportionally to the node counts of the requesting jobs.  Footnote 2 of the
paper notes that "a more adversarial interference model can be substituted";
this module provides that hook.

* :class:`LinearInterference` — the paper's model: aggregate bandwidth is
  conserved regardless of the number of concurrent streams.
* :class:`DegradingInterference` — an adversarial model where each
  additional concurrent stream costs a fraction of the aggregate throughput
  (lock contention, disk-head thrashing, metadata pressure):
  ``beta_eff(k) = beta / (1 + alpha * (k - 1))``.
* :class:`CappedConcurrencyInterference` — aggregate throughput is conserved
  up to ``max_streams`` concurrent transfers and degrades linearly beyond
  that, modelling a file system with a fixed number of I/O servers.

All models only modulate the *aggregate* throughput; the per-transfer split
remains proportional to the transfer weights, as in the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "InterferenceModel",
    "LinearInterference",
    "DegradingInterference",
    "CappedConcurrencyInterference",
]


class InterferenceModel(ABC):
    """Maps (nominal bandwidth, number of concurrent streams) to an effective
    aggregate bandwidth."""

    #: Short identifier used in reports.
    name: str = "abstract"

    @abstractmethod
    def effective_bandwidth(self, nominal_bandwidth: float, num_streams: int) -> float:
        """Aggregate bandwidth available when ``num_streams`` transfers are active."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class LinearInterference(InterferenceModel):
    """The paper's model: aggregate throughput is conserved (fair sharing)."""

    name = "linear"

    def effective_bandwidth(self, nominal_bandwidth: float, num_streams: int) -> float:
        if num_streams <= 0:
            return nominal_bandwidth
        return nominal_bandwidth


@dataclass(frozen=True, repr=False)
class DegradingInterference(InterferenceModel):
    """Each extra concurrent stream costs a fraction ``alpha`` of throughput.

    ``alpha = 0`` reduces to the linear model; ``alpha = 1`` halves the
    aggregate throughput with two streams, divides it by three with three
    streams, and so on.
    """

    alpha: float = 0.25
    name = "degrading"

    def __post_init__(self) -> None:
        if self.alpha < 0.0:
            raise ConfigurationError("DegradingInterference.alpha must be >= 0")

    def effective_bandwidth(self, nominal_bandwidth: float, num_streams: int) -> float:
        if num_streams <= 1:
            return nominal_bandwidth
        return nominal_bandwidth / (1.0 + self.alpha * (num_streams - 1))

    def __repr__(self) -> str:
        return f"DegradingInterference(alpha={self.alpha})"


@dataclass(frozen=True, repr=False)
class CappedConcurrencyInterference(InterferenceModel):
    """Full throughput up to ``max_streams`` transfers, degrading beyond.

    Beyond the cap, the aggregate throughput shrinks proportionally to the
    overload: ``beta * max_streams / k`` for ``k > max_streams``.
    """

    max_streams: int = 4
    name = "capped"

    def __post_init__(self) -> None:
        if self.max_streams < 1:
            raise ConfigurationError("CappedConcurrencyInterference.max_streams must be >= 1")

    def effective_bandwidth(self, nominal_bandwidth: float, num_streams: int) -> float:
        if num_streams <= self.max_streams:
            return nominal_bandwidth
        return nominal_bandwidth * self.max_streams / num_streams

    def __repr__(self) -> str:
        return f"CappedConcurrencyInterference(max_streams={self.max_streams})"

"""Failure trace generation.

Following §5 of the paper, node failures are generated ahead of the
simulation: platform-wide failure instants follow an exponential
distribution whose rate is the aggregate failure rate ``N / mu_ind`` (one
failure every ``system MTBF`` seconds on average), and each failure strikes
a uniformly-random node.

The inter-arrival distribution is pluggable through :class:`FailureModel`:
the default is the paper's exponential process, and a Weibull alternative
(shape ``k < 1`` models the infant-mortality / bursty behaviour reported in
HPC failure studies) draws gaps whose *mean* still equals the platform's
system MTBF, so scenarios with different models stay comparable.

The trace is part of a simulation's *initial conditions*: the same trace is
replayed against every scheduling strategy being compared, so strategies are
evaluated on identical failure scenarios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.platform.spec import PlatformSpec

__all__ = [
    "FAILURE_MODEL_KINDS",
    "FailureEvent",
    "FailureModel",
    "FailureTrace",
    "generate_failure_trace",
]

#: Supported inter-arrival distributions.
FAILURE_MODEL_KINDS: tuple[str, ...] = ("exponential", "weibull")


@dataclass(frozen=True)
class FailureModel:
    """Distribution of the platform-wide failure inter-arrival times.

    Attributes
    ----------
    kind:
        ``"exponential"`` (the paper's memoryless process, the default) or
        ``"weibull"``.
    shape:
        Weibull shape parameter ``k``; ``k < 1`` yields burstier failures
        (decreasing hazard rate), ``k > 1`` more regular ones.  Must be 1.0
        for the exponential kind (where it has no effect), so that equal
        models compare equal and hash identically in cache digests.

    Whatever the kind, gaps are scaled so their mean equals the platform's
    system MTBF: for Weibull the scale is ``mtbf / gamma(1 + 1/k)``.  Note
    that ``weibull`` with ``shape=1.0`` is mathematically exponential but
    consumes the random stream differently, so it is deliberately kept
    distinct (different digest, different trace).
    """

    kind: str = "exponential"
    shape: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_MODEL_KINDS:
            raise ConfigurationError(
                f"unknown failure model {self.kind!r}; "
                f"expected one of {', '.join(FAILURE_MODEL_KINDS)}"
            )
        if not (math.isfinite(self.shape) and self.shape > 0.0):
            raise ConfigurationError("failure model shape must be positive and finite")
        if self.kind == "exponential" and self.shape != 1.0:
            raise ConfigurationError(
                "the exponential failure model has no shape parameter "
                "(use kind='weibull' for shaped inter-arrival times)"
            )

    def draw_gaps(self, rng: np.random.Generator, mean_s: float, size: int) -> np.ndarray:
        """Draw ``size`` inter-arrival gaps with mean ``mean_s`` (seconds)."""
        if self.kind == "weibull":
            scale = mean_s / math.gamma(1.0 + 1.0 / self.shape)
            return scale * rng.weibull(self.shape, size=size)
        return rng.exponential(scale=mean_s, size=size)

    def describe(self) -> str:
        """Short human-readable label (used in scenario reports)."""
        if self.kind == "weibull":
            return f"weibull(k={self.shape:g})"
        return "exponential"


@dataclass(frozen=True)
class FailureEvent:
    """A single node failure: which node fails and when (seconds)."""

    time: float
    node_id: int


class FailureTrace:
    """An immutable, time-ordered sequence of :class:`FailureEvent`."""

    def __init__(self, events: Sequence[FailureEvent], horizon: float) -> None:
        self._events = tuple(sorted(events, key=lambda e: e.time))
        self._horizon = float(horizon)
        for event in self._events:
            if event.time < 0.0 or event.time > self._horizon:
                raise ConfigurationError(
                    f"failure at t={event.time} outside the trace horizon [0, {horizon}]"
                )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> FailureEvent:
        return self._events[index]

    @property
    def horizon(self) -> float:
        """Length of the interval over which the trace was generated (seconds)."""
        return self._horizon

    @property
    def times(self) -> np.ndarray:
        """Failure instants as a numpy array (seconds)."""
        return np.array([e.time for e in self._events], dtype=float)

    @property
    def node_ids(self) -> np.ndarray:
        """Failed node ids as a numpy array."""
        return np.array([e.node_id for e in self._events], dtype=int)

    def empirical_mtbf(self) -> float:
        """Observed platform MTBF of the trace (``horizon / len``).

        Returns ``inf`` for an empty trace.
        """
        if len(self._events) == 0:
            return float("inf")
        return self._horizon / len(self._events)

    def between(self, start: float, end: float) -> "FailureTrace":
        """Sub-trace of failures with ``start <= time < end``."""
        selected = [e for e in self._events if start <= e.time < end]
        shifted = [FailureEvent(time=e.time, node_id=e.node_id) for e in selected]
        return FailureTrace(shifted, horizon=self._horizon)


def generate_failure_trace(
    platform: PlatformSpec,
    horizon_s: float,
    rng: np.random.Generator,
    model: FailureModel | None = None,
) -> FailureTrace:
    """Draw a failure trace for ``platform`` over ``[0, horizon_s]``.

    Inter-arrival times follow ``model`` (exponential by default) with mean
    ``platform.system_mtbf_s``; each failure is assigned a uniformly random
    node id.

    Parameters
    ----------
    platform:
        The platform whose size and node MTBF define the failure process.
    horizon_s:
        Length of the interval to cover (seconds).
    rng:
        Source of randomness (use a dedicated stream so the trace does not
        depend on how many other random draws the simulation makes).
    model:
        Inter-arrival distribution; ``None`` selects the exponential model
        and is bit-identical to the historical behaviour.
    """
    if horizon_s < 0.0:
        raise ConfigurationError("horizon_s must be non-negative")
    if model is None:
        model = FailureModel()
    mean = platform.system_mtbf_s
    # Draw in blocks: the expected number of failures is horizon/mean, draw a
    # comfortable margin then trim, topping up in the unlikely case the block
    # does not reach the horizon.
    expected = horizon_s / mean
    times: list[float] = []
    current = 0.0
    block = max(16, int(expected * 1.5) + 16)
    while current <= horizon_s:
        gaps = model.draw_gaps(rng, mean, block)
        for gap in gaps:
            current += float(gap)
            if current > horizon_s:
                break
            times.append(current)
        else:
            continue
        break
    node_ids = rng.integers(low=0, high=platform.num_nodes, size=len(times))
    events = [FailureEvent(time=t, node_id=int(n)) for t, n in zip(times, node_ids)]
    return FailureTrace(events, horizon=horizon_s)

"""Failure trace generation.

Following §5 of the paper, node failures are generated ahead of the
simulation: platform-wide failure instants follow an exponential
distribution whose rate is the aggregate failure rate ``N / mu_ind`` (one
failure every ``system MTBF`` seconds on average), and each failure strikes
a uniformly-random node.

The inter-arrival distribution is pluggable through :class:`FailureModel`:
the default is the paper's exponential process, and a Weibull alternative
(shape ``k < 1`` models the infant-mortality / bursty behaviour reported in
HPC failure studies) draws gaps whose *mean* still equals the platform's
system MTBF, so scenarios with different models stay comparable.

The trace is part of a simulation's *initial conditions*: the same trace is
replayed against every scheduling strategy being compared, so strategies are
evaluated on identical failure scenarios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.platform.spec import PlatformSpec
from repro.sim.kernel import SimulatorKernel, get_kernel

__all__ = [
    "FAILURE_MODEL_KINDS",
    "FailureEvent",
    "FailureModel",
    "FailureTrace",
    "generate_failure_trace",
]

#: Supported inter-arrival distributions.
FAILURE_MODEL_KINDS: tuple[str, ...] = ("exponential", "weibull")


@dataclass(frozen=True)
class FailureModel:
    """Distribution of the platform-wide failure inter-arrival times.

    Attributes
    ----------
    kind:
        ``"exponential"`` (the paper's memoryless process, the default) or
        ``"weibull"``.
    shape:
        Weibull shape parameter ``k``; ``k < 1`` yields burstier failures
        (decreasing hazard rate), ``k > 1`` more regular ones.  Must be 1.0
        for the exponential kind (where it has no effect), so that equal
        models compare equal and hash identically in cache digests.

    Whatever the kind, gaps are scaled so their mean equals the platform's
    system MTBF: for Weibull the scale is ``mtbf / gamma(1 + 1/k)``.  Note
    that ``weibull`` with ``shape=1.0`` is mathematically exponential but
    consumes the random stream differently, so it is deliberately kept
    distinct (different digest, different trace).
    """

    kind: str = "exponential"
    shape: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_MODEL_KINDS:
            raise ConfigurationError(
                f"unknown failure model {self.kind!r}; "
                f"expected one of {', '.join(FAILURE_MODEL_KINDS)}"
            )
        if not (math.isfinite(self.shape) and self.shape > 0.0):
            raise ConfigurationError("failure model shape must be positive and finite")
        if self.kind == "exponential" and self.shape != 1.0:
            raise ConfigurationError(
                "the exponential failure model has no shape parameter "
                "(use kind='weibull' for shaped inter-arrival times)"
            )

    def draw_gaps(self, rng: np.random.Generator, mean_s: float, size: int) -> np.ndarray:
        """Draw ``size`` inter-arrival gaps with mean ``mean_s`` (seconds)."""
        if self.kind == "weibull":
            scale = mean_s / math.gamma(1.0 + 1.0 / self.shape)
            return scale * rng.weibull(self.shape, size=size)
        return rng.exponential(scale=mean_s, size=size)

    def describe(self) -> str:
        """Short human-readable label (used in scenario reports)."""
        if self.kind == "weibull":
            return f"weibull(k={self.shape:g})"
        return "exponential"


@dataclass(frozen=True)
class FailureEvent:
    """A single node failure: which node fails and when (seconds)."""

    time: float
    node_id: int


class FailureTrace:
    """An immutable, time-ordered sequence of :class:`FailureEvent`."""

    def __init__(self, events: Sequence[FailureEvent], horizon: float) -> None:
        self._events = tuple(sorted(events, key=lambda e: e.time))
        self._horizon = float(horizon)
        for event in self._events:
            if event.time < 0.0 or event.time > self._horizon:
                raise ConfigurationError(
                    f"failure at t={event.time} outside the trace horizon [0, {horizon}]"
                )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> FailureEvent:
        return self._events[index]

    @property
    def horizon(self) -> float:
        """Length of the interval over which the trace was generated (seconds)."""
        return self._horizon

    @property
    def times(self) -> np.ndarray:
        """Failure instants as a numpy array (seconds)."""
        return np.array([e.time for e in self._events], dtype=float)

    @property
    def node_ids(self) -> np.ndarray:
        """Failed node ids as a numpy array."""
        return np.array([e.node_id for e in self._events], dtype=int)

    def empirical_mtbf(self) -> float:
        """Observed platform MTBF of the trace (``horizon / len``).

        Returns ``inf`` for an empty trace.
        """
        if len(self._events) == 0:
            return float("inf")
        return self._horizon / len(self._events)

    def between(self, start: float, end: float) -> "FailureTrace":
        """Sub-trace of failures with ``start <= time < end``, re-based to the window.

        Event times are shifted by ``-start`` and the sub-trace horizon is
        ``end - start``, so statistics over the window are consistent: a 30 s
        window over a 100 s trace reports the MTBF observed *in those 30
        seconds*, not the parent horizon divided by the window's count.
        """
        if end < start:
            raise ConfigurationError(
                f"between() window is empty or reversed (start={start}, end={end})"
            )
        shifted = [
            FailureEvent(time=e.time - start, node_id=e.node_id)
            for e in self._events
            if start <= e.time < end
        ]
        return FailureTrace(shifted, horizon=end - start)


def generate_failure_trace(
    platform: PlatformSpec,
    horizon_s: float,
    rng: np.random.Generator,
    model: FailureModel | None = None,
    kernel: "SimulatorKernel | str | None" = None,
) -> FailureTrace:
    """Draw a failure trace for ``platform`` over ``[0, horizon_s]``.

    Inter-arrival times follow ``model`` (exponential by default) with mean
    ``platform.system_mtbf_s``; each failure is assigned a uniformly random
    node id.  Gaps are drawn in blocks sized for the expected count
    (``horizon / mean`` plus a margin) and the node assignments are
    pre-materialised in one batched draw, so generation costs O(failures)
    array work rather than one generator call per event.

    Parameters
    ----------
    platform:
        The platform whose size and node MTBF define the failure process.
    horizon_s:
        Length of the interval to cover (seconds).
    rng:
        Source of randomness (use a dedicated stream so the trace does not
        depend on how many other random draws the simulation makes).
    model:
        Inter-arrival distribution; ``None`` selects the exponential model
        and is bit-identical to the historical behaviour.
    kernel:
        Simulator kernel (name or instance) providing the gap-accumulation
        implementation; ``None`` selects the process default.  Every kernel
        consumes ``rng`` identically and returns identical floats (the
        kernel equivalence contract), so the choice never changes the trace.
    """
    if horizon_s < 0.0:
        raise ConfigurationError("horizon_s must be non-negative")
    if model is None:
        model = FailureModel()
    if not isinstance(kernel, SimulatorKernel):
        kernel = get_kernel(kernel)
    mean = platform.system_mtbf_s
    times = kernel.failure_times(model, rng, mean, horizon_s)
    node_ids = rng.integers(low=0, high=platform.num_nodes, size=len(times))
    events = [FailureEvent(time=t, node_id=int(n)) for t, n in zip(times, node_ids)]
    return FailureTrace(events, horizon=horizon_s)

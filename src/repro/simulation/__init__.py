"""Top-level simulation orchestration.

* :mod:`repro.simulation.config` — :class:`SimulationConfig`, the complete
  set of initial-condition parameters of one run.
* :mod:`repro.simulation.accounting` — per-category node-second accounting
  restricted to the measurement window.
* :mod:`repro.simulation.results` — :class:`WasteBreakdown` and
  :class:`SimulationResult`.
* :mod:`repro.simulation.simulator` — :class:`Simulation`, which wires the
  engine, platform, I/O scheduler, job scheduler and job runtimes together,
  and :func:`run_simulation`, the one-call convenience entry point.
* :mod:`repro.simulation.baseline` — the failure-free, checkpoint-free
  baseline used to normalise waste (§6.1).
"""

from repro.simulation.accounting import Accounting, Category
from repro.simulation.baseline import baseline_node_seconds
from repro.simulation.config import SimulationConfig
from repro.simulation.results import SimulationResult, WasteBreakdown
from repro.simulation.simulator import Simulation, run_simulation
from repro.simulation.trace import TraceEvent, TraceEventType, TraceRecorder

__all__ = [
    "Accounting",
    "Category",
    "SimulationConfig",
    "SimulationResult",
    "WasteBreakdown",
    "Simulation",
    "run_simulation",
    "baseline_node_seconds",
    "TraceEvent",
    "TraceEventType",
    "TraceRecorder",
]

"""The platform simulator: wiring of all substrates plus the job runtime.

A :class:`Simulation` reproduces the discrete-event simulator described in
§5 of the paper:

1. a job list is drawn from the application classes so the class mix matches
   the APEX shares, and a node-failure trace is drawn from the platform's
   MTBF — together these are the run's *initial conditions*;
2. jobs are placed online by a greedy first-fit scheduler; failed jobs are
   resubmitted at the head of the queue with the work remaining from their
   last completed checkpoint;
3. every I/O operation (initial input, regular I/O, checkpoints, recovery,
   final output) goes through the selected I/O scheduling strategy, which
   decides when it runs and whether it interferes with other transfers;
4. node-seconds are accounted per category over a measurement window that
   excludes the first and last part of the simulated segment, and the run
   is summarised by a :class:`~repro.simulation.results.SimulationResult`.

The job life cycle is implemented with small event handlers on the
simulation object; per-job bookkeeping lives in :class:`_JobContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.app_class import ApplicationClass
from repro.apps.job import Job
from repro.apps.phases import IOKind, JobState
from repro.errors import SimulationError
from repro.iosched.base import IORequest, IOScheduler
from repro.iosched.registry import Strategy, make_strategy
from repro.jobsched.first_fit import FirstFitScheduler
from repro.platform.failures import FailureTrace, generate_failure_trace
from repro.platform.io_subsystem import IOSubsystem
from repro.platform.nodes import NodePool
from repro.platform.spec import PlatformSpec
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event
from repro.sim.kernel import get_kernel
from repro.sim.rng import RandomStreams
from repro.simulation.accounting import Accounting, Category
from repro.simulation.config import SimulationConfig
from repro.simulation.results import SimulationResult, WasteBreakdown
from repro.simulation.trace import TraceEventType, TraceRecorder
from repro.units import DAY
from repro.workloads.generator import generate_jobs

__all__ = ["Simulation", "run_simulation"]

#: Minimum residual work (seconds) given to a restart whose failed parent had
#: already protected all of its work (e.g. it failed during its final output).
_MIN_RESTART_WORK_S = 1.0

#: Minimum delay (seconds) between a checkpoint completion and the next
#: checkpoint request, used when the requested period P is not larger than
#: the commit time C.
_MIN_CHECKPOINT_GAP_S = 1.0


@dataclass
class _JobContext:
    """Per-running-job runtime bookkeeping owned by the simulation.

    The phase schedule (regular-I/O milestones, checkpoint period and the
    post-checkpoint re-request delay) is computed once when the job enters
    its compute phase and read from here afterwards, instead of re-deriving
    the same floats on every checkpoint/progress event.
    """

    job: Job
    allocated_at: float
    compute_event: Event | None = None
    checkpoint_due_event: Event | None = None
    regular_event: Event | None = None
    pending_checkpoint: IORequest | None = None
    blocking_request: IORequest | None = None
    checkpoint_overdue: bool = False
    milestones: list[float] = field(default_factory=list)
    milestone_index: int = 0
    regular_chunk_bytes: float = 0.0
    #: Desired checkpoint period P (seconds), fixed per job.
    checkpoint_period_s: float = 0.0
    #: Delay between a checkpoint completion and the next request,
    #: ``max(P - C, minimum gap)`` (§2's first-order scheduling rule).
    checkpoint_redo_delay_s: float = _MIN_CHECKPOINT_GAP_S


class Simulation:
    """One simulation run (one strategy, one set of initial conditions)."""

    def __init__(
        self,
        config: SimulationConfig,
        *,
        jobs: list[Job] | None = None,
        failure_trace: FailureTrace | None = None,
    ) -> None:
        self.config = config
        self.platform: PlatformSpec = config.platform
        self.strategy: Strategy = make_strategy(
            config.strategy, fixed_period_s=config.fixed_period_s
        )
        #: Hot-path implementation bundle; kernels are float-for-float
        #: equivalent by contract, so this only changes wall-clock.
        self.kernel = get_kernel(config.kernel)
        self.streams = RandomStreams(config.seed)
        self.engine = SimulationEngine(max_events=config.max_events)
        self.io = IOSubsystem(
            self.engine,
            self.platform.io_bandwidth_bytes_per_s,
            interference=config.interference,
        )
        self.io_sched: IOScheduler = self.strategy.make_scheduler(
            self.engine, self.io, self.platform.node_mtbf_s
        )
        self.pool: NodePool = self.kernel.make_node_pool(self.platform.num_nodes)
        self.job_sched = FirstFitScheduler(self.pool)
        window_start, window_end = config.measurement_window
        # Trace runs also keep per-job ledgers (the waste drill-down input);
        # the global totals are accumulated by the same statements either
        # way, so tracking never changes the reported results.
        self.accounting = Accounting(
            window_start, window_end, track_jobs=config.collect_trace
        )

        if jobs is None:
            jobs = generate_jobs(
                config.workload_spec(), self.platform, self.streams.get("workload")
            )
        self.jobs: list[Job] = jobs
        if failure_trace is None:
            failure_trace = generate_failure_trace(
                self.platform,
                config.horizon_s,
                self.streams.get("failures"),
                model=config.failure_model,
                kernel=self.kernel,
            )
        self.failure_trace = failure_trace

        # Per-job runtime state and pending checkpoint captures.
        self._contexts: dict[int, _JobContext] = {}
        self._captures: dict[IORequest, float] = {}
        self._restart_priority = -1_000_000.0

        #: Optional per-job execution trace (None unless requested).
        self.trace: TraceRecorder | None = TraceRecorder() if config.collect_trace else None

        # Counters.
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.restarts_submitted = 0
        self.failures_effective = 0
        self.checkpoints_completed = 0
        self.checkpoints_requested = 0
        self._ran = False

    # ================================================================ run
    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        if self._ran:
            raise SimulationError("Simulation.run() can only be called once per instance")
        self._ran = True

        self.engine.schedule_at(0.0, self._bootstrap, label="bootstrap")
        for failure in self.failure_trace:
            if failure.time <= self.config.horizon_s:
                self.engine.schedule_at(
                    failure.time, self._on_node_failure, failure.node_id, label="failure"
                )
        self.engine.run(until=self.config.horizon_s)
        self._flush_open_accounting()
        return self._build_result()

    # ================================================================ setup
    def _bootstrap(self) -> None:
        for job in self.jobs:
            self.job_sched.submit(job)
        self._dispatch()

    def _dispatch(self) -> None:
        self.job_sched.dispatch(self._start_job)

    # ================================================================ job life cycle
    def _start_job(self, job: Job, nodes: list[int]) -> None:
        now = self.engine.now
        context = _JobContext(job=job, allocated_at=now)
        self._contexts[job.job_id] = context
        job.start_time = now
        self._record(job, TraceEventType.JOB_START, nodes=len(nodes), restart=job.is_restart)

        if job.input_bytes and job.input_bytes > 0.0:
            # A restarted job re-reads its last checkpoint (or re-reads its
            # input when it had no checkpoint yet); either way this read only
            # exists because of the failure, so it is recovery I/O (§5).
            kind = IOKind.RECOVERY if job.is_restart else IOKind.INPUT
            job.state = JobState.RECOVERY_IO if kind is IOKind.RECOVERY else JobState.INPUT_IO
            request = IORequest(
                job=job,
                kind=kind,
                volume_bytes=job.input_bytes,
                submitted_at=now,
                on_complete=self._input_done,
            )
            context.blocking_request = request
            self.io_sched.submit(request)
        else:
            self._begin_compute(job)

    def _input_done(self, request: IORequest) -> None:
        job = request.job
        context = self._contexts.get(job.job_id)
        if context is None or job.finished:
            return
        self._account_request(request)
        context.blocking_request = None
        self._record(
            job,
            TraceEventType.INPUT_DONE,
            io_kind=request.kind.value,
            waited=request.waited,
            duration=(request.completed_at or 0.0) - (request.granted_at or 0.0),
            volume=request.volume_bytes,
        )
        self._begin_compute(job)

    def _begin_compute(self, job: Job) -> None:
        """First entry into the compute phase (after input/recovery)."""
        now = self.engine.now
        context = self._context(job)
        job.state = JobState.COMPUTING
        job.last_capture_time = now

        # Precompute the job's whole phase schedule once: the regular-I/O
        # milestones and both checkpoint delays are pure functions of the
        # job and platform, so no later event needs to re-derive them.
        chunks = self.config.routine_io_chunks
        if job.routine_io_bytes > 0.0 and chunks > 0:
            context.regular_chunk_bytes = job.routine_io_bytes / chunks
            context.milestones = self.kernel.milestone_offsets(job.total_work_s, chunks)
        context.milestone_index = 0
        period = self.strategy.policy.period(job.app_class, self.platform)
        commit = job.app_class.checkpoint_time(self.platform.io_bandwidth_bytes_per_s)
        context.checkpoint_period_s = period
        # Next request P - C after each completion (first-order scheduling
        # rule of §2), never less than a small positive gap.
        context.checkpoint_redo_delay_s = max(period - commit, _MIN_CHECKPOINT_GAP_S)

        # First checkpoint is requested a full period after compute starts.
        context.checkpoint_due_event = self.engine.schedule(
            period, self._checkpoint_due, job, label="checkpoint-due"
        )
        self._start_progress(job)

    # ---------------------------------------------------------------- progress
    def _start_progress(self, job: Job) -> None:
        now = self.engine.now
        context = self._context(job)
        job.begin_progress(now)
        remaining = job.total_work_s - job.work_done_s
        context.compute_event = self.engine.schedule(
            max(0.0, remaining), self._work_finished, job, label="work-finished"
        )
        # Schedule the next regular-I/O milestone, if one lies ahead.
        if context.milestone_index < len(context.milestones):
            milestone = context.milestones[context.milestone_index]
            if milestone > job.work_done_s and milestone < job.total_work_s:
                context.regular_event = self.engine.schedule(
                    milestone - job.work_done_s, self._regular_io_due, job, label="regular-io"
                )

    def _stop_progress(self, job: Job) -> None:
        now = self.engine.now
        context = self._context(job)
        delta = job.pause_progress(now)
        if delta > 0.0:
            self.accounting.record_interval(
                Category.COMPUTE, job.nodes, now - delta, now, job=job.job_id
            )
        self.engine.cancel(context.compute_event)
        self.engine.cancel(context.regular_event)
        context.compute_event = None
        context.regular_event = None

    def _maybe_resume(self, job: Job) -> None:
        """Resume computing when nothing blocks the job anymore."""
        context = self._contexts.get(job.job_id)
        if context is None or job.finished:
            return
        if context.blocking_request is not None:
            return
        if context.pending_checkpoint is not None and context.pending_checkpoint.in_flight:
            return
        if job.work_done_s >= job.total_work_s:
            return
        job.state = JobState.COMPUTING
        if not job.progressing:
            self._start_progress(job)
        if context.checkpoint_overdue:
            context.checkpoint_overdue = False
            self._checkpoint_due(job)

    # ---------------------------------------------------------------- checkpoints
    def _checkpoint_due(self, job: Job) -> None:
        context = self._contexts.get(job.job_id)
        if context is None or job.finished:
            return
        context.checkpoint_due_event = None
        now = self.engine.now
        if job.remaining_work_at(now) <= 0.0:
            return
        if context.blocking_request is not None:
            # The job is blocked on application I/O; take the checkpoint as
            # soon as it resumes computing.
            context.checkpoint_overdue = True
            return
        if context.pending_checkpoint is not None:
            # A previous checkpoint request is still outstanding.
            return

        self.checkpoints_requested += 1
        job.checkpoints_requested += 1
        request = IORequest(
            job=job,
            kind=IOKind.CHECKPOINT,
            volume_bytes=job.checkpoint_bytes,
            submitted_at=now,
            on_granted=self._checkpoint_granted,
            on_complete=self._checkpoint_done,
        )
        context.pending_checkpoint = request
        self._record(job, TraceEventType.CHECKPOINT_REQUEST)
        if self.strategy.nonblocking_checkpoints:
            # The job keeps computing while it waits for the I/O token.
            job.state = JobState.CHECKPOINT_WAIT
        else:
            self._stop_progress(job)
            job.state = JobState.CHECKPOINT_WAIT
        self.io_sched.submit(request)

    def _checkpoint_granted(self, request: IORequest) -> None:
        job = request.job
        context = self._contexts.get(job.job_id)
        if context is None or job.finished or request.cancelled:
            return
        now = self.engine.now
        # The checkpoint content captures the job's progress at this instant.
        self._captures[request] = job.work_done_at(now)
        job.last_capture_time = now
        self._record(job, TraceEventType.CHECKPOINT_START, waited=request.waited)
        # The job does not progress while its checkpoint data is written.
        self._stop_progress(job)
        job.state = JobState.CHECKPOINTING

    def _checkpoint_done(self, request: IORequest) -> None:
        job = request.job
        context = self._contexts.get(job.job_id)
        captured = self._captures.pop(request, None)
        if context is None or job.finished or request.cancelled:
            return
        context.pending_checkpoint = None
        self._account_request(request)
        if captured is not None:
            job.protect_work(captured)
        self.checkpoints_completed += 1
        self._record(
            job,
            TraceEventType.CHECKPOINT_DONE,
            protected_work=job.work_protected_s,
            commit_time=(request.completed_at or 0.0) - (request.granted_at or 0.0),
            waited=request.waited,
        )

        context.checkpoint_due_event = self.engine.schedule(
            context.checkpoint_redo_delay_s, self._checkpoint_due, job, label="checkpoint-due"
        )
        self._maybe_resume(job)

    # ---------------------------------------------------------------- regular I/O
    def _regular_io_due(self, job: Job) -> None:
        context = self._contexts.get(job.job_id)
        if context is None or job.finished:
            return
        context.regular_event = None
        self._stop_progress(job)
        job.state = JobState.REGULAR_IO
        context.milestone_index += 1
        request = IORequest(
            job=job,
            kind=IOKind.REGULAR,
            volume_bytes=context.regular_chunk_bytes,
            submitted_at=self.engine.now,
            on_complete=self._regular_io_done,
        )
        context.blocking_request = request
        self.io_sched.submit(request)

    def _regular_io_done(self, request: IORequest) -> None:
        job = request.job
        context = self._contexts.get(job.job_id)
        if context is None or job.finished:
            return
        self._account_request(request)
        context.blocking_request = None
        self._record(
            job,
            TraceEventType.REGULAR_IO_DONE,
            waited=request.waited,
            duration=(request.completed_at or 0.0) - (request.granted_at or 0.0),
            volume=request.volume_bytes,
        )
        self._maybe_resume(job)

    # ---------------------------------------------------------------- completion
    def _work_finished(self, job: Job) -> None:
        context = self._contexts.get(job.job_id)
        if context is None or job.finished:
            return
        context.compute_event = None
        self._stop_progress(job)
        job.work_done_s = job.total_work_s
        self.engine.cancel(context.checkpoint_due_event)
        context.checkpoint_due_event = None
        if context.pending_checkpoint is not None:
            # A checkpoint that has not been granted yet is pointless now.
            self.io_sched.cancel_job(job)
            context.pending_checkpoint = None

        self._record(job, TraceEventType.OUTPUT_START)
        if job.output_bytes > 0.0:
            job.state = JobState.OUTPUT_IO
            request = IORequest(
                job=job,
                kind=IOKind.OUTPUT,
                volume_bytes=job.output_bytes,
                submitted_at=self.engine.now,
                on_complete=self._output_done,
            )
            context.blocking_request = request
            self.io_sched.submit(request)
        else:
            self._complete_job(job)

    def _output_done(self, request: IORequest) -> None:
        job = request.job
        context = self._contexts.get(job.job_id)
        if context is None or job.finished:
            return
        self._account_request(request)
        context.blocking_request = None
        self._record(
            job,
            TraceEventType.OUTPUT_DONE,
            waited=request.waited,
            duration=(request.completed_at or 0.0) - (request.granted_at or 0.0),
            volume=request.volume_bytes,
        )
        self._complete_job(job)

    def _complete_job(self, job: Job) -> None:
        now = self.engine.now
        context = self._context(job)
        job.state = JobState.COMPLETED
        job.end_time = now
        self.accounting.record_allocation(job.nodes, context.allocated_at, now)
        self.pool.release_owner(job)
        del self._contexts[job.job_id]
        self.jobs_completed += 1
        self._record(job, TraceEventType.JOB_COMPLETE)
        self._dispatch()

    # ---------------------------------------------------------------- failures
    def _on_node_failure(self, node_id: int) -> None:
        owner = self.pool.owner_of(node_id)
        if owner is None:
            return
        # The pool is owner-agnostic (object); this simulator only ever
        # registers Job owners, so the assert records that invariant.
        assert isinstance(owner, Job), owner
        job = owner
        context = self._contexts.get(job.job_id)
        if context is None or job.finished:
            return
        self.failures_effective += 1
        now = self.engine.now

        # Stop and account any in-progress compute, then convert the
        # unprotected part of the job's work into lost work.
        self._stop_progress(job)
        lost = max(0.0, job.work_done_s - job.work_protected_s)
        if lost > 0.0:
            self.accounting.move_amount(
                Category.COMPUTE, Category.LOST_WORK, lost * job.nodes, now, job=job.job_id
            )

        self.engine.cancel(context.checkpoint_due_event)
        context.checkpoint_due_event = None
        self.io_sched.cancel_job(job)
        if context.pending_checkpoint is not None:
            self._captures.pop(context.pending_checkpoint, None)
            context.pending_checkpoint = None
        context.blocking_request = None

        job.state = JobState.FAILED
        job.end_time = now
        self.accounting.record_allocation(job.nodes, context.allocated_at, now)
        self.pool.release_owner(job)
        del self._contexts[job.job_id]
        self.jobs_failed += 1
        self._record(job, TraceEventType.JOB_FAILED, node_id=node_id, lost_work=lost)

        # Resubmit at the head of the queue with the remaining work and a
        # recovery read of the last checkpoint (or the original input when no
        # checkpoint had completed yet).
        self._submit_restart(job, now)
        self._dispatch()

    def _submit_restart(self, failed: Job, now: float) -> None:
        remaining = max(failed.total_work_s - failed.work_protected_s, _MIN_RESTART_WORK_S)
        has_checkpoint = failed.work_protected_s > 0.0
        restart = Job(
            app_class=failed.app_class,
            total_work_s=remaining,
            submit_time=now,
            priority=self._next_restart_priority(),
            input_bytes=failed.checkpoint_bytes if has_checkpoint else failed.app_class.input_bytes,
            is_restart=True,
            parent_id=failed.job_id,
            restart_count=failed.restart_count + 1,
        )
        self.restarts_submitted += 1
        self._record(
            restart,
            TraceEventType.RESTART_SUBMITTED,
            parent=failed.job_id,
            remaining_work=remaining,
            recovers_from_checkpoint=has_checkpoint,
        )
        self.job_sched.submit(restart)

    def _next_restart_priority(self) -> float:
        self._restart_priority += 1.0
        return self._restart_priority

    # ---------------------------------------------------------------- accounting
    def _account_request(self, request: IORequest) -> None:
        """Attribute the node-seconds of a completed I/O request."""
        job = request.job
        nodes = float(job.nodes)
        submitted = request.submitted_at
        granted = request.granted_at if request.granted_at is not None else submitted
        completed = request.completed_at if request.completed_at is not None else self.engine.now

        if request.kind is IOKind.CHECKPOINT:
            self.accounting.record_interval(
                Category.CHECKPOINT, nodes, granted, completed, job=job.job_id
            )
            if not self.strategy.nonblocking_checkpoints:
                self.accounting.record_interval(
                    Category.CHECKPOINT_WAIT, nodes, submitted, granted, job=job.job_id
                )
            return
        if request.kind is IOKind.RECOVERY:
            self.accounting.record_interval(
                Category.RECOVERY, nodes, submitted, completed, job=job.job_id
            )
            return

        # Input, output and regular I/O: the un-dilated transfer time is
        # useful; waiting and dilation are waste.
        base = min(self.io.duration_alone(request.volume_bytes), completed - submitted)
        boundary = completed - base
        self.accounting.record_interval(
            Category.BASE_IO, nodes, boundary, completed, job=job.job_id
        )
        self.accounting.record_interval(
            Category.IO_DELAY, nodes, submitted, boundary, job=job.job_id
        )

    def _flush_open_accounting(self) -> None:
        """Close accounting for jobs still running when the horizon is reached."""
        horizon = self.config.horizon_s
        for context in list(self._contexts.values()):
            job = context.job
            if job.progressing:
                delta = job.pause_progress(horizon)
                if delta > 0.0:
                    self.accounting.record_interval(
                        Category.COMPUTE, job.nodes, horizon - delta, horizon, job=job.job_id
                    )
            self.accounting.record_allocation(job.nodes, context.allocated_at, horizon)

    # ---------------------------------------------------------------- helpers
    def _record(self, job: Job, kind: TraceEventType, **detail) -> None:
        if self.trace is not None:
            self.trace.record(self.engine.now, job, kind, **detail)

    def _context(self, job: Job) -> _JobContext:
        context = self._contexts.get(job.job_id)
        if context is None:
            raise SimulationError(f"no runtime context for job {job.name}")
        return context

    def _build_result(self) -> SimulationResult:
        breakdown = WasteBreakdown.from_accounting(self.accounting)
        window = self.accounting.window
        window_capacity = self.platform.num_nodes * self.accounting.window_length
        utilization = (
            self.accounting.allocated_node_seconds / window_capacity
            if window_capacity > 0.0
            else 0.0
        )
        return SimulationResult(
            strategy=self.strategy.name,
            breakdown=breakdown,
            horizon_s=self.config.horizon_s,
            window=window,
            jobs_submitted=len(self.jobs),
            jobs_completed=self.jobs_completed,
            jobs_failed=self.jobs_failed,
            restarts_submitted=self.restarts_submitted,
            failures_total=len(self.failure_trace),
            failures_effective=self.failures_effective,
            checkpoints_completed=self.checkpoints_completed,
            checkpoints_requested=self.checkpoints_requested,
            node_utilization=utilization,
            io_busy_fraction=(
                self.io.busy_seconds / self.config.horizon_s if self.config.horizon_s > 0 else 0.0
            ),
            events_fired=self.engine.events_fired,
        )


def run_simulation(
    *,
    platform: PlatformSpec,
    workload: list[ApplicationClass],
    strategy: str = "least-waste",
    horizon_days: float = 8.0,
    warmup_days: float = 1.0,
    cooldown_days: float = 1.0,
    seed: int | None = None,
    fixed_period_s: float = 3600.0,
    jobs: list[Job] | None = None,
    failure_trace: FailureTrace | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`SimulationConfig` and run it once.

    Parameters mirror :class:`~repro.simulation.config.SimulationConfig`,
    with durations in days for readability.  ``jobs`` and ``failure_trace``
    may be supplied to replay fixed initial conditions (e.g. to compare
    strategies on identical scenarios).
    """
    config = SimulationConfig(
        platform=platform,
        classes=tuple(workload),
        strategy=strategy,
        horizon_s=horizon_days * DAY,
        warmup_s=warmup_days * DAY,
        cooldown_s=cooldown_days * DAY,
        seed=seed,
        fixed_period_s=fixed_period_s,
    )
    return Simulation(config, jobs=jobs, failure_trace=failure_trace).run()

"""Failure-free, checkpoint-free baseline resource usage.

Section 6.1 of the paper normalises the measured waste by the resource usage
of a *baseline* execution of the same job mix with no faults, no checkpoints
and no I/O interference: the node-seconds each job spends computing and
performing its regular (non-checkpoint/restart) I/O.

The baseline of a job is independent of scheduling, so it does not need a
discrete-event simulation: it is simply ``q * (work + base I/O time)`` where
the base I/O time is the un-dilated duration of the job's input, output and
routine I/O at the platform's full bandwidth.  The library's in-simulation
accounting reports exactly the same quantity (the ``COMPUTE`` + ``BASE_IO``
categories), so the waste ratio it computes matches the paper's definition;
this module provides the standalone baseline for cross-checks and tests.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.apps.job import Job
from repro.platform.spec import PlatformSpec

__all__ = ["baseline_job_node_seconds", "baseline_node_seconds"]


def baseline_job_node_seconds(job: Job, platform: PlatformSpec) -> float:
    """Baseline node-seconds of one job: compute plus un-dilated application I/O."""
    bandwidth = platform.io_bandwidth_bytes_per_s
    io_seconds = (
        job.app_class.input_bytes + job.output_bytes + job.routine_io_bytes
    ) / bandwidth
    return job.nodes * (job.total_work_s + io_seconds)


def baseline_node_seconds(jobs: Iterable[Job], platform: PlatformSpec) -> float:
    """Baseline node-seconds of a whole job list."""
    return sum(baseline_job_node_seconds(job, platform) for job in jobs)

"""Result records of one simulation run."""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.accounting import Accounting, Category

__all__ = ["WasteBreakdown", "SimulationResult"]


@dataclass(frozen=True)
class WasteBreakdown:
    """Node-second totals per accounting category over the measurement window.

    All values are node-seconds.  ``compute`` and ``base_io`` are useful;
    the remaining categories are waste.  ``allocated`` is the total
    allocated node-seconds inside the window (useful + waste + any idle time
    of allocated nodes that was not attributed to a category, which is
    negligible by construction).
    """

    compute: float
    base_io: float
    io_delay: float
    checkpoint: float
    checkpoint_wait: float
    recovery: float
    lost_work: float
    allocated: float

    @classmethod
    def from_accounting(cls, accounting: Accounting) -> "WasteBreakdown":
        """Build a breakdown from an :class:`~repro.simulation.accounting.Accounting`."""
        totals = accounting.totals()
        return cls(
            compute=totals[Category.COMPUTE],
            base_io=totals[Category.BASE_IO],
            io_delay=totals[Category.IO_DELAY],
            checkpoint=totals[Category.CHECKPOINT],
            checkpoint_wait=totals[Category.CHECKPOINT_WAIT],
            recovery=totals[Category.RECOVERY],
            lost_work=totals[Category.LOST_WORK],
            allocated=accounting.allocated_node_seconds,
        )

    @property
    def useful(self) -> float:
        """Useful node-seconds (compute + un-dilated application I/O)."""
        return self.compute + self.base_io

    @property
    def waste(self) -> float:
        """Wasted node-seconds (resilience overheads + I/O delays + lost work)."""
        return self.io_delay + self.checkpoint + self.checkpoint_wait + self.recovery + self.lost_work

    @property
    def waste_over_useful(self) -> float:
        """Waste divided by useful work (the per-job waste definition of Eq. (3))."""
        if self.useful <= 0.0:
            return float("inf") if self.waste > 0.0 else 0.0
        return self.waste / self.useful

    @property
    def waste_ratio(self) -> float:
        """Wasted fraction of the accounted resources, ``waste / (useful + waste)``.

        This matches the quantity plotted in Figures 1 and 2 of the paper:
        the wasted node-seconds of the measurement segment divided by the
        resource usage of the baseline (failure-free, checkpoint-free)
        execution of the same segment, which keeps the same nodes busy with
        useful work only.  It is bounded by 1.
        """
        total = self.useful + self.waste
        if total <= 0.0:
            return 0.0
        return self.waste / total

    @property
    def efficiency(self) -> float:
        """Useful fraction of the accounted node-seconds, ``useful / (useful + waste)``."""
        return 1.0 - self.waste_ratio


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    strategy:
        Name of the I/O scheduling strategy that was simulated.
    breakdown:
        Node-second accounting over the measurement window.
    horizon_s / window:
        Simulated segment length and the measurement window.
    jobs_submitted / jobs_completed / jobs_failed / restarts_submitted:
        Job-level counters over the whole run (not restricted to the
        window); restarts count as separate submissions.
    failures_total / failures_effective:
        Failures injected, and failures that actually hit a node allocated
        to a running job.
    checkpoints_completed / checkpoints_requested:
        Checkpoint transfers that finished / were requested.
    node_utilization:
        Allocated node-seconds inside the window divided by the window's
        node-second capacity.
    io_busy_fraction:
        Fraction of the run during which the file system had at least one
        active transfer.
    events_fired:
        Number of discrete events executed (a cost/diagnostic metric).
    """

    strategy: str
    breakdown: WasteBreakdown
    horizon_s: float
    window: tuple[float, float]
    jobs_submitted: int
    jobs_completed: int
    jobs_failed: int
    restarts_submitted: int
    failures_total: int
    failures_effective: int
    checkpoints_completed: int
    checkpoints_requested: int
    node_utilization: float
    io_busy_fraction: float
    events_fired: int

    @property
    def waste_ratio(self) -> float:
        """Waste ratio over the measurement window (see :class:`WasteBreakdown`)."""
        return self.breakdown.waste_ratio

    @property
    def efficiency(self) -> float:
        """Platform efficiency over the measurement window."""
        return self.breakdown.efficiency

    def summary(self) -> str:
        """Multi-line human-readable summary of the run."""
        b = self.breakdown
        lines = [
            f"strategy            : {self.strategy}",
            f"waste ratio         : {self.waste_ratio:.3f}",
            f"efficiency          : {self.efficiency:.3f}",
            f"node utilization    : {self.node_utilization:.3f}",
            f"jobs completed      : {self.jobs_completed}/{self.jobs_submitted}"
            f" (+{self.restarts_submitted} restarts)",
            f"failures (effective): {self.failures_effective}/{self.failures_total}",
            f"checkpoints         : {self.checkpoints_completed}/{self.checkpoints_requested}",
            "breakdown (node-hours in window):",
            f"  compute           : {b.compute / 3600.0:.1f}",
            f"  base I/O          : {b.base_io / 3600.0:.1f}",
            f"  I/O delay         : {b.io_delay / 3600.0:.1f}",
            f"  checkpoint        : {b.checkpoint / 3600.0:.1f}",
            f"  checkpoint wait   : {b.checkpoint_wait / 3600.0:.1f}",
            f"  recovery          : {b.recovery / 3600.0:.1f}",
            f"  lost work         : {b.lost_work / 3600.0:.1f}",
        ]
        return "\n".join(lines)

"""Simulation configuration.

:class:`SimulationConfig` gathers every parameter of a single run: the
platform, the application classes, the I/O scheduling strategy, the
simulated horizon and measurement window, and the random seed.  It also
derives the workload-generator specification and validates parameter
consistency so errors surface before any event is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.apps.app_class import ApplicationClass
from repro.errors import ConfigurationError
from repro.iosched.registry import StrategySpec, canonical_strategy
from repro.platform.failures import FailureModel
from repro.platform.interference import InterferenceModel
from repro.platform.spec import PlatformSpec
from repro.units import DAY, HOUR
from repro.workloads.generator import WorkloadSpec

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Initial conditions of one simulation run.

    Attributes
    ----------
    platform:
        The platform to simulate.
    classes:
        Application classes of the workload.
    strategy:
        The I/O scheduling strategy: a legacy name, a parameterized spec
        string (``"ordered[policy=fixed,period_s=1800]"``) or a
        :class:`~repro.iosched.spec.StrategySpec`.  Normalised to the
        canonical string form on construction, so equal configurations
        compare equal and share one cache digest.
    horizon_s:
        Length of the simulated segment (seconds).
    warmup_s / cooldown_s:
        Lengths of the excluded segments at the beginning and end of the
        horizon (§5 excludes the first and last day).  They are capped to a
        quarter of the horizon each so short test runs keep a non-empty
        measurement window.
    seed:
        Root random seed of the run (workload mix, work-time jitter and the
        failure trace each use an independent stream derived from it).
    fixed_period_s:
        Checkpoint period of the ``*-fixed`` strategy variants.
    routine_io_chunks:
        Number of equally-spaced regular-I/O transfers a job performs during
        its compute phase when its class has ``routine_io_bytes > 0``.
    share_tolerance / work_time_jitter / headroom:
        Workload-generator parameters, see
        :class:`~repro.workloads.generator.WorkloadSpec`.
    max_events:
        Safety cap on the number of simulated events.
    """

    platform: PlatformSpec
    classes: tuple[ApplicationClass, ...]
    strategy: str | StrategySpec = "least-waste"
    horizon_s: float = 8.0 * DAY
    warmup_s: float = 1.0 * DAY
    cooldown_s: float = 1.0 * DAY
    seed: int | None = None
    fixed_period_s: float = HOUR
    routine_io_chunks: int = 4
    share_tolerance: float = 0.01
    work_time_jitter: float = 0.2
    headroom: float = 1.3
    max_events: int = 20_000_000
    #: Optional adversarial interference model for the shared file system
    #: (None selects the paper's linear, throughput-conserving model).
    interference: InterferenceModel | None = None
    #: Failure inter-arrival distribution (None selects the paper's
    #: exponential process; the default exponential model normalises to None
    #: so equivalent configurations share one cache digest).
    failure_model: FailureModel | None = None
    #: When True the simulator records a per-job execution trace
    #: (see :mod:`repro.simulation.trace`), available as ``Simulation.trace``.
    collect_trace: bool = False
    #: Simulator kernel: the hot-path implementation bundle (``"python"``
    #: reference or ``"numpy"`` batched fast path, see
    #: :mod:`repro.sim.kernel`).  ``None`` selects the process default.
    #: Kernels are float-for-float equivalent by contract, so this knob is
    #: excluded from cache digests — it changes wall-clock, never results.
    kernel: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "classes", tuple(self.classes))
        if not self.classes:
            raise ConfigurationError("SimulationConfig requires at least one application class")
        # One validator for every spelling (legacy name, spec string,
        # StrategySpec): parse errors carry the registry's did-you-mean
        # suggestions, and the stored field is always the canonical string.
        object.__setattr__(self, "strategy", canonical_strategy(self.strategy))
        if self.horizon_s <= 0.0:
            raise ConfigurationError("horizon_s must be positive")
        if self.warmup_s < 0.0 or self.cooldown_s < 0.0:
            raise ConfigurationError("warmup_s and cooldown_s must be non-negative")
        if self.fixed_period_s <= 0.0:
            raise ConfigurationError("fixed_period_s must be positive")
        if self.routine_io_chunks < 0:
            raise ConfigurationError("routine_io_chunks must be non-negative")
        if self.max_events <= 0:
            raise ConfigurationError("max_events must be positive")
        if self.kernel is not None and (
            not isinstance(self.kernel, str) or not self.kernel
        ):
            raise ConfigurationError(
                "kernel must be None (process default) or a non-empty kernel name"
            )
        if self.failure_model is not None:
            if not isinstance(self.failure_model, FailureModel):
                raise ConfigurationError(
                    f"failure_model must be a FailureModel, got {type(self.failure_model).__name__}"
                )
            if self.failure_model == FailureModel():
                object.__setattr__(self, "failure_model", None)
        for app in self.classes:
            if app.nodes > self.platform.num_nodes:
                raise ConfigurationError(
                    f"class {app.name!r} needs {app.nodes} nodes but platform "
                    f"{self.platform.name!r} has only {self.platform.num_nodes}"
                )

    # ------------------------------------------------------------ derived
    @property
    def effective_warmup_s(self) -> float:
        """Warm-up length, capped at a quarter of the horizon."""
        return min(self.warmup_s, self.horizon_s / 4.0)

    @property
    def effective_cooldown_s(self) -> float:
        """Cool-down length, capped at a quarter of the horizon."""
        return min(self.cooldown_s, self.horizon_s / 4.0)

    @property
    def measurement_window(self) -> tuple[float, float]:
        """The window ``[warmup, horizon - cooldown]`` used for statistics."""
        return self.effective_warmup_s, self.horizon_s - self.effective_cooldown_s

    def workload_spec(self) -> WorkloadSpec:
        """Workload-generator specification matching this configuration."""
        return WorkloadSpec(
            classes=self.classes,
            min_duration_s=self.horizon_s,
            share_tolerance=self.share_tolerance,
            work_time_jitter=self.work_time_jitter,
            headroom=self.headroom,
        )

    # ------------------------------------------------------------ variants
    def with_strategy(self, strategy: str | StrategySpec) -> "SimulationConfig":
        """Copy of this configuration with a different strategy."""
        return replace(self, strategy=strategy)

    def with_seed(self, seed: int | None) -> "SimulationConfig":
        """Copy of this configuration with a different seed."""
        return replace(self, seed=seed)

    def with_platform(self, platform: PlatformSpec) -> "SimulationConfig":
        """Copy of this configuration with a different platform."""
        return replace(self, platform=platform)

    def with_failure_model(self, model: FailureModel | None) -> "SimulationConfig":
        """Copy of this configuration with a different failure model."""
        return replace(self, failure_model=model)

    def with_kernel(self, kernel: str | None) -> "SimulationConfig":
        """Copy of this configuration with a different simulator kernel."""
        return replace(self, kernel=kernel)

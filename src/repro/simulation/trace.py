"""Optional per-job execution trace.

When a :class:`~repro.simulation.config.SimulationConfig` sets
``collect_trace=True``, the simulator records a time-stamped event for every
significant job transition (start, input done, checkpoint request / start /
completion, failure, restart, completion).  The trace is useful for

* debugging a scheduling strategy on a small scenario,
* computing *achieved* checkpoint intervals (the paper's ``C_dilated``
  discussion in §2: the effective period differs from the requested one when
  commits are delayed or dilated), and
* exporting a timeline for external visualisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from collections.abc import Iterator

from repro.apps.job import Job

__all__ = ["TraceEventType", "TraceEvent", "TraceRecorder"]


@unique
class TraceEventType(Enum):
    """Kinds of recorded job events."""

    JOB_START = "job-start"
    INPUT_DONE = "input-done"
    CHECKPOINT_REQUEST = "checkpoint-request"
    CHECKPOINT_START = "checkpoint-start"
    CHECKPOINT_DONE = "checkpoint-done"
    REGULAR_IO_DONE = "regular-io-done"
    OUTPUT_START = "output-start"
    OUTPUT_DONE = "output-done"
    JOB_COMPLETE = "job-complete"
    JOB_FAILED = "job-failed"
    RESTART_SUBMITTED = "restart-submitted"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    job_id: int
    job_name: str
    kind: TraceEventType
    detail: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flat dictionary representation (for CSV/JSON export)."""
        row = {
            "time": self.time,
            "job_id": self.job_id,
            "job": self.job_name,
            "event": self.kind.value,
        }
        row.update(self.detail)
        return row


class TraceRecorder:
    """Accumulates :class:`TraceEvent` objects during a simulation run."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    # ------------------------------------------------------------ recording
    def record(self, time: float, job: Job, kind: TraceEventType, **detail) -> None:
        """Record one event for ``job`` at simulation time ``time``."""
        self._events.append(
            TraceEvent(time=time, job_id=job.job_id, job_name=job.name, kind=kind, detail=detail)
        )

    # ------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """All recorded events, in recording (time) order."""
        return tuple(self._events)

    def for_job(self, job_id: int) -> list[TraceEvent]:
        """Events of one job."""
        return [event for event in self._events if event.job_id == job_id]

    def of_kind(self, kind: TraceEventType) -> list[TraceEvent]:
        """Events of one kind, across all jobs."""
        return [event for event in self._events if event.kind is kind]

    def job_ids(self) -> list[int]:
        """Distinct job ids appearing in the trace, in first-seen order."""
        seen: dict[int, None] = {}
        for event in self._events:
            seen.setdefault(event.job_id, None)
        return list(seen)

    # ------------------------------------------------------------ analysis
    def checkpoint_intervals(self, job_id: int) -> list[float]:
        """Achieved intervals between consecutive checkpoint completions of a job.

        The first interval is measured from the job's compute start (the
        ``INPUT_DONE`` event, or ``JOB_START`` for jobs without input).
        """
        events = self.for_job(job_id)
        completions = [e.time for e in events if e.kind is TraceEventType.CHECKPOINT_DONE]
        if not completions:
            return []
        # The compute phase starts when the input completes; fall back to the
        # job start for jobs without input, then to the first completion.
        input_done = [e.time for e in events if e.kind is TraceEventType.INPUT_DONE]
        job_start = [e.time for e in events if e.kind is TraceEventType.JOB_START]
        if input_done:
            reference = input_done[0]
        elif job_start:
            reference = job_start[0]
        else:
            reference = completions[0]
        intervals = []
        previous = reference
        for time in completions:
            intervals.append(time - previous)
            previous = time
        return intervals

    def io_wait_by_job(self) -> dict[int, float]:
        """Total recorded I/O queue wait per job (wall-clock seconds).

        Sums the ``waited`` detail over every completion event that carries
        one (input/recovery, regular I/O, output and checkpoint completions),
        i.e. how long each job's transfers sat in the scheduler's queue
        before being granted the file system.
        """
        completions = (
            TraceEventType.INPUT_DONE,
            TraceEventType.REGULAR_IO_DONE,
            TraceEventType.OUTPUT_DONE,
            TraceEventType.CHECKPOINT_DONE,
        )
        waits: dict[int, float] = {}
        for event in self._events:
            # Only completion events: CHECKPOINT_START carries the same
            # ``waited`` value as its CHECKPOINT_DONE and must not be
            # counted twice.
            if event.kind not in completions:
                continue
            waited = event.detail.get("waited")
            if waited is None:
                continue
            waits[event.job_id] = waits.get(event.job_id, 0.0) + float(waited)
        return waits

    def achieved_checkpoint_intervals(self) -> dict[int, list[float]]:
        """Achieved checkpoint intervals for every job that checkpointed."""
        return {
            job_id: intervals
            for job_id in self.job_ids()
            if (intervals := self.checkpoint_intervals(job_id))
        }

    def to_rows(self) -> list[dict]:
        """All events as flat dictionaries (for CSV/JSON export)."""
        return [event.as_row() for event in self._events]

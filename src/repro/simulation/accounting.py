"""Per-category node-second accounting over a measurement window.

Following §5 of the paper, performance statistics are collected over a fixed
segment of the simulation that excludes the first and last day (warm-up and
drain), and every allocated node-second is attributed to exactly one
category:

* useful categories — ``COMPUTE`` (application progress) and ``BASE_IO``
  (the un-dilated duration of input, output and regular I/O, which a
  failure-free, checkpoint-free execution would also pay);
* waste categories — ``IO_DELAY`` (waiting for, or dilation of,
  non-checkpoint I/O), ``CHECKPOINT`` (checkpoint commit time),
  ``CHECKPOINT_WAIT`` (idle wait for the checkpoint token under blocking
  strategies), ``RECOVERY`` (reading checkpoints back after failures) and
  ``LOST_WORK`` (work that had been recorded as compute but was lost to a
  failure and must be redone — it is *moved* from ``COMPUTE`` to
  ``LOST_WORK`` when the failure strikes).

Intervals are clipped to the measurement window; scalar amounts (lost work)
are attributed to the instant of the triggering event.

With ``track_jobs=True`` every attribution additionally lands in a per-job
ledger (keyed by the ``job`` id the recorder passes), which is what the
:mod:`repro.trace` drill-down decomposes.  The per-job ledger is accumulated
*separately* from the global totals — the global floating-point additions
are byte-for-byte the same statements with or without tracking, so enabling
it can never change a simulation's reported results.
"""

from __future__ import annotations

from enum import Enum, unique

from repro.errors import SimulationError

__all__ = ["Category", "Accounting"]


@unique
class Category(Enum):
    """Node-second accounting categories."""

    COMPUTE = "compute"
    BASE_IO = "base-io"
    IO_DELAY = "io-delay"
    CHECKPOINT = "checkpoint"
    CHECKPOINT_WAIT = "checkpoint-wait"
    RECOVERY = "recovery"
    LOST_WORK = "lost-work"

    @property
    def useful(self) -> bool:
        """True for categories that count as useful resource usage."""
        return self in (Category.COMPUTE, Category.BASE_IO)


class Accounting:
    """Accumulates node-seconds per category inside ``[window_start, window_end]``."""

    def __init__(
        self, window_start: float, window_end: float, *, track_jobs: bool = False
    ) -> None:
        if window_end < window_start:
            raise SimulationError(
                f"invalid measurement window [{window_start}, {window_end}]"
            )
        self._start = float(window_start)
        self._end = float(window_end)
        self._totals: dict[Category, float] = {category: 0.0 for category in Category}
        self._allocated = 0.0
        #: Per-job ledgers ({job id -> {category -> node-seconds}}), kept only
        #: when requested; None keeps the hot path free of per-job work.
        self._job_totals: dict[int, dict[Category, float]] | None = (
            {} if track_jobs else None
        )

    # ------------------------------------------------------------ properties
    @property
    def window(self) -> tuple[float, float]:
        """The measurement window ``(start, end)`` in seconds."""
        return self._start, self._end

    @property
    def window_length(self) -> float:
        """Length of the measurement window (seconds)."""
        return self._end - self._start

    @property
    def allocated_node_seconds(self) -> float:
        """Node-seconds during which nodes were allocated to jobs, in-window."""
        return self._allocated

    def total(self, category: Category) -> float:
        """Accumulated node-seconds of ``category`` inside the window."""
        return self._totals[category]

    def totals(self) -> dict[Category, float]:
        """Copy of all per-category totals."""
        return dict(self._totals)

    @property
    def tracks_jobs(self) -> bool:
        """True when per-job ledgers are being kept."""
        return self._job_totals is not None

    def job_totals(self) -> dict[int, dict[Category, float]]:
        """Per-job copies of the category ledgers (``{}`` unless tracking).

        Keys appear in first-attribution order, which is deterministic for a
        given simulation; values cover every category (zero-filled).
        """
        if self._job_totals is None:
            return {}
        return {job: dict(ledger) for job, ledger in self._job_totals.items()}

    def _job_ledger(self, job: int) -> dict[Category, float]:
        assert self._job_totals is not None
        ledger = self._job_totals.get(job)
        if ledger is None:
            ledger = {category: 0.0 for category in Category}
            self._job_totals[job] = ledger
        return ledger

    # ------------------------------------------------------------ recording
    def _clip(self, start: float, end: float) -> float:
        if end < start:
            raise SimulationError(f"interval with negative length [{start}, {end}]")
        lo = max(start, self._start)
        hi = min(end, self._end)
        return max(0.0, hi - lo)

    def in_window(self, instant: float) -> bool:
        """True when ``instant`` falls inside the measurement window."""
        return self._start <= instant <= self._end

    def record_interval(
        self,
        category: Category,
        nodes: float,
        start: float,
        end: float,
        *,
        job: int | None = None,
    ) -> None:
        """Attribute ``nodes`` node-streams over ``[start, end]`` to ``category``."""
        if nodes < 0.0:
            raise SimulationError("nodes must be non-negative")
        length = self._clip(start, end)
        if length > 0.0:
            self._totals[category] += nodes * length
            if self._job_totals is not None and job is not None:
                self._job_ledger(job)[category] += nodes * length

    def record_amount(
        self,
        category: Category,
        node_seconds: float,
        at_time: float,
        *,
        job: int | None = None,
    ) -> None:
        """Attribute a scalar amount of node-seconds at a given instant."""
        if node_seconds < 0.0:
            raise SimulationError("node_seconds must be non-negative")
        if self.in_window(at_time):
            self._totals[category] += node_seconds
            if self._job_totals is not None and job is not None:
                self._job_ledger(job)[category] += node_seconds

    def move_amount(
        self,
        source: Category,
        destination: Category,
        node_seconds: float,
        at_time: float,
        *,
        job: int | None = None,
    ) -> None:
        """Re-attribute node-seconds from ``source`` to ``destination``.

        Used when a failure converts previously recorded compute time into
        lost work.  The move only happens when the triggering instant is
        inside the window; the source total may go (slightly) negative when
        part of the lost work was performed before the window opened, which
        is expected and averages out over the window length.
        """
        if node_seconds < 0.0:
            raise SimulationError("node_seconds must be non-negative")
        if self.in_window(at_time):
            self._totals[source] -= node_seconds
            self._totals[destination] += node_seconds
            if self._job_totals is not None and job is not None:
                ledger = self._job_ledger(job)
                ledger[source] -= node_seconds
                ledger[destination] += node_seconds

    def record_allocation(self, nodes: float, start: float, end: float) -> None:
        """Record that ``nodes`` nodes were allocated to a job over ``[start, end]``."""
        if nodes < 0.0:
            raise SimulationError("nodes must be non-negative")
        length = self._clip(start, end)
        if length > 0.0:
            self._allocated += nodes * length

    # ------------------------------------------------------------ summaries
    def useful_node_seconds(self) -> float:
        """Total useful node-seconds (compute + base I/O, net of moves)."""
        return sum(v for c, v in self._totals.items() if c.useful)

    def waste_node_seconds(self) -> float:
        """Total wasted node-seconds."""
        return sum(v for c, v in self._totals.items() if not c.useful)

    def waste_ratio(self) -> float:
        """Wasted node-seconds divided by useful node-seconds.

        Returns ``inf`` when no useful work landed inside the window but
        waste did; 0 when the window is completely empty.
        """
        useful = self.useful_node_seconds()
        waste = self.waste_node_seconds()
        if useful <= 0.0:
            return float("inf") if waste > 0.0 else 0.0
        return waste / useful

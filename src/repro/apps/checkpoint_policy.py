"""Checkpoint interval policies: Fixed and Young/Daly.

A policy maps (application class, platform) to the *desired* checkpoint
period ``P_i``.  The paper evaluates two policies (§3.4):

* ``Fixed`` — a platform-wide constant period, one hour by default, the
  common production heuristic ("cap the lost work at one hour");
* ``Daly`` — the per-class Young/Daly period ``sqrt(2 C_i mu_i)`` where
  ``C_i`` is the interference-free commit time at the platform's full
  bandwidth and ``mu_i = mu_ind / q_i``.

The actual interval achieved by a job may be longer than ``P_i`` when I/O
contention or the I/O scheduler dilates or delays checkpoint commits; the
policies only provide the requested period.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.apps.app_class import ApplicationClass
from repro.core.daly import job_mtbf, young_period
from repro.errors import ConfigurationError
from repro.platform.spec import PlatformSpec
from repro.units import HOUR

__all__ = ["CheckpointPolicy", "FixedPolicy", "DalyPolicy", "make_policy"]


class CheckpointPolicy(ABC):
    """Maps an application class and a platform to a checkpoint period."""

    #: Short name used in strategy identifiers (``"fixed"`` or ``"daly"``).
    name: str = "abstract"

    @abstractmethod
    def period(self, app_class: ApplicationClass, platform: PlatformSpec) -> float:
        """Desired checkpoint period ``P_i`` in seconds."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class FixedPolicy(CheckpointPolicy):
    """Constant checkpoint period for every class (one hour by default)."""

    period_s: float = HOUR
    name = "fixed"

    def __post_init__(self) -> None:
        if self.period_s <= 0.0:
            raise ConfigurationError("FixedPolicy.period_s must be positive")

    def period(self, app_class: ApplicationClass, platform: PlatformSpec) -> float:
        return self.period_s

    def __repr__(self) -> str:
        return f"FixedPolicy(period_s={self.period_s})"


@dataclass(frozen=True, repr=False)
class DalyPolicy(CheckpointPolicy):
    """Per-class Young/Daly period based on the full-bandwidth commit time."""

    name = "daly"

    def period(self, app_class: ApplicationClass, platform: PlatformSpec) -> float:
        commit = app_class.checkpoint_time(platform.io_bandwidth_bytes_per_s)
        mtbf = job_mtbf(platform.node_mtbf_s, app_class.nodes)
        return young_period(commit, mtbf)


def make_policy(name: str, *, fixed_period_s: float = HOUR) -> CheckpointPolicy:
    """Build a policy from its short name (``"fixed"`` or ``"daly"``)."""
    key = name.strip().lower()
    if key == "fixed":
        return FixedPolicy(period_s=fixed_period_s)
    if key == "daly":
        return DalyPolicy()
    raise ConfigurationError(f"unknown checkpoint policy {name!r} (expected 'fixed' or 'daly')")

"""Application classes.

An *application class* (paper §2) groups jobs with similar size, duration
and I/O behaviour.  The APEX workflows report characterises each class by
its core count, typical work time, and initial-input / final-output /
checkpoint volumes expressed as percentages of the job's memory footprint;
:meth:`ApplicationClass.from_memory_fractions` performs that conversion for
a given platform.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.platform.spec import PlatformSpec
from repro.units import GB, HOUR

__all__ = ["ApplicationClass"]


@dataclass(frozen=True)
class ApplicationClass:
    """Static description of an application class.

    Attributes
    ----------
    name:
        Class name (e.g. ``"EAP"``).
    nodes:
        Number of nodes ``q_i`` used by each job of the class.
    work_s:
        Typical failure-free compute time of a job (seconds of wall-clock
        work, excluding all I/O).
    input_bytes:
        Volume of the initial input read.
    output_bytes:
        Volume of the final output write.
    checkpoint_bytes:
        Volume of one coordinated checkpoint (also the volume read back on
        recovery, since read and write bandwidths are symmetric).
    routine_io_bytes:
        Total volume of regular (non-checkpoint) I/O performed during the
        compute phase, evenly spread over the job's makespan.  The APEX
        table in the paper does not list it, so it defaults to 0.
    workload_share:
        Fraction of the platform's node-hours the class should receive in a
        representative job mix (0..1); used by the workload generator.
    """

    name: str
    nodes: int
    work_s: float
    input_bytes: float
    output_bytes: float
    checkpoint_bytes: float
    routine_io_bytes: float = 0.0
    workload_share: float = 0.0

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ConfigurationError(f"class {self.name!r}: nodes must be positive")
        if self.work_s <= 0.0:
            raise ConfigurationError(f"class {self.name!r}: work_s must be positive")
        for field_name in ("input_bytes", "output_bytes", "checkpoint_bytes", "routine_io_bytes"):
            if getattr(self, field_name) < 0.0:
                raise ConfigurationError(f"class {self.name!r}: {field_name} must be >= 0")
        if self.checkpoint_bytes <= 0.0:
            raise ConfigurationError(f"class {self.name!r}: checkpoint_bytes must be positive")
        if not (0.0 <= self.workload_share <= 1.0):
            raise ConfigurationError(f"class {self.name!r}: workload_share must be in [0, 1]")

    # ------------------------------------------------------------ construction
    @classmethod
    def from_memory_fractions(
        cls,
        name: str,
        *,
        platform: PlatformSpec,
        cores: int,
        work_s: float,
        input_fraction: float,
        output_fraction: float,
        checkpoint_fraction: float,
        routine_io_fraction: float = 0.0,
        workload_share: float = 0.0,
    ) -> "ApplicationClass":
        """Build a class from APEX-style memory-fraction characteristics.

        ``cores`` is converted to whole nodes of ``platform`` (rounded up);
        the job memory footprint is ``nodes * memory_per_node`` and each
        ``*_fraction`` is a fraction (1.0 == 100 % of the footprint) of that
        footprint, matching the percentage columns of Table 1.
        """
        if cores <= 0:
            raise ConfigurationError(f"class {name!r}: cores must be positive")
        nodes = max(1, -(-cores // platform.cores_per_node))  # ceil division
        if nodes > platform.num_nodes:
            raise ConfigurationError(
                f"class {name!r} needs {nodes} nodes but platform "
                f"{platform.name!r} only has {platform.num_nodes}"
            )
        footprint = nodes * platform.memory_per_node_bytes
        return cls(
            name=name,
            nodes=nodes,
            work_s=work_s,
            input_bytes=input_fraction * footprint,
            output_bytes=output_fraction * footprint,
            checkpoint_bytes=checkpoint_fraction * footprint,
            routine_io_bytes=routine_io_fraction * footprint,
            workload_share=workload_share,
        )

    # ------------------------------------------------------------ derived
    def memory_footprint_bytes(self, platform: PlatformSpec) -> float:
        """Aggregate memory footprint of one job of this class on ``platform``."""
        return self.nodes * platform.memory_per_node_bytes

    def checkpoint_time(self, bandwidth_bytes_per_s: float) -> float:
        """Interference-free checkpoint commit time ``C_i`` at the given bandwidth."""
        if bandwidth_bytes_per_s <= 0.0:
            raise ConfigurationError("bandwidth_bytes_per_s must be positive")
        return self.checkpoint_bytes / bandwidth_bytes_per_s

    def recovery_time(self, bandwidth_bytes_per_s: float) -> float:
        """Interference-free recovery (checkpoint read) time ``R_i``.

        Read and write bandwidths are symmetric (§5), so ``R_i == C_i``.
        """
        return self.checkpoint_time(bandwidth_bytes_per_s)

    def scaled_to(self, platform: PlatformSpec, reference: PlatformSpec) -> "ApplicationClass":
        """Scale the class from ``reference`` to ``platform``.

        Used for the prospective-system study (§6.2): the per-job memory
        footprint (hence input/output/checkpoint volumes) grows with the
        platform's memory per node, while node counts and work stay the
        same fraction of the machine.
        """
        node_scale = platform.num_nodes / reference.num_nodes
        new_nodes = max(1, int(round(self.nodes * node_scale)))
        old_footprint = self.nodes * reference.memory_per_node_bytes
        new_footprint = new_nodes * platform.memory_per_node_bytes
        volume_scale = new_footprint / old_footprint
        return replace(
            self,
            nodes=new_nodes,
            input_bytes=self.input_bytes * volume_scale,
            output_bytes=self.output_bytes * volume_scale,
            checkpoint_bytes=self.checkpoint_bytes * volume_scale,
            routine_io_bytes=self.routine_io_bytes * volume_scale,
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.nodes} nodes, work {self.work_s / HOUR:.1f} h, "
            f"ckpt {self.checkpoint_bytes / GB:.0f} GB, "
            f"input {self.input_bytes / GB:.0f} GB, output {self.output_bytes / GB:.0f} GB, "
            f"share {100.0 * self.workload_share:.1f}%"
        )

"""Application workload model: classes, jobs and checkpoint policies.

* :mod:`repro.apps.app_class` — static description of an application class
  (node count, work, input/output/checkpoint volumes), mirroring the APEX
  workflow characterisation of Table 1.
* :mod:`repro.apps.job` — a job (one instance of a class) and its mutable
  execution state: work progress, protected (checkpointed) work, restarts.
* :mod:`repro.apps.checkpoint_policy` — Fixed and Young/Daly checkpoint
  interval policies.
* :mod:`repro.apps.phases` — job life-cycle states and I/O request kinds.
"""

from repro.apps.app_class import ApplicationClass
from repro.apps.checkpoint_policy import CheckpointPolicy, DalyPolicy, FixedPolicy, make_policy
from repro.apps.job import Job
from repro.apps.phases import IOKind, JobState

__all__ = [
    "ApplicationClass",
    "Job",
    "JobState",
    "IOKind",
    "CheckpointPolicy",
    "FixedPolicy",
    "DalyPolicy",
    "make_policy",
]

"""Jobs: single instances of an application class and their execution state.

A :class:`Job` carries its static parameters (copied from the class, with
the work duration drawn by the workload generator) plus the mutable state
that the simulator updates: current :class:`~repro.apps.phases.JobState`,
allocated nodes, work progress and the amount of work protected by a
completed checkpoint.

Work progress is tracked through explicit ``begin_progress`` /
``pause_progress`` calls so both blocking strategies (where checkpoint waits
pause the job) and non-blocking ones (where the job keeps computing while it
waits for the I/O token) are expressed with the same machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.apps.app_class import ApplicationClass
from repro.apps.phases import JobState
from repro.errors import SimulationError

__all__ = ["Job"]

_job_ids = itertools.count(1)


@dataclass
class Job:
    """One schedulable job.

    Attributes
    ----------
    app_class:
        The application class this job is an instance of.
    total_work_s:
        Wall-clock compute time the job must accumulate to finish (seconds).
        For a restarted job this is the *remaining* work.
    submit_time:
        Time the job was (re-)submitted to the scheduler.
    priority:
        Smaller values are scheduled first; restarts get negative priority
        so they jump to the head of the queue (paper §2).
    input_bytes:
        Volume of the initial read.  For a restart this is the recovery read
        of the last checkpoint.
    is_restart:
        True when this job is the resubmission of a failed job.
    parent_id:
        Id of the original failed job (for restarts), else ``None``.
    """

    app_class: ApplicationClass
    total_work_s: float
    submit_time: float = 0.0
    priority: float = 0.0
    input_bytes: float | None = None
    is_restart: bool = False
    parent_id: int | None = None
    job_id: int = field(default_factory=lambda: next(_job_ids))

    # --- mutable execution state (managed by the simulator) ---
    state: JobState = JobState.PENDING
    allocated_nodes: list[int] = field(default_factory=list)
    start_time: float | None = None
    end_time: float | None = None
    work_done_s: float = 0.0
    work_protected_s: float = 0.0
    restart_count: int = 0
    checkpoints_completed: int = 0
    checkpoints_requested: int = 0
    #: Time at which the currently protected state was captured (set when the
    #: compute phase starts and whenever a checkpoint transfer begins); used
    #: by the Least-Waste scheduler as d_j, the failure-exposure window.
    last_capture_time: float | None = None
    _progress_since: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.total_work_s <= 0.0:
            raise SimulationError("total_work_s must be positive")
        if self.input_bytes is None:
            self.input_bytes = self.app_class.input_bytes
        if self.input_bytes < 0.0:
            raise SimulationError("input_bytes must be >= 0")

    # ------------------------------------------------------------ static views
    @property
    def nodes(self) -> int:
        """Number of nodes the job needs (``q_i`` of its class)."""
        return self.app_class.nodes

    @property
    def output_bytes(self) -> float:
        """Volume of the final output write."""
        return self.app_class.output_bytes

    @property
    def checkpoint_bytes(self) -> float:
        """Volume of one coordinated checkpoint."""
        return self.app_class.checkpoint_bytes

    @property
    def routine_io_bytes(self) -> float:
        """Total regular (non-checkpoint) I/O volume over the job's work."""
        return self.app_class.routine_io_bytes

    @property
    def name(self) -> str:
        """Readable identifier, e.g. ``"EAP#12"``."""
        suffix = f"r{self.restart_count}" if self.is_restart else ""
        return f"{self.app_class.name}#{self.job_id}{suffix}"

    # ------------------------------------------------------------ progress
    def begin_progress(self, now: float) -> None:
        """Mark that the job starts accumulating work at time ``now``."""
        if self._progress_since is not None:
            raise SimulationError(f"{self.name}: begin_progress while already progressing")
        self._progress_since = now

    def pause_progress(self, now: float) -> float:
        """Stop accumulating work; returns the work done in the closed interval."""
        if self._progress_since is None:
            return 0.0
        delta = now - self._progress_since
        if delta < -1e-9:
            raise SimulationError(f"{self.name}: progress interval with negative length")
        delta = max(0.0, delta)
        self.work_done_s += delta
        self._progress_since = None
        return delta

    def sync_progress(self, now: float) -> None:
        """Fold accumulated progress into ``work_done_s`` without pausing."""
        if self._progress_since is None:
            return
        self.pause_progress(now)
        self.begin_progress(now)

    @property
    def progressing(self) -> bool:
        """True while the job is accumulating work."""
        return self._progress_since is not None

    def work_done_at(self, now: float) -> float:
        """Work accumulated up to ``now`` (including any open interval)."""
        done = self.work_done_s
        if self._progress_since is not None:
            done += max(0.0, now - self._progress_since)
        return min(done, self.total_work_s)

    def remaining_work_at(self, now: float) -> float:
        """Work still to perform at ``now``."""
        return max(0.0, self.total_work_s - self.work_done_at(now))

    def unprotected_work_at(self, now: float) -> float:
        """Work at risk (done but not yet protected by a completed checkpoint)."""
        return max(0.0, self.work_done_at(now) - self.work_protected_s)

    # ------------------------------------------------------------ checkpoints
    def protect_work(self, amount_s: float) -> None:
        """Record that a checkpoint holding ``amount_s`` of work is now on stable storage."""
        if amount_s < self.work_protected_s - 1e-9:
            raise SimulationError(
                f"{self.name}: protected work cannot decrease "
                f"({amount_s} < {self.work_protected_s})"
            )
        self.work_protected_s = min(max(amount_s, self.work_protected_s), self.total_work_s)
        self.checkpoints_completed += 1

    # ------------------------------------------------------------ completion
    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state.terminal

    @property
    def succeeded(self) -> bool:
        """True when the job completed all its work and its final output."""
        return self.state is JobState.COMPLETED

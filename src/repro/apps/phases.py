"""Job life-cycle states and I/O request kinds."""

from __future__ import annotations

from enum import Enum, unique

__all__ = ["JobState", "IOKind"]


@unique
class JobState(Enum):
    """Execution state of a job.

    The life cycle is::

        PENDING -> INPUT_IO -> { COMPUTING | CHECKPOINT_WAIT | CHECKPOINTING
                                 | REGULAR_IO | IO_WAIT }* -> OUTPUT_IO -> COMPLETED

    plus ``FAILED`` when a node failure kills the job (the restart is a new
    :class:`~repro.apps.job.Job` object).  With non-blocking strategies the
    job is *computing* while in ``CHECKPOINT_WAIT`` and ``CHECKPOINTING``
    states do not pause its progress only while the checkpoint data is being
    written; the distinction between states and whether work progresses is
    made explicit by :meth:`JobState.progresses_work`, evaluated with the
    strategy's blocking semantics by the job runtime.
    """

    PENDING = "pending"
    INPUT_IO = "input-io"
    COMPUTING = "computing"
    REGULAR_IO = "regular-io"
    IO_WAIT = "io-wait"
    CHECKPOINT_WAIT = "checkpoint-wait"
    CHECKPOINTING = "checkpointing"
    OUTPUT_IO = "output-io"
    RECOVERY_IO = "recovery-io"
    COMPLETED = "completed"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        """True for states a job never leaves."""
        return self in (JobState.COMPLETED, JobState.FAILED)

    @property
    def allocated(self) -> bool:
        """True when the job holds compute nodes in this state."""
        return self not in (JobState.PENDING, JobState.COMPLETED, JobState.FAILED)


@unique
class IOKind(Enum):
    """Kind of an I/O request submitted to the I/O scheduler."""

    INPUT = "input"
    OUTPUT = "output"
    RECOVERY = "recovery"
    REGULAR = "regular"
    CHECKPOINT = "checkpoint"

    @property
    def is_checkpoint(self) -> bool:
        """True for checkpoint writes (the only kind that may be non-blocking)."""
        return self is IOKind.CHECKPOINT

    @property
    def counts_as_useful(self) -> bool:
        """True when the (un-dilated) transfer time counts as useful work.

        Initial input, final output and regular application I/O would be
        performed even without checkpoint/restart, so their nominal duration
        is useful; checkpoint and recovery I/O exist only because of
        resilience and are pure waste.
        """
        return self in (IOKind.INPUT, IOKind.OUTPUT, IOKind.REGULAR)

"""The filesystem work spool: a broker-less, crash-tolerant task queue.

Layout (all under one shared directory)::

    <spool>/
      tasks/<task_id>.json        # enqueued specs, ready to claim
      claims/<task_id>.json       # claimed specs; file mtime = last heartbeat
      claims/<task_id>.meta.json  # claim metadata (worker id, claim time)
      done/<task_id>.json         # completion markers (spec + worker + stats)
      failed/<task_id>.json       # failure records (spec + error traceback)

Every transition is a single atomic :func:`os.rename` on the same
filesystem, so the spool needs no locks and tolerates any number of
concurrent submitters and workers:

* **enqueue** writes the spec to a temporary file and renames it into
  ``tasks/``; task ids are content-addressed, so double submission is a
  no-op.
* **claim** renames ``tasks/<id>.json`` into ``claims/``; rename fails for
  every process but one, so exactly one worker wins each task.
* **heartbeat** touches the claim file; a claim whose mtime is older than
  the lease TTL its claimer recorded (in the metadata sidecar) belongs to a
  crashed (or wedged) worker and *any* participant may **reclaim** it by
  renaming it back into ``tasks/`` — again, exactly one reclaimer wins.
* **ack** renames the claim into ``done/``; **fail** records the error in
  ``failed/`` and drops the claim; **release** puts an interrupted worker's
  claim back into ``tasks/`` untouched.

The lease TTL must comfortably exceed the heartbeat interval (workers
heartbeat from a background thread while simulating), not the task
duration — long tasks stay leased as long as their worker is alive.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, SpoolError
from repro.distributed.tasks import TaskSpec
from repro.exec.cache import atomic_write_text

__all__ = ["SpoolStatus", "WorkSpool"]

#: Subdirectories of a spool, created on first use.
_STATE_DIRS = ("tasks", "claims", "done", "failed")

#: Suffix of claim-metadata sidecar files (excluded from spec globs).
_META_SUFFIX = ".meta.json"


@dataclass(frozen=True)
class SpoolStatus:
    """Counts of tasks per spool state."""

    pending: int
    claimed: int
    done: int
    failed: int

    @property
    def drained(self) -> bool:
        """True when no task is waiting or in flight (done/failed may remain)."""
        return self.pending == 0 and self.claimed == 0

    def describe(self) -> str:
        return (
            f"{self.pending} pending, {self.claimed} claimed, "
            f"{self.done} done, {self.failed} failed"
        )


class WorkSpool:
    """One shared spool directory; see the module docstring for semantics."""

    def __init__(self, root: str | os.PathLike[str], *, lease_ttl_s: float = 60.0) -> None:
        if lease_ttl_s <= 0:
            raise ConfigurationError("lease_ttl_s must be positive")
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ConfigurationError(f"spool path {self.root} exists and is not a directory")
        self.lease_ttl_s = float(lease_ttl_s)
        for name in _STATE_DIRS:
            (self.root / name).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ layout
    def _path(self, state: str, task_id: str) -> Path:
        return self.root / state / f"{task_id}.json"

    def _meta_path(self, task_id: str) -> Path:
        return self.root / "claims" / f"{task_id}{_META_SUFFIX}"

    def _spec_files(self, state: str) -> list[Path]:
        return sorted(
            path
            for path in (self.root / state).glob("*.json")
            if not path.name.endswith(_META_SUFFIX)
        )

    # ------------------------------------------------------------ submitter side
    def enqueue(self, spec: TaskSpec) -> bool:
        """Spool one task; returns False when it is already pending or claimed.

        A leftover ``done`` or ``failed`` marker for the same id is stale by
        construction — submitters only enqueue work whose results are missing
        from the cache — so it is cleared and the task queued again (this is
        what makes retries after a failure and resumes after a cache wipe
        plain re-submissions).
        """
        task_path = self._path("tasks", spec.task_id)
        if task_path.exists() or self._path("claims", spec.task_id).exists():
            return False
        for stale_state in ("done", "failed"):
            stale = self._path(stale_state, spec.task_id)
            try:
                stale.unlink()
            except FileNotFoundError:
                pass
        atomic_write_text(task_path, spec.encode())
        return True

    # ------------------------------------------------------------ worker side
    def claim(self, worker_id: str) -> TaskSpec | None:
        """Atomically claim one pending task, oldest task-id first.

        Expired claims are reclaimed first, so a single surviving worker
        eventually drains a spool abandoned by crashed peers.  Corrupt spec
        files are moved to ``failed/`` instead of wedging the queue.
        """
        self.reclaim_expired()
        for path in self._spec_files("tasks"):
            task_id = path.stem
            claim_path = self._path("claims", task_id)
            try:
                os.rename(path, claim_path)
            except FileNotFoundError:
                continue  # another claimer won the rename; try the next task
            try:
                # The rename preserved the enqueue-time mtime; refresh it at
                # once so a task that waited in the queue longer than the
                # lease TTL doesn't look instantly expired.  A reclaim sweep
                # can still steal the claim inside that window — losing it
                # (FileNotFoundError below) is just a lost race, not an
                # error, exactly like losing the rename.
                now = time.time()
                os.utime(claim_path, (now, now))
                try:
                    atomic_write_text(
                        self._meta_path(task_id),
                        json.dumps(
                            {
                                "worker": worker_id,
                                "claimed_at": now,
                                "lease_ttl_s": self.lease_ttl_s,
                            }
                        ),
                    )
                except OSError:
                    pass  # metadata is advisory; the claim itself already holds
                text = claim_path.read_text(encoding="utf-8")
            except FileNotFoundError:
                self._discard_meta(task_id)
                continue  # a racing sweep reclaimed the stale-looking claim
            try:
                spec = TaskSpec.decode(text)
            except SpoolError as exc:
                self.fail(task_id, f"corrupt spec: {exc}", worker_id=worker_id)
                continue
            return spec
        return None

    def heartbeat(self, task_id: str) -> None:
        """Refresh the lease of one claimed task (missing claims are ignored:
        the task may have been reclaimed after a stall, and the reclaim wins)."""
        try:
            now = time.time()
            os.utime(self._path("claims", task_id), (now, now))
        except FileNotFoundError:
            pass

    def ack(self, task_id: str, *, worker_id: str = "") -> None:
        """Mark one claimed task complete (its results are in the cache)."""
        claim_path = self._path("claims", task_id)
        done_path = self._path("done", task_id)
        try:
            os.rename(claim_path, done_path)
        except FileNotFoundError as exc:
            raise SpoolError(
                f"cannot ack task {task_id!r}: no claim on file (lease expired "
                "and the task was reclaimed?)"
            ) from exc
        self._discard_meta(task_id)
        if worker_id:
            try:
                now = time.time()
                payload = json.loads(done_path.read_text(encoding="utf-8"))
                payload["completed_by"] = worker_id
                payload["completed_at"] = now
                atomic_write_text(done_path, json.dumps(payload))
            except (OSError, json.JSONDecodeError):
                pass  # the rename already recorded completion

    def fail(self, task_id: str, error: str, *, worker_id: str = "") -> None:
        """Record a task failure and drop its claim.

        The original spec is preserved inside the failure record, so
        ``failed/<id>.json`` is both the error report and enough to re-queue
        the task by re-submitting.  A failure reported for a claim the
        caller no longer holds (its lease expired mid-stall and a peer took
        the task back) is dropped silently: writing a record then would
        abort the submitter's batch while the peer's retry is live.
        """
        claim_path = self._path("claims", task_id)
        try:
            spec_text = claim_path.read_text(encoding="utf-8")
        except OSError:
            self._discard_meta(task_id)
            return  # claim reclaimed by a peer; its retry owns the outcome now
        record = {"task_id": task_id, "worker": worker_id, "error": error, "failed_at": time.time(), "spec": spec_text}
        atomic_write_text(self._path("failed", task_id), json.dumps(record))
        try:
            claim_path.unlink()
        except FileNotFoundError:
            pass
        self._discard_meta(task_id)

    def release(self, task_id: str) -> None:
        """Return one claimed task to the queue untouched (graceful shutdown)."""
        try:
            os.rename(self._path("claims", task_id), self._path("tasks", task_id))
        except FileNotFoundError:
            pass
        self._discard_meta(task_id)

    def _discard_meta(self, task_id: str) -> None:
        try:
            self._meta_path(task_id).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------ recovery
    def reclaim_expired(self) -> list[str]:
        """Move claims whose lease expired back into ``tasks/``.

        Any participant (worker or submitter) may call this; the rename
        races resolve to exactly one winner per task, so concurrent reclaim
        sweeps are safe.  A claim is judged against the TTL its *claimer*
        recorded in the metadata sidecar, so a submitter configured with a
        shorter lease than the workers never steals live claims; this
        spool's own TTL only applies to claims whose metadata is missing.
        """
        reclaimed: list[str] = []
        now = time.time()
        for claim_path in self._spec_files("claims"):
            task_id = claim_path.stem
            try:
                if claim_path.stat().st_mtime > now - self._claim_ttl(task_id):
                    continue
            except FileNotFoundError:
                continue
            try:
                os.rename(claim_path, self._path("tasks", task_id))
            except FileNotFoundError:
                continue  # someone else reclaimed (or the worker acked) first
            self._discard_meta(task_id)
            reclaimed.append(task_id)
        return reclaimed

    def _claim_ttl(self, task_id: str) -> float:
        """The lease TTL the claimer recorded, falling back to this spool's."""
        try:
            ttl = json.loads(self._meta_path(task_id).read_text(encoding="utf-8"))["lease_ttl_s"]
            return float(ttl)
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return self.lease_ttl_s

    # ------------------------------------------------------------ inspection
    def is_done(self, task_id: str) -> bool:
        """True when a completion marker exists for ``task_id``."""
        return self._path("done", task_id).exists()

    def has_failed(self, task_id: str) -> bool:
        """True when a failure record exists for ``task_id``."""
        return self._path("failed", task_id).exists()

    def failure(self, task_id: str) -> str | None:
        """The recorded error of one failed task, or ``None``."""
        try:
            record = json.loads(self._path("failed", task_id).read_text(encoding="utf-8"))
            return str(record.get("error", "unknown error"))
        except (OSError, json.JSONDecodeError):
            return None

    def failed_ids(self) -> list[str]:
        """Ids of every task with a failure record, sorted."""
        return [path.stem for path in self._spec_files("failed")]

    def status(self) -> SpoolStatus:
        """Task counts per state."""
        return SpoolStatus(
            pending=len(self._spec_files("tasks")),
            claimed=len(self._spec_files("claims")),
            done=len(self._spec_files("done")),
            failed=len(self._spec_files("failed")),
        )

    def __repr__(self) -> str:
        return f"WorkSpool(root={str(self.root)!r}, lease_ttl_s={self.lease_ttl_s}, {self.status().describe()})"

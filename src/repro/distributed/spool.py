"""The filesystem work spool: a broker-less, crash-tolerant task queue.

Layout version 2 (recorded in ``spool.json`` at the spool root)::

    <spool>/
      spool.json                    # {"layout": "2"} — the layout version
      tasks/<shard>/<task_id>.json  # enqueued specs, ready to claim
      claims/<batch_id>/            # one directory per claimed *batch*
        .lease.json                 #   worker id + TTL; file mtime = heartbeat
        <task_id>.json              #   the batch's still-unfinished specs
      done/<shard>/<task_id>.json   # completion markers
      failed/<shard>/<task_id>.json # failure records (spec + error traceback)
      index/<shard>.jsonl           # append-only event journal per shard

``<shard>`` is the task id's config-digest prefix
(:func:`~repro.distributed.tasks.shard_of`), so directories stay small at
fleet scale and one campaign cell's tasks sit together.  Every transition
is still a single atomic :func:`os.rename` on the same filesystem, so the
spool needs no locks and tolerates any number of concurrent submitters and
workers:

* **enqueue** writes the spec into its shard of ``tasks/``; task ids are
  content-addressed, so double submission is a no-op.
* **claim** renames an entire shard directory into ``claims/<batch_id>/`` —
  *one rename claims a whole batch of tasks* — then re-creates the shard
  for submitters and returns up to ``limit`` specs (any excess is handed
  back, so a big shard still spreads across workers).  The rename fails
  for every process but one, so exactly one worker wins each batch.
* **heartbeat** touches the batch's ``.lease.json``; a lease whose mtime is
  older than the TTL its claimer recorded belongs to a crashed (or wedged)
  worker and *any* participant may **reclaim** its tasks back into their
  shards — per-task renames there resolve every race to one winner.
* **ack** renames a spec from its batch into ``done/``; **fail** records
  the error in ``failed/`` and drops the spec; **release** returns an
  interrupted worker's specs to their shards untouched.

``index/<shard>.jsonl`` is an advisory append-only journal of ``done`` /
``failed`` / ``requeue`` events.  Submitters tail it so progress polling
costs O(shards touched) instead of a directory sweep; because it is
advisory (an append can be lost to a crash), every consumer backs it with
ground truth — the result cache for deliveries, marker files for failures.

Spools written by the flat pre-shard layout are migrated automatically on
open: entries move into their shards, orphaned claims return to the queue,
and the journal is rebuilt, after which ``spool.json`` pins the layout.
The lease TTL must comfortably exceed the heartbeat interval (workers
heartbeat from a background thread while simulating), not the task
duration — long batches stay leased as long as their worker is alive.
"""

from __future__ import annotations

import json
import os
import time
import uuid
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, SpoolError
from repro.distributed import fsops
from repro.distributed.tasks import TaskSpec, shard_of
from repro.exec.journal import append_record, tail_records

__all__ = ["ClaimedBatch", "SpoolStatus", "SpoolTail", "WorkSpool", "SPOOL_LAYOUT_VERSION"]

#: Version of the on-disk spool layout, recorded in ``spool.json`` at the
#: spool root.  Opening a spool written by a *newer* layout fails loudly;
#: a spool with no recorded layout is either fresh or flat (version 1) and
#: is migrated in place.
SPOOL_LAYOUT_VERSION = "2"

#: Subdirectories of a spool, created on first use.
_STATE_DIRS = ("tasks", "claims", "done", "failed", "index")

#: Name of the per-batch lease file (mtime = heartbeat).  The leading dot
#: keeps it out of every spec listing.
_LEASE_NAME = ".lease.json"

#: Suffix of the flat layout's claim-metadata sidecars (migration only).
_META_SUFFIX = ".meta.json"


def _is_spec_name(name: str) -> bool:
    return name.endswith(".json") and not name.startswith(".")


@dataclass(frozen=True)
class SpoolStatus:
    """Counts of tasks per spool state."""

    pending: int
    claimed: int
    done: int
    failed: int

    @property
    def drained(self) -> bool:
        """True when no task is waiting or in flight (done/failed may remain)."""
        return self.pending == 0 and self.claimed == 0

    def describe(self) -> str:
        return (
            f"{self.pending} pending, {self.claimed} claimed, "
            f"{self.done} done, {self.failed} failed"
        )


@dataclass(frozen=True)
class ClaimedBatch:
    """One claimed batch: the claim's directory id and its decoded specs."""

    batch_id: str
    specs: tuple[TaskSpec, ...]


class SpoolTail:
    """Incremental reader of a spool's per-shard event journals.

    Remembers a byte offset per shard, so each :meth:`poll` costs one
    ``stat`` per shard plus only the newly appended bytes.  Created via
    :meth:`WorkSpool.tail`, which starts at the journals' current ends —
    events recorded before the tail was opened describe work from earlier
    campaigns and are deliberately skipped.
    """

    def __init__(self, spool: "WorkSpool", shards: set[str], *, from_start: bool = False) -> None:
        self._spool = spool
        self._offsets: dict[str, int] = {}
        for shard in shards:
            offset = 0
            if not from_start:
                try:
                    offset = os.stat(spool.journal_path(shard)).st_size
                except OSError:
                    offset = 0
            self._offsets[shard] = offset

    def poll(self) -> list[dict]:
        """Events appended since the previous poll, across every shard."""
        events: list[dict] = []
        for shard in self._offsets:
            records, offset = tail_records(
                self._spool.journal_path(shard), self._offsets[shard]
            )
            self._offsets[shard] = offset
            events.extend(records)
        return events


class WorkSpool:
    """One shared spool directory; see the module docstring for semantics."""

    def __init__(self, root: str | os.PathLike[str], *, lease_ttl_s: float = 60.0) -> None:
        if lease_ttl_s <= 0:
            raise ConfigurationError("lease_ttl_s must be positive")
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ConfigurationError(f"spool path {self.root} exists and is not a directory")
        self.lease_ttl_s = float(lease_ttl_s)
        for name in _STATE_DIRS:
            fsops.mkdir(self.root / name)
        #: Batches claimed through this handle: task id -> batch id.
        self._batches: dict[str, str] = {}
        self._adopt_layout()

    # ------------------------------------------------------------ layout
    def _state_dir(self, state: str) -> Path:
        return self.root / state

    def _shard_path(self, state: str, task_id: str) -> Path:
        return self.root / state / shard_of(task_id) / f"{task_id}.json"

    def _batch_dir(self, batch_id: str) -> Path:
        return self.root / "claims" / batch_id

    def _lease_path(self, batch_id: str) -> Path:
        return self._batch_dir(batch_id) / _LEASE_NAME

    def journal_path(self, shard: str) -> Path:
        """On-disk path of one shard's event journal."""
        return self.root / "index" / f"{shard}.jsonl"

    def _meta_path(self) -> Path:
        return self.root / "spool.json"

    def _shards(self, state: str) -> list[str]:
        """Shard directories currently present under one state."""
        return sorted(
            name
            for name in fsops.scandir_names(self._state_dir(state))
            if not name.startswith(".") and (self._state_dir(state) / name).is_dir()
        )

    def _batch_ids(self) -> list[str]:
        return sorted(
            name
            for name in fsops.scandir_names(self._state_dir("claims"))
            if (self._state_dir("claims") / name).is_dir()
        )

    def _shard_spec_names(self, state: str, shard: str) -> list[str]:
        return sorted(
            name
            for name in fsops.scandir_names(self._state_dir(state) / shard)
            if _is_spec_name(name)
        )

    # ------------------------------------------------------------ versioning
    def _adopt_layout(self) -> None:
        """Read ``spool.json``; migrate flat spools; pin the layout version.

        A half-written or unparseable ``spool.json`` is treated as absent —
        migration is idempotent, so re-running it is always safe — and a
        *newer* recorded layout fails loudly instead of being misread.
        """
        try:
            meta = json.loads(self._meta_path().read_text(encoding="utf-8"))
            layout = str(meta["layout"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            layout = None
        if layout == SPOOL_LAYOUT_VERSION:
            return
        if layout is not None and layout > SPOOL_LAYOUT_VERSION:
            raise SpoolError(
                f"spool {self.root} uses layout {layout!r}, newer than this "
                f"code's {SPOOL_LAYOUT_VERSION!r}; upgrade the code or use a "
                "fresh spool directory"
            )
        self._migrate_flat_layout()
        try:
            fsops.write_text(
                self._meta_path(), json.dumps({"layout": SPOOL_LAYOUT_VERSION})
            )
        except OSError:
            pass  # advisory: the next open simply re-runs the migration

    def _migrate_flat_layout(self) -> None:
        """Move flat (layout 1) entries into shards and rebuild the journal.

        Flat claims cannot keep their leases across the migration (their
        heartbeat files move), so they are conservatively returned to the
        queue; re-simulation is idempotent through the result cache.  Safe
        to run concurrently — every move is a rename race with one winner —
        and on a fresh or already-sharded spool it is a no-op.
        """
        for state in ("tasks", "done", "failed"):
            directory = self._state_dir(state)
            for name in fsops.scandir_names(directory):
                if not _is_spec_name(name) or not (directory / name).is_file():
                    continue
                task_id = name[: -len(".json")]
                self._move(directory / name, self._shard_path(state, task_id))
        claims = self._state_dir("claims")
        for name in fsops.scandir_names(claims):
            path = claims / name
            if not path.is_file():
                continue
            if name.endswith(_META_SUFFIX):
                fsops.unlink(path)
            elif _is_spec_name(name):
                task_id = name[: -len(".json")]
                self._move(path, self._shard_path("tasks", task_id))
        self._rebuild_journals()

    def _rebuild_journals(self) -> None:
        """Rewrite every shard journal from the done/failed directories."""
        shards = set(self._shards("done")) | set(self._shards("failed"))
        for shard in shards:
            lines = []
            for state, op in (("done", "done"), ("failed", "failed")):
                for name in self._shard_spec_names(state, shard):
                    record = {"op": op, "id": name[: -len(".json")]}
                    lines.append(json.dumps(record, separators=(",", ":")))
            try:
                fsops.write_text(
                    self.journal_path(shard), "".join(line + "\n" for line in lines)
                )
            except OSError:
                pass  # advisory

    # ------------------------------------------------------------ primitives
    def _move(self, src: Path, dst: Path, attempts: int = 4) -> bool:
        """Atomic rename with destination-parent creation and fault retry.

        Returns False when the source vanished first — a peer won the race
        — which every caller treats as "not mine", never as an error.
        ``FileNotFoundError`` is ambiguous: it also fires when the freshly
        created *destination parent* was renamed away between our ``mkdir``
        and ``rename`` (a claimer taking the shard we are handing specs back
        to), so the source is probed to tell the two apart — otherwise the
        spec would sit stranded in its batch directory until lease expiry.
        """
        for _ in range(attempts):
            try:
                fsops.mkdir(dst.parent)
                fsops.rename(src, dst)
                return True
            except FileNotFoundError:
                try:
                    if not os.path.lexists(src):
                        return False  # src gone: lost the race
                except OSError:
                    pass
                continue  # dst parent vanished mid-race: re-create and retry
            except OSError:
                continue  # transient (or injected) error: retry
        return False

    def _write(self, path: Path, text: str, attempts: int = 4) -> None:
        last: OSError | None = None
        for _ in range(attempts):
            try:
                fsops.mkdir(path.parent)
                fsops.write_text(path, text)
                return
            except OSError as exc:  # parent renamed away mid-claim, or injected
                last = exc
        raise SpoolError(f"cannot write {path}: {last}") from last

    def _journal(self, op: str, task_id: str) -> None:
        """Append one advisory event; journal loss degrades, never breaks."""
        try:
            append_record(self.journal_path(shard_of(task_id)), {"op": op, "id": task_id})
        except OSError:
            pass

    @staticmethod
    def _exists(path: Path) -> bool:
        """Existence probe that treats a transient stat failure as absent.

        Safe because no spool decision rests on existence alone: enqueue
        rewrites are idempotent (content-addressed atomic writes), claim
        and reclaim are settled by rename races, and done/failed probes are
        re-polled.  A flaky stat therefore costs a retry, never corrupts.
        """
        try:
            return fsops.exists(path)
        except OSError:
            return False

    # ------------------------------------------------------------ submitter side
    def _claimed_ids(self) -> set[str]:
        """Ids currently sitting in claim batches (O(batches) scans)."""
        claimed: set[str] = set()
        for batch_id in self._batch_ids():
            for name in fsops.scandir_names(self._batch_dir(batch_id)):
                if _is_spec_name(name):
                    claimed.add(name[: -len(".json")])
        return claimed

    def enqueue(self, spec: TaskSpec) -> bool:
        """Spool one task; returns False when it is already pending or claimed.

        A leftover ``done`` or ``failed`` marker for the same id is stale by
        construction — submitters only enqueue work whose results are missing
        from the cache — so it is cleared (with a ``requeue`` journal event)
        and the task queued again.
        """
        return self.enqueue_many([spec]) == 1

    def enqueue_many(self, specs: list[TaskSpec]) -> int:
        """Spool many tasks at once; returns how many were actually enqueued.

        Amortises the claimed-id scan over the whole batch, so a submitter
        enqueueing hundreds of specs costs O(batches) directory scans, not
        O(batches × specs).
        """
        claimed = self._claimed_ids() if specs else set()
        enqueued = 0
        for spec in specs:
            task_path = self._shard_path("tasks", spec.task_id)
            if self._exists(task_path) or spec.task_id in claimed:
                continue
            for stale_state in ("done", "failed"):
                stale = self._shard_path(stale_state, spec.task_id)
                try:
                    fsops.unlink(stale, missing_ok=False)
                except FileNotFoundError:
                    continue
                except OSError:
                    continue
                self._journal("requeue", spec.task_id)
            self._write(task_path, spec.encode())
            enqueued += 1
        return enqueued

    # ------------------------------------------------------------ worker side
    def claim(self, worker_id: str) -> TaskSpec | None:
        """Atomically claim one pending task (compat path over batches).

        Expired claims are reclaimed first, so a single surviving worker
        eventually drains a spool abandoned by crashed peers.  Workers that
        want the amortised one-rename-per-batch path call
        :meth:`claim_batch` directly.
        """
        self.reclaim_expired()
        batch = self.claim_batch(worker_id, limit=1)
        return batch.specs[0] if batch is not None else None

    def claim_batch(self, worker_id: str, *, limit: int | None = None) -> ClaimedBatch | None:
        """Claim up to ``limit`` tasks from one shard with a single rename.

        The whole shard directory is renamed into ``claims/<batch_id>/``
        (exactly one claimer wins), the shard is re-created for submitters,
        and any specs beyond ``limit`` are handed straight back so a hot
        shard still spreads across workers.  Corrupt spec files are moved
        to ``failed/`` instead of wedging the queue.  Returns ``None`` when
        no shard yielded a claimable task.
        """
        if limit is not None and limit <= 0:
            raise ConfigurationError("claim batch limit must be positive")
        shards = self._shards("tasks")
        if shards:  # rotate the probe order so workers spread across shards
            # (crc32, not hash(): str hashing is salted per process, and the
            # probe order must be deterministic for a given worker id)
            offset = zlib.crc32(worker_id.encode("utf-8")) % len(shards)
            shards = shards[offset:] + shards[:offset]
        for shard in shards:
            shard_dir = self._state_dir("tasks") / shard
            try:
                if not any(_is_spec_name(name) for name in fsops.scandir_names(shard_dir)):
                    continue
            except OSError:
                continue
            batch_id = f"{worker_id}-{uuid.uuid4().hex[:8]}"
            batch_dir = self._batch_dir(batch_id)
            if not self._move(shard_dir, batch_dir):
                continue  # another claimer won this shard; try the next
            try:
                fsops.mkdir(shard_dir)  # reopen the shard for submitters
            except OSError:
                pass  # submitters re-create shards on demand anyway
            batch = self._assemble_batch(batch_id, batch_dir, worker_id, limit)
            if batch is not None:
                return batch
        return None

    def _assemble_batch(
        self, batch_id: str, batch_dir: Path, worker_id: str, limit: int | None
    ) -> ClaimedBatch | None:
        names = sorted(name for name in fsops.scandir_names(batch_dir) if _is_spec_name(name))
        if limit is not None and len(names) > limit:
            for name in names[limit:]:  # hand the excess back to the shard
                task_id = name[: -len(".json")]
                self._move(batch_dir / name, self._shard_path("tasks", task_id))
            names = names[:limit]
        now = time.time()
        try:
            self._write(
                self._lease_path(batch_id),
                json.dumps(
                    {
                        "worker": worker_id,
                        "claimed_at": now,
                        "lease_ttl_s": self.lease_ttl_s,
                        "tasks": [name[: -len(".json")] for name in names],
                    }
                ),
            )
        except SpoolError:
            # Without a lease the batch would only expire via the directory
            # mtime fallback; hand everything back instead of running dark.
            for name in names:
                task_id = name[: -len(".json")]
                self._move(batch_dir / name, self._shard_path("tasks", task_id))
            self._remove_batch_dir(batch_id)
            return None
        specs: list[TaskSpec] = []
        for name in names:
            task_id = name[: -len(".json")]
            try:
                text = fsops.read_text(batch_dir / name)
            except OSError:
                # Unreadable right now (or reclaimed already): hand it back.
                self._move(batch_dir / name, self._shard_path("tasks", task_id))
                continue
            try:
                specs.append(TaskSpec.decode(text))
            except SpoolError as exc:
                self._quarantine(batch_id, task_id, f"corrupt spec: {exc}", worker_id)
        if not specs:
            self._remove_batch_dir(batch_id)
            return None
        for spec in specs:
            self._batches[spec.task_id] = batch_id
        return ClaimedBatch(batch_id=batch_id, specs=tuple(specs))

    def _find_batch(self, task_id: str) -> str | None:
        """The batch currently holding one claimed task (handle map first)."""
        batch_id = self._batches.get(task_id)
        if batch_id is not None and self._exists(self._batch_dir(batch_id) / f"{task_id}.json"):
            return batch_id
        for candidate in self._batch_ids():
            if self._exists(self._batch_dir(candidate) / f"{task_id}.json"):
                return candidate
        return None

    def _remove_batch_dir(self, batch_id: str) -> None:
        """Drop a batch directory once its last spec left (best effort)."""
        batch_dir = self._batch_dir(batch_id)
        remaining = [name for name in fsops.scandir_names(batch_dir) if _is_spec_name(name)]
        if remaining:
            return
        fsops.unlink(self._lease_path(batch_id))
        try:
            fsops.rmdir(batch_dir)
        except OSError:
            pass  # a racing ack/reclaim finishes the cleanup

    def heartbeat(self, task_id: str) -> None:
        """Refresh the lease of the batch holding one claimed task (missing
        claims are ignored: the task may have been reclaimed after a stall,
        and the reclaim wins)."""
        batch_id = self._batches.get(task_id) or self._find_batch(task_id)
        if batch_id is not None:
            self.heartbeat_batch(batch_id)

    def heartbeat_batch(self, batch_id: str) -> None:
        """Refresh one batch's lease directly (the worker's heartbeat thread)."""
        try:
            fsops.touch(self._lease_path(batch_id))
        except OSError:
            pass  # reclaimed, or a transient stall: lease expiry is the story

    def ack(self, task_id: str, *, worker_id: str = "") -> None:
        """Mark one claimed task complete (its results are in the cache)."""
        batch_id = self._find_batch(task_id)
        done_path = self._shard_path("done", task_id)
        if batch_id is None or not self._move(
            self._batch_dir(batch_id) / f"{task_id}.json", done_path
        ):
            raise SpoolError(
                f"cannot ack task {task_id!r}: no claim on file (lease expired "
                "and the task was reclaimed?)"
            )
        self._batches.pop(task_id, None)
        self._journal("done", task_id)
        if worker_id:
            try:
                payload = json.loads(done_path.read_text(encoding="utf-8"))
                payload["completed_by"] = worker_id
                payload["completed_at"] = time.time()
                fsops.write_text(done_path, json.dumps(payload))
            except (OSError, json.JSONDecodeError):
                pass  # the rename already recorded completion
        self._remove_batch_dir(batch_id)

    def fail(self, task_id: str, error: str, *, worker_id: str = "") -> None:
        """Record a task failure and drop its claim.

        The original spec is preserved inside the failure record, so the
        record is both the error report and enough to re-queue the task by
        re-submitting.  A failure reported for a claim the caller no longer
        holds (its lease expired mid-stall and a peer took the task back)
        is dropped silently: writing a record then would abort the
        submitter's batch while the peer's retry is live.
        """
        batch_id = self._find_batch(task_id)
        if batch_id is None:
            self._batches.pop(task_id, None)
            return  # reclaimed by a peer; its retry owns the outcome now
        self._quarantine(batch_id, task_id, error, worker_id)

    def _quarantine(self, batch_id: str, task_id: str, error: str, worker_id: str) -> None:
        claim_path = self._batch_dir(batch_id) / f"{task_id}.json"
        try:
            spec_text = claim_path.read_text(encoding="utf-8")
        except OSError:
            self._batches.pop(task_id, None)
            return  # reclaimed by a peer between finding and reading
        record = {
            "task_id": task_id,
            "worker": worker_id,
            "error": error,
            "failed_at": time.time(),
            "spec": spec_text,
        }
        try:
            self._write(self._shard_path("failed", task_id), json.dumps(record))
        except SpoolError:
            return  # leave the claim; lease expiry will retry the task
        fsops.unlink(claim_path)
        self._batches.pop(task_id, None)
        self._journal("failed", task_id)
        self._remove_batch_dir(batch_id)

    def release(self, task_id: str) -> None:
        """Return one claimed task to the queue untouched (graceful shutdown)."""
        batch_id = self._find_batch(task_id)
        if batch_id is None:
            self._batches.pop(task_id, None)
            return
        self._move(
            self._batch_dir(batch_id) / f"{task_id}.json",
            self._shard_path("tasks", task_id),
        )
        self._batches.pop(task_id, None)
        self._remove_batch_dir(batch_id)

    def release_batch(self, batch: ClaimedBatch) -> None:
        """Return every unfinished spec of one batch to the queue."""
        for spec in batch.specs:
            if self._exists(self._batch_dir(batch.batch_id) / f"{spec.task_id}.json"):
                self.release(spec.task_id)

    # ------------------------------------------------------------ recovery
    def reclaim_expired(self) -> list[str]:
        """Move tasks of expired claim batches back into their shards.

        Any participant (worker or submitter) may call this; the per-task
        rename races resolve to exactly one winner, so concurrent reclaim
        sweeps are safe.  A batch is judged against the TTL its *claimer*
        recorded in the lease file; a half-written or missing lease falls
        back to this spool's own TTL judged on the directory mtime, so an
        orphaned batch can never outlive its worker forever.
        """
        reclaimed: list[str] = []
        now = time.time()
        for batch_id in self._batch_ids():
            batch_dir = self._batch_dir(batch_id)
            ttl = self.lease_ttl_s
            try:
                lease = json.loads(self._lease_path(batch_id).read_text(encoding="utf-8"))
                ttl = float(lease["lease_ttl_s"])
                mtime = fsops.stat(self._lease_path(batch_id)).st_mtime
            except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
                try:  # half-written/absent lease: judge by the directory
                    mtime = fsops.stat(batch_dir).st_mtime
                except OSError:
                    continue
            if mtime > now - ttl:
                continue
            for name in fsops.scandir_names(batch_dir):
                if not _is_spec_name(name):
                    continue
                task_id = name[: -len(".json")]
                if self._move(batch_dir / name, self._shard_path("tasks", task_id)):
                    reclaimed.append(task_id)
            fsops.unlink(self._lease_path(batch_id))
            try:
                fsops.rmdir(batch_dir)
            except OSError:
                pass  # a racing sweep (or a late ack) finishes the cleanup
        return reclaimed

    # ------------------------------------------------------------ inspection
    def is_done(self, task_id: str) -> bool:
        """True when a completion marker exists for ``task_id`` (O(1))."""
        return self._exists(self._shard_path("done", task_id))

    def has_failed(self, task_id: str) -> bool:
        """True when a failure record exists for ``task_id`` (O(1))."""
        return self._exists(self._shard_path("failed", task_id))

    def failure(self, task_id: str) -> str | None:
        """The recorded error of one failed task, or ``None``."""
        try:
            record = json.loads(
                self._shard_path("failed", task_id).read_text(encoding="utf-8")
            )
            return str(record.get("error", "unknown error"))
        except (OSError, json.JSONDecodeError):
            return None

    def failed_ids(self) -> list[str]:
        """Ids of every task with a failure record, sorted."""
        ids: list[str] = []
        for shard in self._shards("failed"):
            ids.extend(
                name[: -len(".json")] for name in self._shard_spec_names("failed", shard)
            )
        return sorted(ids)

    def tail(self, task_ids: list[str] | None = None, *, from_start: bool = False) -> SpoolTail:
        """An incremental journal reader over the shards of ``task_ids``
        (or every shard currently indexed when omitted)."""
        if task_ids is None:
            shards = {
                name[: -len(".jsonl")]
                for name in fsops.scandir_names(self._state_dir("index"))
                if name.endswith(".jsonl")
            }
        else:
            shards = {shard_of(task_id) for task_id in task_ids}
        return SpoolTail(self, shards, from_start=from_start)

    # ------------------------------------------------------------ index audit
    def index_snapshot(self, shard: str) -> dict[str, set[str]]:
        """Folded journal state of one shard: the sets of done/failed ids.

        ``requeue`` events cancel earlier ``done``/``failed`` ones, and
        duplicate appends (a racing migration) fold away — this is the
        incrementally-maintained view the property suite compares against
        :meth:`rebuild_index`.
        """
        done: set[str] = set()
        failed: set[str] = set()
        records, _ = tail_records(self.journal_path(shard), 0)
        for record in records:
            op, task_id = record.get("op"), record.get("id")
            if not isinstance(task_id, str):
                continue
            if op == "done":
                done.add(task_id)
                failed.discard(task_id)
            elif op == "failed":
                failed.add(task_id)
                done.discard(task_id)
            elif op == "requeue":
                done.discard(task_id)
                failed.discard(task_id)
        return {"done": done, "failed": failed}

    def rebuild_index(self, shard: str) -> dict[str, set[str]]:
        """Ground truth of one shard rebuilt from the directories."""
        return {
            "done": {
                name[: -len(".json")] for name in self._shard_spec_names("done", shard)
            },
            "failed": {
                name[: -len(".json")] for name in self._shard_spec_names("failed", shard)
            },
        }

    def idle(self) -> bool:
        """True when no task is pending or claimed (cheap drained check:
        never lists ``done``/``failed``, so polling it stays O(shards) even
        on a spool with a long completion history)."""
        for shard in self._shards("tasks"):
            if self._shard_spec_names("tasks", shard):
                return False
        for batch_id in self._batch_ids():
            for name in fsops.scandir_names(self._batch_dir(batch_id)):
                if _is_spec_name(name):
                    return False
        return True

    def status(self) -> SpoolStatus:
        """Task counts per state."""
        pending = sum(
            len(self._shard_spec_names("tasks", shard)) for shard in self._shards("tasks")
        )
        claimed = sum(
            1
            for batch_id in self._batch_ids()
            for name in fsops.scandir_names(self._batch_dir(batch_id))
            if _is_spec_name(name)
        )
        done = sum(
            len(self._shard_spec_names("done", shard)) for shard in self._shards("done")
        )
        failed = sum(
            len(self._shard_spec_names("failed", shard)) for shard in self._shards("failed")
        )
        return SpoolStatus(pending=pending, claimed=claimed, done=done, failed=failed)

    def __repr__(self) -> str:
        return f"WorkSpool(root={str(self.root)!r}, lease_ttl_s={self.lease_ttl_s}, {self.status().describe()})"

"""repro.distributed — broker-less distributed campaign execution.

Campaign cells are content-addressed (``config_digest`` + strategy + seed),
which makes distribution almost free: a *work spool* — a plain directory of
JSON task specs — is the whole coordination layer.  No broker, no sockets,
no database; any filesystem shared between machines (NFS, a bind mount, or
just ``localhost``) is a cluster.

* :class:`~repro.distributed.spool.WorkSpool` — the filesystem work queue,
  sharded by config-digest prefix for fleet scale.  Enqueue writes a spec
  into its shard of ``tasks/``; claiming renames a whole shard directory
  into ``claims/<batch_id>/`` (one rename claims a batch; exactly one
  claimer wins); the batch's lease-file mtime is the worker's heartbeat,
  and batches whose lease expired are reclaimed back into their shards so
  crashed workers never strand work.  Per-shard append-only journals under
  ``index/`` let submitters poll progress in O(shards touched).
* :class:`~repro.distributed.tasks.TaskSpec` — one spooled unit of work: a
  picklable per-seed task plus the ``(digest, strategy, seeds)`` triple it
  covers, content-addressed so re-submitting after an interruption is
  idempotent.
* :class:`~repro.distributed.worker.SpoolWorker` — the ``worker`` CLI
  daemon's engine: claim -> simulate each seed into the shared
  :class:`~repro.exec.cache.ResultCache` -> ack, with a background
  heartbeat thread while a task is in flight.
* :class:`~repro.distributed.submit.SpoolBackend` — the ``"spool"``
  execution backend of :class:`~repro.exec.runner.ParallelRunner`: the
  submitter enqueues only cache-miss seeds, then polls the cache until
  workers deliver them; results are bit-identical to the serial backend
  because the cache round-trip is ``repr``-exact.

The result cache is the delivery channel, so the submitter is naturally
resumable: interrupt a campaign, re-run it, and already-delivered seeds are
cache hits while in-flight tasks keep their spool entries.
"""

from __future__ import annotations

from repro.distributed.metrics import WorkerMetricsServer
from repro.distributed.spool import ClaimedBatch, SpoolStatus, WorkSpool
from repro.distributed.submit import SpoolBackend
from repro.distributed.tasks import TaskSpec, make_task_specs, shard_of
from repro.distributed.worker import SpoolWorker, WorkerStats

__all__ = [
    "ClaimedBatch",
    "SpoolBackend",
    "SpoolStatus",
    "SpoolWorker",
    "TaskSpec",
    "WorkSpool",
    "WorkerMetricsServer",
    "WorkerStats",
    "make_task_specs",
    "shard_of",
]

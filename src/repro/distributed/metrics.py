"""Worker health/metrics HTTP endpoint (``coopckpt worker --metrics-port``).

A tiny stdlib-only HTTP server on a background thread, exposing a running
:class:`~repro.distributed.worker.SpoolWorker`:

* ``GET /metrics`` — the worker's :meth:`~SpoolWorker.metrics` snapshot as
  JSON (claims/s, cache-hit rate, lease reclaims, heartbeat age, in-flight
  batch);
* ``GET /healthz`` — ``{"ok": true}`` with status 200 while the worker
  thread is alive (a liveness probe for supervisors).

The server never touches the spool or cache itself — it only reads the
worker's in-memory counters, so scraping it is free no matter how loaded
the shared filesystem is.  Bind to port 0 to let the OS pick (the chosen
port is in :attr:`WorkerMetricsServer.port`), which is what tests do.
"""

from __future__ import annotations

import json
import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["WorkerMetricsServer"]


class WorkerMetricsServer:
    """Serve one worker's metrics on ``http://<host>:<port>``."""

    def __init__(
        self,
        metrics: Callable[[], dict],
        *,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                if self.path.split("?", 1)[0] in ("/metrics", "/", "/healthz"):
                    if self.path.startswith("/healthz"):
                        payload = {"ok": True}
                    else:
                        try:
                            payload = server._metrics()
                        except Exception as exc:  # never take the scrape down
                            payload = {"error": repr(exc)}
                    body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_error(404, "unknown path (try /metrics or /healthz)")

            def log_message(self, format: str, *args: object) -> None:
                pass  # scrapes must not spam the worker's stdout

        self._metrics = metrics
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"metrics-:{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "WorkerMetricsServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""The spool worker: claim -> simulate -> cache -> ack, forever.

:class:`SpoolWorker` is the engine behind the ``coopckpt worker`` CLI
daemon.  Each loop iteration claims one task spec from the shared
:class:`~repro.distributed.spool.WorkSpool`, simulates its seeds, writes
every value into the shared :class:`~repro.exec.cache.ResultCache` (the
delivery channel the submitter polls) and acks the task.  While a task is
in flight a background thread heartbeats its lease, so long simulations
never look abandoned; if the worker dies anyway, the lease expires and a
peer reclaims the task.

Workers are fully independent: run any number of them against the same
spool/cache pair, on one machine or many, start them before or after the
submitter, kill and restart them freely.  Task failures are recorded in
the spool (``failed/<id>.json``) and never crash the worker; Ctrl-C
releases the in-flight task back to the queue before exiting.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.distributed.spool import WorkSpool
from repro.distributed.tasks import TaskSpec
from repro.errors import SpoolError
from repro.exec.cache import ResultCache

__all__ = ["SpoolWorker", "WorkerStats", "default_worker_id"]


def default_worker_id() -> str:
    """``<host>-<pid>``: unique enough to attribute claims in a shared spool."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerStats:
    """Cumulative counters of one worker's lifetime."""

    tasks_done: int = 0
    tasks_failed: int = 0
    seeds_simulated: int = 0
    polls: int = 0

    def describe(self) -> str:
        return (
            f"{self.tasks_done} task(s) done, {self.seeds_simulated} seed(s) "
            f"simulated, {self.tasks_failed} failure(s)"
        )


@dataclass
class SpoolWorker:
    """One resumable spool-draining worker.

    Attributes
    ----------
    spool / cache:
        The shared work spool and result cache (both typically on a shared
        filesystem).
    worker_id:
        Identity recorded in claim metadata and completion markers.
    poll_interval_s:
        Sleep between claim attempts when the spool has no pending work.
    max_tasks:
        Stop after completing this many tasks (``None`` = unbounded);
        useful for tests and for rolling worker restarts.
    stop_event:
        Optional external off-switch checked between tasks; lets an
        embedding process (tests, a supervisor thread) stop the loop
        without signals.
    log:
        Optional sink for one-line progress messages (e.g. ``print``).
    """

    spool: WorkSpool
    cache: ResultCache
    worker_id: str = field(default_factory=default_worker_id)
    poll_interval_s: float = 0.5
    max_tasks: int | None = None
    stop_event: threading.Event | None = None
    log: Callable[[str], None] | None = None
    stats: WorkerStats = field(default_factory=WorkerStats)

    # ------------------------------------------------------------ logging
    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(f"[{self.worker_id}] {message}")

    def _stopped(self) -> bool:
        return self.stop_event is not None and self.stop_event.is_set()

    # ------------------------------------------------------------ main loop
    def run(self, *, drain: bool = False, idle_timeout_s: float | None = None) -> WorkerStats:
        """Process tasks until stopped.

        ``drain=True`` exits once the spool is fully drained (no pending or
        claimed tasks) — the mode CI and tests use.  ``idle_timeout_s`` exits
        after that long without claiming anything, whether or not peers still
        hold claims.  With neither, the worker runs until ``stop_event`` (or
        ``max_tasks``/Ctrl-C).
        """
        idle_since: float | None = None
        while not self._stopped():
            if self.max_tasks is not None and self.stats.tasks_done >= self.max_tasks:
                break
            spec = self.spool.claim(self.worker_id)
            if spec is None:
                self.stats.polls += 1
                now = time.time()
                if drain and self.spool.status().drained:
                    break
                if idle_timeout_s is not None:
                    if idle_since is None:
                        idle_since = now
                    elif now - idle_since >= idle_timeout_s:
                        break
                time.sleep(self.poll_interval_s)
                continue
            idle_since = None
            try:
                self.process(spec)
            except KeyboardInterrupt:
                self.spool.release(spec.task_id)
                self._say(f"interrupted; released task {spec.task_id}")
                raise
        self._say(f"exiting: {self.stats.describe()}")
        return self.stats

    # ------------------------------------------------------------ one task
    def process(self, spec: TaskSpec) -> bool:
        """Simulate one claimed task; returns True on success.

        Every computed value is written to the cache *before* the ack, so a
        crash after N seeds loses at most the claim (reclaimed by a peer
        after lease expiry), never a result — and the reclaiming worker
        finds the first N seeds already cached.
        """
        self._say(f"claimed {spec.task_id} ({spec.label or spec.strategy}, {len(spec.seeds)} seed(s))")
        heartbeat_stop = threading.Event()
        interval = max(0.05, self.spool.lease_ttl_s / 4.0)

        def _beat() -> None:
            while not heartbeat_stop.wait(interval):
                self.spool.heartbeat(spec.task_id)

        heartbeat = threading.Thread(target=_beat, name=f"heartbeat-{spec.task_id}", daemon=True)
        heartbeat.start()
        try:
            for seed in spec.seeds:
                if self.cache.probe(spec.digest, spec.strategy, seed) is not None:
                    continue  # a previous (crashed) attempt already delivered it
                value = float(spec.task(seed))
                self.cache.put(spec.digest, spec.strategy, seed, value)
                self.stats.seeds_simulated += 1
        except MemoryError:
            raise
        except Exception as exc:
            # Only regular task failures become failure records.  Worker
            # *death* (KeyboardInterrupt, SystemExit from a signal handler,
            # MemoryError — re-raised above, since it *is* an Exception)
            # must propagate instead: the lease then expires and a peer
            # retries the task, which is the documented crash story — a
            # failure record would abort the whole batch.
            self.stats.tasks_failed += 1
            self.spool.fail(
                spec.task_id,
                "".join(traceback.format_exception(type(exc), exc, exc.__traceback__)),
                worker_id=self.worker_id,
            )
            self._say(f"task {spec.task_id} failed: {exc!r}")
            return False
        finally:
            heartbeat_stop.set()
            heartbeat.join()
        try:
            self.spool.ack(spec.task_id, worker_id=self.worker_id)
        except SpoolError:
            # The lease expired mid-task and a peer reclaimed it.  Harmless:
            # every value is already in the cache, so the peer's re-run will
            # be all cache hits and its ack will stand.
            self._say(f"task {spec.task_id} was reclaimed before ack (results cached)")
        self.stats.tasks_done += 1
        self._say(f"done {spec.task_id}")
        return True

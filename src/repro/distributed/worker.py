"""The spool worker: claim a batch -> simulate -> cache -> ack, forever.

:class:`SpoolWorker` is the engine behind the ``coopckpt worker`` CLI
daemon.  Each loop iteration claims a *batch* of task specs from the shared
:class:`~repro.distributed.spool.WorkSpool` (one directory rename claims up
to ``batch_size`` tasks from a shard), simulates their seeds, writes every
value into the shared :class:`~repro.exec.cache.ResultCache` (the delivery
channel the submitter polls) and acks each task.  While a batch is in
flight a background thread heartbeats its lease, so long simulations never
look abandoned; if the worker dies anyway, the lease expires and a peer
reclaims the batch.

Workers are fully independent: run any number of them against the same
spool/cache pair, on one machine or many, start them before or after the
submitter, kill and restart them freely.  Task failures are recorded in
the spool (``failed/<shard>/<id>.json``) and never crash the worker;
Ctrl-C releases the unfinished remainder of the batch before exiting.

Observability: :meth:`SpoolWorker.metrics` returns a JSON-ready snapshot
(claims/s, cache-hit rate, lease reclaims, heartbeat age, in-flight batch)
— the payload served by ``coopckpt worker --metrics-port`` — and the
optional ``event_log`` sink receives one structured dict per worker event
for JSON logging.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.distributed.spool import ClaimedBatch, WorkSpool
from repro.distributed.tasks import TaskSpec
from repro.errors import SpoolError
from repro.exec.cache import ResultCache

__all__ = ["SpoolWorker", "WorkerStats", "default_worker_id"]


def default_worker_id() -> str:
    """``<host>-<pid>``: unique enough to attribute claims in a shared spool."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerStats:
    """Cumulative counters of one worker's lifetime."""

    tasks_done: int = 0
    tasks_failed: int = 0
    seeds_simulated: int = 0
    polls: int = 0
    batches_claimed: int = 0
    cache_hits: int = 0
    lease_reclaims: int = 0

    def describe(self) -> str:
        return (
            f"{self.tasks_done} task(s) done, {self.seeds_simulated} seed(s) "
            f"simulated, {self.tasks_failed} failure(s)"
        )


@dataclass
class SpoolWorker:
    """One resumable spool-draining worker.

    Attributes
    ----------
    spool / cache:
        The shared work spool and result store (both typically on a shared
        filesystem).  Any :class:`~repro.store.ResultStore` works — the
        worker only calls ``probe`` and ``put`` — so results can
        be delivered through the classic directory cache or a SQLite store
        (``coopckpt worker --store sqlite``).
    worker_id:
        Identity recorded in claim metadata and completion markers.
    poll_interval_s:
        Sleep between claim attempts when the spool has no pending work.
    batch_size:
        Upper bound on tasks claimed per shard rename; a claimed shard's
        excess is handed straight back, so larger batches amortise renames
        without starving peers.
    max_tasks:
        Stop after completing this many tasks (``None`` = unbounded);
        useful for tests and for rolling worker restarts.
    stop_event:
        Optional external off-switch checked between tasks; lets an
        embedding process (tests, a supervisor thread) stop the loop
        without signals.
    log:
        Optional sink for one-line progress messages (e.g. ``print``).
    event_log:
        Optional sink for structured events: one dict per message with
        ``ts``/``worker``/``event`` keys plus event-specific fields (the
        ``--log-json`` CLI mode serialises these as JSON lines).
    """

    spool: WorkSpool
    cache: ResultCache  # duck-typed: any ResultStore satisfies the calls used
    worker_id: str = field(default_factory=default_worker_id)
    poll_interval_s: float = 0.5
    batch_size: int = 8
    max_tasks: int | None = None
    stop_event: threading.Event | None = None
    log: Callable[[str], None] | None = None
    event_log: Callable[[dict], None] | None = None
    stats: WorkerStats = field(default_factory=WorkerStats)

    def __post_init__(self) -> None:
        self._started_at = time.time()
        self._last_beat: float | None = None
        self._in_flight: dict | None = None

    # ------------------------------------------------------------ logging
    def _say(self, message: str, *, event: str = "info", **fields: object) -> None:
        if self.log is not None:
            self.log(f"[{self.worker_id}] {message}")
        if self.event_log is not None:
            self.event_log(
                {
                    "ts": time.time(),
                    "worker": self.worker_id,
                    "event": event,
                    "msg": message,
                    **fields,
                }
            )

    def _stopped(self) -> bool:
        return self.stop_event is not None and self.stop_event.is_set()

    # ------------------------------------------------------------ metrics
    def metrics(self) -> dict:
        """JSON-ready observability snapshot (the ``--metrics-port`` payload).

        Safe to call from another thread while the worker runs: every field
        is read from monotonic counters or atomically swapped references.
        """
        now = time.time()
        uptime = max(now - self._started_at, 1e-9)
        stats = self.stats
        probes = stats.cache_hits + stats.seeds_simulated
        in_flight = self._in_flight
        return {
            "worker_id": self.worker_id,
            "uptime_s": round(uptime, 3),
            "tasks_done": stats.tasks_done,
            "tasks_failed": stats.tasks_failed,
            "seeds_simulated": stats.seeds_simulated,
            "batches_claimed": stats.batches_claimed,
            "claims_per_s": round(stats.batches_claimed / uptime, 6),
            "tasks_per_s": round(stats.tasks_done / uptime, 6),
            "cache_hits": stats.cache_hits,
            "cache_hit_rate": round(stats.cache_hits / probes, 6) if probes else 0.0,
            "lease_reclaims": stats.lease_reclaims,
            "polls": stats.polls,
            "in_flight_batch": dict(in_flight) if in_flight else None,
            "heartbeat_age_s": (
                round(now - self._last_beat, 3) if self._last_beat is not None else None
            ),
        }

    # ------------------------------------------------------------ main loop
    def run(self, *, drain: bool = False, idle_timeout_s: float | None = None) -> WorkerStats:
        """Process tasks until stopped.

        ``drain=True`` exits once the spool is fully drained (no pending or
        claimed tasks) — the mode CI and tests use.  ``idle_timeout_s`` exits
        after that long without claiming anything, whether or not peers still
        hold claims.  With neither, the worker runs until ``stop_event`` (or
        ``max_tasks``/Ctrl-C).
        """
        idle_since: float | None = None
        while not self._stopped():
            if self.max_tasks is not None and self.stats.tasks_done >= self.max_tasks:
                break
            self.stats.lease_reclaims += len(self.spool.reclaim_expired())
            limit = self.batch_size
            if self.max_tasks is not None:
                limit = min(limit, max(1, self.max_tasks - self.stats.tasks_done))
            batch = self.spool.claim_batch(self.worker_id, limit=limit)
            if batch is None:
                self.stats.polls += 1
                now = time.time()
                if drain and self.spool.idle():
                    break
                if idle_timeout_s is not None:
                    if idle_since is None:
                        idle_since = now
                    elif now - idle_since >= idle_timeout_s:
                        break
                time.sleep(self.poll_interval_s)
                continue
            idle_since = None
            self.process_batch(batch)
        self._say(f"exiting: {self.stats.describe()}", event="exit")
        return self.stats

    # ------------------------------------------------------------ one batch
    def process_batch(self, batch: ClaimedBatch) -> int:
        """Simulate one claimed batch; returns how many tasks succeeded.

        One background thread heartbeats the whole batch's lease, so the
        per-task lease traffic of the flat layout collapses into one
        ``utime`` per interval regardless of batch size.  On interruption
        the unfinished remainder is released back to the queue.
        """
        self.stats.batches_claimed += 1
        self._in_flight = {
            "batch_id": batch.batch_id,
            "tasks": len(batch.specs),
            "remaining": len(batch.specs),
        }
        self._say(
            f"claimed batch {batch.batch_id} ({len(batch.specs)} task(s))",
            event="claim",
            batch_id=batch.batch_id,
            tasks=len(batch.specs),
        )
        heartbeat_stop = threading.Event()
        interval = max(0.05, self.spool.lease_ttl_s / 4.0)

        def _beat() -> None:
            self._last_beat = time.time()
            while not heartbeat_stop.wait(interval):
                self.spool.heartbeat_batch(batch.batch_id)
                self._last_beat = time.time()

        heartbeat = threading.Thread(
            target=_beat, name=f"heartbeat-{batch.batch_id}", daemon=True
        )
        heartbeat.start()
        succeeded = 0
        completed = 0
        try:
            for spec in batch.specs:
                if self._stopped() or (
                    self.max_tasks is not None
                    and self.stats.tasks_done >= self.max_tasks
                ):
                    break
                if self._execute(spec):
                    succeeded += 1
                completed += 1
                if self._in_flight is not None:
                    self._in_flight = {
                        **self._in_flight,
                        "remaining": len(batch.specs) - completed,
                    }
        except KeyboardInterrupt:
            self.spool.release_batch(batch)
            self._say(
                f"interrupted; released batch {batch.batch_id}",
                event="release",
                batch_id=batch.batch_id,
            )
            raise
        finally:
            heartbeat_stop.set()
            heartbeat.join()
            self._in_flight = None
        if completed < len(batch.specs):  # stopped early: hand the rest back
            self.spool.release_batch(batch)
        return succeeded

    # ------------------------------------------------------------ one task
    def process(self, spec: TaskSpec) -> bool:
        """Simulate one claimed task with its own heartbeat; True on success.

        Compatibility path for callers that claimed a single task via
        :meth:`WorkSpool.claim`; the main loop uses :meth:`process_batch`.
        """
        heartbeat_stop = threading.Event()
        interval = max(0.05, self.spool.lease_ttl_s / 4.0)

        def _beat() -> None:
            while not heartbeat_stop.wait(interval):
                self.spool.heartbeat(spec.task_id)
                self._last_beat = time.time()

        heartbeat = threading.Thread(target=_beat, name=f"heartbeat-{spec.task_id}", daemon=True)
        heartbeat.start()
        try:
            return self._execute(spec)
        finally:
            heartbeat_stop.set()
            heartbeat.join()

    def _execute(self, spec: TaskSpec) -> bool:
        """Simulate one task's seeds into the cache, then ack (or fail).

        Every computed value is written to the cache *before* the ack, so a
        crash after N seeds loses at most the claim (reclaimed by a peer
        after lease expiry), never a result — and the reclaiming worker
        finds the first N seeds already cached.
        """
        self._say(
            f"claimed {spec.task_id} ({spec.label or spec.strategy}, {len(spec.seeds)} seed(s))",
            event="task",
            task_id=spec.task_id,
            seeds=len(spec.seeds),
        )
        try:
            for seed in spec.seeds:
                if self.cache.probe(spec.digest, spec.strategy, seed) is not None:
                    # A previous (crashed) attempt already delivered it.
                    self.stats.cache_hits += 1
                    continue
                value = float(spec.task(seed))
                self.cache.put(spec.digest, spec.strategy, seed, value)
                self.stats.seeds_simulated += 1
        except MemoryError:
            raise
        except Exception as exc:
            # Only regular task failures become failure records.  Worker
            # *death* (KeyboardInterrupt, SystemExit from a signal handler,
            # MemoryError — re-raised above, since it *is* an Exception)
            # must propagate instead: the lease then expires and a peer
            # retries the task, which is the documented crash story — a
            # failure record would abort the whole batch.
            self.stats.tasks_failed += 1
            self.spool.fail(
                spec.task_id,
                "".join(traceback.format_exception(type(exc), exc, exc.__traceback__)),
                worker_id=self.worker_id,
            )
            self._say(
                f"task {spec.task_id} failed: {exc!r}",
                event="fail",
                task_id=spec.task_id,
            )
            return False
        try:
            self.spool.ack(spec.task_id, worker_id=self.worker_id)
        except SpoolError:
            # The lease expired mid-task and a peer reclaimed it.  Harmless:
            # every value is already in the cache, so the peer's re-run will
            # be all cache hits and its ack will stand.
            self._say(
                f"task {spec.task_id} was reclaimed before ack (results cached)",
                event="reclaimed",
                task_id=spec.task_id,
            )
        self.stats.tasks_done += 1
        self._say(f"done {spec.task_id}", event="done", task_id=spec.task_id)
        return True

"""Filesystem operations of the work spool, routed through one choke point.

Every filesystem side effect the spool performs — renames, stats, scans,
writes, journal appends — goes through this module instead of calling
:mod:`os` directly.  That buys two things:

* **Fault injection.**  Tests install a hook (:func:`install_fault_hook`)
  that observes ``(op, path)`` *before* the real call and may raise an
  :class:`OSError` (a transient filesystem error), sleep (a loaded parallel
  filesystem), or raise ``SystemExit`` (sudden worker death at exactly that
  point).  The fault-injection suite uses this to prove the spool's
  claim/lease contracts hold under failure, and the saturation benchmark
  uses delay mode to model PFS latency.
* **Accounting.**  The same hook point counts operations, which is how the
  scale tests demonstrate the sharded layout's O(shards-touched) bounds.

Production behaviour is a straight pass-through costing one ``None`` check
per call.  Setting ``REPRO_SPOOL_FAULT_RATE`` (a probability) arms a seeded
:class:`FaultInjector` at import time — CI's saturation-smoke job runs
workers this way — optionally tuned by ``REPRO_SPOOL_FAULT_OPS`` (comma
list), ``REPRO_SPOOL_FAULT_DELAY_S`` and ``REPRO_SPOOL_FAULT_SEED``.  The
environment injector only targets *retry-safe* operations by default
(``rename``/``stat``/``utime``/``scandir``), which the spool treats as lost
races or transient stalls rather than errors.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.exec.cache import atomic_write_text

__all__ = [
    "FaultInjector",
    "OpCounter",
    "fault_hook",
    "install_fault_hook",
    "append_text",
    "exists",
    "mkdir",
    "read_text",
    "rename",
    "rmdir",
    "scandir_names",
    "stat",
    "touch",
    "unlink",
    "write_text",
]

#: Operations the environment-armed injector targets: each is a point the
#: spool already treats as a lost race or a transient stall.
RETRY_SAFE_OPS = frozenset({"rename", "stat", "utime", "scandir"})

_hook: Callable[[str, str], None] | None = None


def install_fault_hook(hook: Callable[[str, str], None] | None) -> Callable[[str, str], None] | None:
    """Install (or with ``None`` clear) the op hook; returns the previous one."""
    global _hook
    previous = _hook
    _hook = hook
    return previous


def fault_hook() -> Callable[[str, str], None] | None:
    """The currently installed hook (``None`` when disarmed)."""
    return _hook


def _check(op: str, path: os.PathLike[str] | str) -> None:
    if _hook is not None:
        _hook(op, str(path))


@dataclass
class FaultInjector:
    """A seeded hook that fails and/or delays chosen operations.

    ``rate`` is the per-operation failure probability (0 disables
    failures); ``delay_s`` sleeps before every targeted operation (models a
    loaded shared filesystem); ``ops`` restricts both to an operation set.
    Deterministic for a given seed and call sequence, and safe to share
    between threads.
    """

    rate: float = 0.0
    delay_s: float = 0.0
    ops: frozenset[str] = RETRY_SAFE_OPS
    seed: int | None = None
    injected: int = field(default=0, init=False)
    _rng: random.Random = field(init=False, repr=False)
    _lock: threading.Lock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.ops = frozenset(self.ops)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    def __call__(self, op: str, path: str) -> None:
        if op not in self.ops:
            return
        if self.delay_s > 0.0:
            time.sleep(self.delay_s)
        if self.rate > 0.0:
            with self._lock:
                fire = self._rng.random() < self.rate
                if fire:
                    self.injected += 1
            if fire:
                raise OSError(errno.EIO, f"injected fault: {op} {path}")


@dataclass
class OpCounter:
    """A hook that counts operations (optionally chained to another hook)."""

    chain: Callable[[str, str], None] | None = None
    counts: dict[str, int] = field(default_factory=dict)

    def __call__(self, op: str, path: str) -> None:
        self.counts[op] = self.counts.get(op, 0) + 1
        if self.chain is not None:
            self.chain(op, path)

    def total(self, ops: Iterable[str] | None = None) -> int:
        if ops is None:
            return sum(self.counts.values())
        return sum(self.counts.get(op, 0) for op in ops)


def _arm_from_env() -> None:
    raw_rate = os.environ.get("REPRO_SPOOL_FAULT_RATE")
    raw_delay = os.environ.get("REPRO_SPOOL_FAULT_DELAY_S")
    if not raw_rate and not raw_delay:
        return
    try:
        rate = float(raw_rate) if raw_rate else 0.0
        delay = float(raw_delay) if raw_delay else 0.0
    except ValueError:
        return  # a malformed knob must never take the spool down
    ops = RETRY_SAFE_OPS
    raw_ops = os.environ.get("REPRO_SPOOL_FAULT_OPS")
    if raw_ops:
        ops = frozenset(name.strip() for name in raw_ops.split(",") if name.strip())
    raw_seed = os.environ.get("REPRO_SPOOL_FAULT_SEED")
    seed = int(raw_seed) if raw_seed and raw_seed.lstrip("-").isdigit() else None
    install_fault_hook(FaultInjector(rate=rate, delay_s=delay, ops=ops, seed=seed))


_arm_from_env()


# --------------------------------------------------------------- operations
def rename(src: os.PathLike[str] | str, dst: os.PathLike[str] | str) -> None:
    _check("rename", src)
    os.rename(src, dst)


def stat(path: os.PathLike[str] | str) -> os.stat_result:
    _check("stat", path)
    return os.stat(path)


def exists(path: os.PathLike[str] | str) -> bool:
    _check("stat", path)
    return os.path.exists(path)


def touch(path: os.PathLike[str] | str) -> None:
    """Refresh a file's mtime to now (the spool's heartbeat primitive)."""
    _check("utime", path)
    now = time.time()
    os.utime(path, (now, now))


def scandir_names(path: os.PathLike[str] | str) -> list[str]:
    """Entry names of one directory ([] when it does not exist)."""
    _check("scandir", path)
    try:
        with os.scandir(path) as entries:
            return [entry.name for entry in entries]
    except FileNotFoundError:
        return []


def mkdir(path: os.PathLike[str] | str) -> None:
    _check("mkdir", path)
    os.makedirs(path, exist_ok=True)


def rmdir(path: os.PathLike[str] | str) -> None:
    _check("rmdir", path)
    os.rmdir(path)


def unlink(path: os.PathLike[str] | str, *, missing_ok: bool = True) -> None:
    _check("unlink", path)
    try:
        os.unlink(path)
    except FileNotFoundError:
        if not missing_ok:
            raise


def read_text(path: os.PathLike[str] | str) -> str:
    _check("read", path)
    return Path(path).read_text(encoding="utf-8")


def write_text(path: os.PathLike[str] | str, text: str) -> None:
    """Atomic write (temp file + replace), shared with the result cache."""
    _check("write", path)
    atomic_write_text(Path(path), text)


def append_text(path: os.PathLike[str] | str, text: str) -> None:
    """One buffered append (journal lines; whole-line atomic on POSIX)."""
    _check("append", path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text)

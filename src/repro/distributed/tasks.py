"""Spooled task specifications.

A :class:`TaskSpec` is one unit of distributed work: a picklable per-seed
task (usually a :class:`~repro.exec.runner.WasteRatioTask`) together with
the ``(config digest, strategy)`` cache key and the concrete seeds to
simulate.  ``strategy`` is the *canonical strategy-spec string* (see
:mod:`repro.iosched.spec`) — parameterized and custom strategies cross the
spool as plain JSON text, and a worker resolves them through its own
strategy registry (custom kinds must be registered in the worker process
too, i.e. the registering module imported).  Specs are *content-addressed*: the task id is a digest of the
``(digest version, config digest, strategy, seeds)`` tuple, so re-submitting
the same work after an interruption maps onto the same spool file instead of
duplicating it, mirroring how the result cache deduplicates values.

On disk a spec is a small JSON document.  The callable itself is pickled
and base64-embedded — workers run the same code base, exactly like the
``"process"`` backend's pool workers, so pickling is the established
transport for tasks; everything needed for observability (digest, strategy,
seeds, label) stays as plain JSON next to it.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import SpoolError
from repro.exec.digest import DIGEST_VERSION

__all__ = [
    "SPOOL_FORMAT_VERSION",
    "SHARD_WIDTH",
    "TaskSpec",
    "make_task_specs",
    "shard_of",
    "task_id_for",
]

#: Version of the on-disk task-spec format; bump on incompatible changes so
#: old spool entries are rejected loudly instead of misinterpreted.
SPOOL_FORMAT_VERSION = "1"

#: Hex characters of a task id that name its directory shard.
SHARD_WIDTH = 2

_HEX_DIGITS = frozenset("0123456789abcdef")


def shard_of(task_id: str) -> str:
    """Directory shard of one task id: its config-digest prefix.

    Task ids start with the first 8 hex characters of the config digest
    (:func:`task_id_for`), so sharding by the first :data:`SHARD_WIDTH` of
    them groups one campaign cell's tasks into one shard — which is what
    makes batched claiming grab a whole cell in a single rename.  The
    function is pure (no process state, no randomness), so every submitter,
    worker and sweeper on every machine derives the identical shard for a
    task id.  Foreign ids that do not begin with hex characters fall back
    to a hash so the mapping stays total and deterministic.
    """
    head = task_id[:SHARD_WIDTH].lower()
    if len(head) == SHARD_WIDTH and all(char in _HEX_DIGITS for char in head):
        return head
    return hashlib.sha256(task_id.encode("utf-8")).hexdigest()[:SHARD_WIDTH]


def task_id_for(digest: str, strategy: str, seeds: Sequence[int]) -> str:
    """Content address of one task: stable across submitters and re-runs.

    The id embeds a human-readable ``<digest prefix>-<strategy>`` head (handy
    when inspecting a spool directory) followed by a hash that pins the exact
    seed set and the digest-format version.
    """
    payload = json.dumps(
        [DIGEST_VERSION, digest, strategy, [int(seed) for seed in seeds]],
        separators=(",", ":"),
    )
    tail = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    return f"{digest[:8]}-{strategy}-{tail}"


@dataclass(frozen=True)
class TaskSpec:
    """One spooled unit of work: simulate ``seeds`` with ``task``.

    ``digest``/``strategy`` form the cache key the worker writes results
    under; ``label`` is carried for progress/log lines only.
    """

    task: Callable[[int], float]
    digest: str
    strategy: str
    seeds: tuple[int, ...]
    label: str = ""
    task_id: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds", tuple(int(seed) for seed in self.seeds))
        if not self.seeds:
            raise SpoolError("a task spec needs at least one seed")
        if not self.task_id:
            object.__setattr__(
                self, "task_id", task_id_for(self.digest, self.strategy, self.seeds)
            )

    # ------------------------------------------------------------ encoding
    def encode(self) -> str:
        """Serialise to the on-disk JSON document."""
        return json.dumps(
            {
                "format": SPOOL_FORMAT_VERSION,
                "task_id": self.task_id,
                "digest": self.digest,
                "strategy": self.strategy,
                "seeds": list(self.seeds),
                "label": self.label,
                "task": base64.b64encode(pickle.dumps(self.task)).decode("ascii"),
            },
            indent=None,
            separators=(",", ":"),
        )

    @classmethod
    def decode(cls, text: str) -> "TaskSpec":
        """Parse an on-disk JSON document back into a spec.

        Raises :class:`~repro.errors.SpoolError` on malformed documents or a
        format-version mismatch (a spool shared between incompatible code
        versions must fail loudly, not silently misinterpret work).
        """
        try:
            payload = json.loads(text)
            fmt = payload["format"]
            if fmt != SPOOL_FORMAT_VERSION:
                raise SpoolError(
                    f"task spec format {fmt!r} does not match this code's "
                    f"{SPOOL_FORMAT_VERSION!r}"
                )
            task = pickle.loads(base64.b64decode(payload["task"]))
            return cls(
                task=task,
                digest=str(payload["digest"]),
                strategy=str(payload["strategy"]),
                seeds=tuple(int(seed) for seed in payload["seeds"]),
                label=str(payload.get("label", "")),
                task_id=str(payload["task_id"]),
            )
        except SpoolError:
            raise
        except Exception as exc:  # json/pickle/key errors: one failure mode
            raise SpoolError(f"corrupt task spec: {exc}") from exc


def make_task_specs(
    task: Callable[[int], float],
    digest: str,
    strategy: str,
    seeds: Sequence[int],
    *,
    label: str = "",
    chunk_size: int | None = None,
    target_chunks: int = 4,
) -> list[TaskSpec]:
    """Split one batch of seeds into content-addressed task specs.

    ``chunk_size`` pins the seeds per spec; by default the batch is split
    into about ``target_chunks`` specs so even a single campaign cell spreads
    across a few workers.
    """
    seeds = [int(seed) for seed in seeds]
    if not seeds:
        return []
    if chunk_size is None:
        chunk_size = max(1, -(-len(seeds) // target_chunks))
    return [
        TaskSpec(
            task=task,
            digest=digest,
            strategy=strategy,
            seeds=tuple(seeds[start : start + chunk_size]),
            label=label,
        )
        for start in range(0, len(seeds), chunk_size)
    ]

"""The ``"spool"`` execution backend: submit to the spool, poll the cache.

:class:`SpoolBackend` plugs distributed execution into
:class:`~repro.exec.runner.ParallelRunner` (and therefore into
``CampaignRunner`` and every experiment entry point) without those layers
knowing anything about workers:

1. the runner has already subtracted cache hits, so the batch's pending
   seeds are exactly the cache misses; they are chunked into
   content-addressed :class:`~repro.distributed.tasks.TaskSpec` documents
   and enqueued (idempotently — a resumed submitter maps onto the same
   spool files);
2. the submitter then polls the shared result cache until every pending
   seed has a value, reclaiming expired leases along the way so a crashed
   worker's tasks return to the queue even when no other worker notices;
3. failure records matching this batch's tasks abort the wait with the
   remote traceback.

Results travel exclusively through the cache, whose JSON float encoding is
``repr``-exact — which is why the spool backend is bit-identical to the
serial one, and why an interrupted campaign resumes for free: delivered
seeds are cache hits, undelivered ones are re-enqueued under the same ids.
"""

from __future__ import annotations

import time

from repro.distributed.spool import WorkSpool
from repro.distributed.tasks import make_task_specs
from repro.errors import ConfigurationError, SpoolError
from repro.exec.runner import ExecutionBackend, ParallelRunner, SeedBatch

__all__ = ["SpoolBackend"]

#: Probe every outstanding seed on one poll in this many; between sweeps the
#: loop only stats the batch's few done-markers and probes freshly completed
#: specs, keeping metadata traffic on shared filesystems proportional to the
#: task count rather than the seed count.
_FULL_SWEEP_EVERY = 10


class SpoolBackend(ExecutionBackend):
    """Submitter half of the distributed spool (see module docstring)."""

    #: Workers write every value into the shared cache themselves; the
    #: runner must not write the polled values back a second time.
    persists_results = True

    def __init__(self, runner: ParallelRunner) -> None:
        super().__init__(runner)
        if runner.spool_dir is None or runner.cache is None:
            raise ConfigurationError(
                "the spool backend needs spool_dir and a shared result cache"
            )
        self.spool = WorkSpool(runner.spool_dir, lease_ttl_s=runner.spool_lease_ttl_s)

    def run(self, batch: SeedBatch) -> dict[int, float]:
        if batch.cache_key is None:
            raise ConfigurationError(
                "the spool backend requires content-addressed tasks (a cache "
                "key); use run_config(), or map_seeds(cache_key=...)"
            )
        runner = self.runner
        cache = runner.cache
        assert cache is not None  # validated by the runner and __init__
        digest, strategy = batch.cache_key
        specs = make_task_specs(
            batch.task,
            digest,
            strategy,
            [seed for _, seed in batch.pending],
            label=batch.label,
            chunk_size=runner.chunk_size,
        )
        for spec in specs:
            self.spool.enqueue(spec)
        spec_ids = {spec.task_id for spec in specs}
        # Which result indices each spec covers (make_task_specs chunks the
        # pending pairs in order), so completion markers tell the poll loop
        # which few seeds to probe instead of hammering the whole cache.
        pairs = list(batch.pending)
        spec_indices: dict[str, list[int]] = {}
        position = 0
        for spec in specs:
            spec_indices[spec.task_id] = [
                index for index, _ in pairs[position : position + len(spec.seeds)]
            ]
            position += len(spec.seeds)

        outstanding: dict[int, int] = {index: seed for index, seed in batch.pending}
        computed: dict[int, float] = {}
        done_specs: set[str] = set()
        polls = 0
        deadline = (
            time.time() + runner.spool_timeout_s if runner.spool_timeout_s is not None else None
        )
        while outstanding:
            # Workers write every seed to the cache *before* acking, so a
            # done marker means the whole spec is deliverable.  A periodic
            # full sweep still probes everything: it surfaces partial
            # progress of long tasks and seeds delivered out-of-band (e.g.
            # by another submitter chunking the same cells differently).
            probe = set()
            for task_id in spec_ids - done_specs:
                if self.spool.is_done(task_id):
                    done_specs.add(task_id)
                    probe.update(i for i in spec_indices[task_id] if i in outstanding)
            if polls % _FULL_SWEEP_EVERY == 0:
                probe = set(outstanding)
            polls += 1
            delivered = 0
            for index in probe:
                value = cache.probe(digest, strategy, outstanding[index])
                if value is not None:
                    computed[index] = value
                    del outstanding[index]
                    delivered += 1
            if delivered:
                runner.stats.remote_seeds += delivered
                runner._emit(
                    batch.label, batch.cached + len(computed), batch.total, batch.cached
                )
            if not outstanding:
                break
            failed = sorted(
                task_id
                for task_id in spec_ids - done_specs
                if self.spool.has_failed(task_id)
            )
            if failed:
                details = "; ".join(
                    f"{task_id}: {(self.spool.failure(task_id) or 'unknown error').strip().splitlines()[-1]}"
                    for task_id in failed
                )
                raise SpoolError(
                    f"{len(failed)} spooled task(s) of batch {batch.label!r} failed "
                    f"on remote worker(s) — {details} (full tracebacks under "
                    f"{self.spool.root / 'failed'})"
                )
            if deadline is not None and time.time() > deadline:
                raise SpoolError(
                    f"timed out after {runner.spool_timeout_s:g}s waiting for "
                    f"{len(outstanding)} seed(s) of batch {batch.label!r}; are "
                    f"workers running against --spool {self.spool.root}?"
                )
            # A crashed worker's lease must expire even when every healthy
            # worker is busy elsewhere, so the submitter sweeps too.
            self.spool.reclaim_expired()
            time.sleep(runner.spool_poll_s)
        return computed

"""The ``"spool"`` execution backend: submit to the spool, poll the cache.

:class:`SpoolBackend` plugs distributed execution into
:class:`~repro.exec.runner.ParallelRunner` (and therefore into
``CampaignRunner`` and every experiment entry point) without those layers
knowing anything about workers:

1. the runner has already subtracted cache hits, so the batch's pending
   seeds are exactly the cache misses; they are chunked into
   content-addressed :class:`~repro.distributed.tasks.TaskSpec` documents
   and enqueued idempotently — but only ``spool_max_inflight`` of them at
   a time: further specs enter the spool as earlier ones complete
   (*backpressure*), so a huge campaign never floods the shared
   filesystem with pending files;
2. the submitter tails the spool's per-shard event journals
   (:meth:`~repro.distributed.spool.WorkSpool.tail`) — each poll costs one
   ``stat`` per shard touched by this batch plus the newly appended bytes,
   never a directory sweep — and a ``done`` event triggers cache probes
   for exactly that task's seeds.  The journal is advisory, so a periodic
   full probe sweep still backstops lost appends; the cache remains the
   only source of record;
3. failure records matching this batch's tasks abort the wait with the
   remote traceback, and expired leases are reclaimed along the way so a
   crashed worker's tasks return to the queue even when no other worker
   notices.

Results travel exclusively through the cache, whose JSON float encoding is
``repr``-exact — which is why the spool backend is bit-identical to the
serial one, and why an interrupted campaign resumes for free: delivered
seeds are cache hits, undelivered ones are re-enqueued under the same ids.
"""

from __future__ import annotations

import time

from repro.distributed.spool import WorkSpool
from repro.distributed.tasks import TaskSpec, make_task_specs
from repro.errors import ConfigurationError, SpoolError
from repro.exec.runner import ExecutionBackend, ParallelRunner, SeedBatch

__all__ = ["SpoolBackend"]

#: Probe every outstanding seed (and re-check failure markers) on one poll
#: in this many; between sweeps the loop consumes only journal events, so
#: metadata traffic on shared filesystems stays proportional to the shards
#: touched rather than the seed count.  The sweep is the safety net for the
#: advisory journal: a lost append delays a delivery by at most this many
#: polls, it never loses it.
_FULL_SWEEP_EVERY = 10


class SpoolBackend(ExecutionBackend):
    """Submitter half of the distributed spool (see module docstring)."""

    #: Workers write every value into the shared cache themselves; the
    #: runner must not write the polled values back a second time.
    persists_results = True

    def __init__(self, runner: ParallelRunner) -> None:
        super().__init__(runner)
        if runner.spool_dir is None or runner.cache is None:
            raise ConfigurationError(
                "the spool backend needs spool_dir and a shared result cache"
            )
        self.spool = WorkSpool(runner.spool_dir, lease_ttl_s=runner.spool_lease_ttl_s)

    def run(self, batch: SeedBatch) -> dict[int, float]:
        if batch.cache_key is None:
            raise ConfigurationError(
                "the spool backend requires content-addressed tasks (a cache "
                "key); use run_config(), or map_seeds(cache_key=...)"
            )
        runner = self.runner
        cache = runner.cache
        assert cache is not None  # validated by the runner and __init__
        digest, strategy = batch.cache_key
        specs = make_task_specs(
            batch.task,
            digest,
            strategy,
            [seed for _, seed in batch.pending],
            label=batch.label,
            chunk_size=runner.chunk_size,
        )
        # Which result indices each spec covers (make_task_specs chunks the
        # pending pairs in order), so completion events tell the poll loop
        # which few seeds to probe instead of hammering the whole cache.
        pairs = list(batch.pending)
        spec_indices: dict[str, list[int]] = {}
        position = 0
        for spec in specs:
            spec_indices[spec.task_id] = [
                index for index, _ in pairs[position : position + len(spec.seeds)]
            ]
            position += len(spec.seeds)
        spec_ids = {spec.task_id for spec in specs}

        # Open the journal tail *before* the first enqueue: every event for
        # this batch's tasks from here on is captured, and events recorded
        # earlier describe stale markers that enqueue clears anyway.
        tail = self.spool.tail([spec.task_id for spec in specs])

        # Backpressure: keep at most spool_max_inflight specs in the spool.
        to_submit: list[TaskSpec] = list(specs)
        inflight: set[str] = set()

        def _refill() -> None:
            fresh: list[TaskSpec] = []
            while to_submit and len(inflight) + len(fresh) < runner.spool_max_inflight:
                fresh.append(to_submit.pop(0))
            if fresh:
                self.spool.enqueue_many(fresh)
                inflight.update(spec.task_id for spec in fresh)

        _refill()

        outstanding: dict[int, int] = {index: seed for index, seed in batch.pending}
        computed: dict[int, float] = {}
        done_specs: set[str] = set()
        polls = 0
        deadline = (
            time.time() + runner.spool_timeout_s if runner.spool_timeout_s is not None else None
        )
        while outstanding:
            # Workers write every seed to the cache *before* acking, so a
            # done event means the whole spec is deliverable.  The periodic
            # full sweep still probes everything: it backstops lost journal
            # appends, surfaces partial progress of long tasks and catches
            # seeds delivered out-of-band (e.g. by another submitter
            # chunking the same cells differently).
            probe: set[int] = set()
            failed_hints: set[str] = set()
            for event in tail.poll():
                task_id = event.get("id")
                if task_id not in spec_ids:
                    continue  # another campaign sharing our shards
                if event.get("op") == "done" and task_id not in done_specs:
                    done_specs.add(task_id)
                    probe.update(i for i in spec_indices[task_id] if i in outstanding)
                elif event.get("op") == "failed":
                    failed_hints.add(task_id)
            full_sweep = polls % _FULL_SWEEP_EVERY == 0
            if full_sweep:
                probe = set(outstanding)
            polls += 1
            delivered = 0
            for index in probe:
                value = cache.probe(digest, strategy, outstanding[index])
                if value is not None:
                    computed[index] = value
                    del outstanding[index]
                    delivered += 1
            if delivered:
                runner.stats.remote_seeds += delivered
                runner._emit(
                    batch.label, batch.cached + len(computed), batch.total, batch.cached
                )
                # Retire fully delivered specs and let queued ones enter.
                for task_id in list(inflight):
                    if not any(i in outstanding for i in spec_indices[task_id]):
                        inflight.discard(task_id)
                        done_specs.add(task_id)
                _refill()
            if not outstanding:
                break
            # The journal is advisory, so failure *events* are hints; the
            # failure record on disk is the ground truth (checked for every
            # hinted task each poll, and for all in-flight ones per sweep).
            candidates = failed_hints if not full_sweep else inflight - done_specs
            failed = sorted(
                task_id for task_id in candidates if self.spool.has_failed(task_id)
            )
            if failed:
                details = "; ".join(
                    f"{task_id}: {(self.spool.failure(task_id) or 'unknown error').strip().splitlines()[-1]}"
                    for task_id in failed
                )
                raise SpoolError(
                    f"{len(failed)} spooled task(s) of batch {batch.label!r} failed "
                    f"on remote worker(s) — {details} (full tracebacks under "
                    f"{self.spool.root / 'failed'})"
                )
            if deadline is not None and time.time() > deadline:
                raise SpoolError(
                    f"timed out after {runner.spool_timeout_s:g}s waiting for "
                    f"{len(outstanding)} seed(s) of batch {batch.label!r}; are "
                    f"workers running against --spool {self.spool.root}?"
                )
            # A crashed worker's lease must expire even when every healthy
            # worker is busy elsewhere, so the submitter sweeps too.
            self.spool.reclaim_expired()
            time.sleep(runner.spool_poll_s)
        return computed

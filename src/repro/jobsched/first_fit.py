"""Greedy first-fit job placement.

Whenever nodes become free (a job completes or fails) or new jobs are
submitted, the scheduler walks the pending queue in priority order and
starts every job whose node requirement fits in the currently free nodes.
This is the paper's "simple, greedy first-fit algorithm" (§2, §5) and keeps
the platform over 98 % allocated for the APEX-style workloads.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.job import Job
from repro.jobsched.queue import JobQueue
from repro.platform.nodes import NodePool

__all__ = ["FirstFitScheduler"]


class FirstFitScheduler:
    """Pairs a :class:`JobQueue` with a :class:`NodePool` and places jobs greedily."""

    def __init__(self, pool: NodePool) -> None:
        self._pool = pool
        self._queue = JobQueue()

    # ------------------------------------------------------------ queue API
    @property
    def queue(self) -> JobQueue:
        """The underlying pending-job queue."""
        return self._queue

    @property
    def pool(self) -> NodePool:
        """The node pool placements are made against."""
        return self._pool

    def submit(self, job: Job) -> None:
        """Add ``job`` to the pending queue (it is not started yet)."""
        self._queue.push(job)

    def pending_count(self) -> int:
        """Number of jobs waiting for nodes."""
        return len(self._queue)

    # ------------------------------------------------------------ placement
    def startable_jobs(self) -> list[Job]:
        """Jobs the next :meth:`dispatch` call would start, without starting them.

        The computation walks the queue in priority order keeping a running
        count of hypothetically-free nodes, exactly as :meth:`dispatch` does.
        """
        free = self._pool.num_free
        planned: list[Job] = []
        for job in self._queue.ordered():
            if job.nodes <= free:
                planned.append(job)
                free -= job.nodes
        return planned

    def dispatch(self, start_job: Callable[[Job, list[int]], None]) -> list[Job]:
        """Start every queued job that fits, in priority order.

        Parameters
        ----------
        start_job:
            Callback invoked for each started job with the job and the list
            of node ids allocated to it.  The callback runs after the
            allocation is recorded in the pool, so it may immediately
            schedule simulation events for the job.

        Returns
        -------
        list[Job]
            The jobs that were started, in start order.
        """
        started: list[Job] = []
        for job in self._queue.ordered():
            if not self._pool.can_allocate(job.nodes):
                # First-fit (not first-fit-decreasing): keep scanning, a
                # smaller job further down the queue may still fit.
                continue
            nodes = self._pool.allocate(job.nodes, owner=job)
            self._queue.remove(job)
            job.allocated_nodes = nodes
            started.append(job)
            start_job(job, nodes)
        return started

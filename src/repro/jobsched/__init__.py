"""Online job scheduling: pending-job queue and first-fit placement.

The paper's job scheduler (§2, §5) is deliberately simple: jobs are
presented in priority order (restarted jobs first, then arrival order) and a
greedy first-fit pass starts every queued job that currently fits in the
free nodes.  The schedule is recomputed online whenever nodes free up or a
restart is enqueued.
"""

from repro.jobsched.queue import JobQueue
from repro.jobsched.first_fit import FirstFitScheduler

__all__ = ["JobQueue", "FirstFitScheduler"]

"""Priority queue of pending jobs.

Jobs are ordered by ``(priority, submit_time, job_id)``.  Regular jobs get
priority 0 in arrival order; restarted jobs are enqueued with a negative
priority so they are considered first by the first-fit pass, matching the
paper's policy of restarting failed jobs at the head of the queue so they
reclaim their nodes immediately.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.apps.job import Job
from repro.errors import SchedulingError

__all__ = ["JobQueue"]


class JobQueue:
    """Ordered collection of jobs waiting for nodes."""

    def __init__(self) -> None:
        self._jobs: list[Job] = []

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        """Iterate in scheduling order (highest priority first)."""
        return iter(self.ordered())

    def __contains__(self, job: Job) -> bool:
        return job in self._jobs

    def push(self, job: Job) -> None:
        """Add a job to the queue."""
        if job in self._jobs:
            raise SchedulingError(f"job {job.name} is already queued")
        self._jobs.append(job)

    def remove(self, job: Job) -> None:
        """Remove a job (e.g. because it just started)."""
        try:
            self._jobs.remove(job)
        except ValueError as exc:
            raise SchedulingError(f"job {job.name} is not in the queue") from exc

    def ordered(self) -> list[Job]:
        """Jobs in scheduling order: priority, then submit time, then id."""
        return sorted(self._jobs, key=lambda j: (j.priority, j.submit_time, j.job_id))

    def peek(self) -> Job | None:
        """Highest-priority job, or ``None`` when the queue is empty."""
        order = self.ordered()
        return order[0] if order else None

    def clear(self) -> None:
        """Drop every queued job."""
        self._jobs.clear()

"""Campaign execution on top of the parallel experiment runner.

:class:`CampaignRunner` walks a campaign's scenario matrix and evaluates
every (scenario, strategy) cell through
:meth:`repro.exec.runner.ParallelRunner.run_config`, so campaigns inherit
the execution subsystem wholesale: every registered backend (serial,
process pool, distributed spool) returns bit-identical tables, and an
attached :class:`~repro.exec.cache.ResultCache` means an immediate re-run
(or a grown matrix) only simulates cells it has never seen.  That same
cache property makes campaigns resumable: interrupt a run (Ctrl-C, a lost
spool submitter) and re-running the campaign picks up where it left off —
completed cells replay from the cache, and with the ``"spool"`` backend
in-flight tasks keep their content-addressed spool entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.exec.runner import ParallelRunner
from repro.scenarios.campaign import Campaign
from repro.scenarios.spec import Scenario
from repro.simulation.results import SimulationResult
from repro.simulation.simulator import Simulation
from repro.stats.montecarlo import derive_seeds
from repro.stats.summary import DistributionSummary, summarize

__all__ = ["CampaignResult", "CampaignRunner", "ScenarioOutcome"]


@dataclass(frozen=True)
class ScenarioOutcome:
    """All strategy summaries of one scenario.

    ``summaries[strategy]`` is the waste-ratio distribution of ``strategy``
    over the scenario's Monte-Carlo repetitions; every strategy saw the
    same derived seeds, hence identical initial conditions.
    """

    scenario: Scenario
    summaries: dict[str, DistributionSummary]

    def best_strategy(self) -> str | None:
        """Strategy with the lowest mean waste ratio among *present* summaries.

        A partially populated outcome (an interrupted or resumed campaign, or
        a hand-assembled result) may summarise only a subset of the
        scenario's declared strategies — candidates are therefore the
        summaries actually present, ranked in declaration order (ties go to
        the earlier declaration; summaries for undeclared strategies follow
        in insertion order).  Returns ``None`` for an empty outcome, which
        the renderers show as a row with no winner instead of crashing.
        """
        candidates = [s for s in self.scenario.strategies if s in self.summaries]
        candidates += [s for s in self.summaries if s not in candidates]
        if not candidates:
            return None
        return min(candidates, key=lambda s: self.summaries[s].mean)


@dataclass
class CampaignResult:
    """Outcome of one campaign run.

    Attributes
    ----------
    campaign:
        Name of the executed campaign.
    strategies:
        Every strategy evaluated by at least one scenario, base-scenario
        order first, then axis-added strategies in appearance order (the
        columns of the comparison table; scenarios that skip a column
        render as ``-``).
    outcomes:
        One :class:`ScenarioOutcome` per scenario, in expansion order (the
        rows of the comparison table).
    """

    campaign: str
    strategies: tuple[str, ...]
    outcomes: list[ScenarioOutcome] = field(default_factory=list)

    def outcome(self, scenario_name: str) -> ScenarioOutcome:
        """Outcome of the scenario named ``scenario_name``."""
        for outcome in self.outcomes:
            if outcome.scenario.name == scenario_name:
                return outcome
        known = ", ".join(o.scenario.name for o in self.outcomes)
        raise ConfigurationError(
            f"no scenario named {scenario_name!r} in campaign {self.campaign!r}; "
            f"known scenarios: {known}"
        )

    def summary(self, scenario_name: str, strategy: str) -> DistributionSummary:
        """Waste-ratio summary of one (scenario, strategy) cell."""
        outcome = self.outcome(scenario_name)
        if strategy not in outcome.summaries:
            raise ConfigurationError(
                f"scenario {scenario_name!r} did not evaluate strategy {strategy!r}"
            )
        return outcome.summaries[strategy]


@dataclass
class CampaignRunner:
    """Executes campaigns through a shared :class:`ParallelRunner`.

    The runner (its worker pool and result cache included) is shared by
    every cell of every campaign this instance runs, so a campaign re-run
    against the same cache directory performs zero new simulations.
    """

    runner: ParallelRunner = field(default_factory=ParallelRunner)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Shut the underlying execution backend down (worker pools included).

        Idempotent; the context-manager form guarantees no orphaned worker
        processes when a campaign raises or is interrupted mid-run.
        """
        self.runner.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def run(self, campaign: Campaign) -> CampaignResult:
        """Evaluate every (scenario, strategy) cell of ``campaign``."""
        scenarios = campaign.scenarios()
        # Table columns: the union of all evaluated strategies, so an axis
        # that overrides ``strategies`` never drops simulated cells from the
        # report.  Base order first, axis-added strategies as encountered.
        columns = list(campaign.base.strategies)
        for scenario in scenarios:
            for strategy in scenario.strategies:
                if strategy not in columns:
                    columns.append(strategy)
        result = CampaignResult(campaign=campaign.name, strategies=tuple(columns))
        for scenario in scenarios:
            result.outcomes.append(self.run_scenario(scenario))
        return result

    def run_scenario(self, scenario: Scenario) -> ScenarioOutcome:
        """Evaluate one scenario: every strategy over the scenario's seeds."""
        seeds = derive_seeds(scenario.base_seed, scenario.num_runs)
        summaries: dict[str, DistributionSummary] = {}
        for strategy in scenario.strategies:
            values = self.runner.run_config(
                scenario.config(strategy),
                seeds,
                label=f"{scenario.name}/{strategy}",
            )
            summaries[strategy] = summarize(values)
        return ScenarioOutcome(scenario=scenario, summaries=summaries)

    def detail(self, scenario: Scenario, strategy: str) -> SimulationResult:
        """Full :class:`SimulationResult` of the scenario's first seed.

        The campaign table reduces each run to its waste ratio (that is
        what the cache stores); this re-simulates one repetition to expose
        the complete accounting breakdown and counters.

        Requires a concrete ``base_seed``: with ``None`` every
        ``derive_seeds`` call resolves fresh entropy, so the re-simulated
        repetition would not be one of the runs the campaign table reports.
        """
        if scenario.base_seed is None:
            raise ConfigurationError(
                f"scenario {scenario.name!r} has base_seed=None; a detail run "
                "needs a concrete base seed to replay a repetition the "
                "campaign actually measured"
            )
        seed = derive_seeds(scenario.base_seed, 1)[0]
        return Simulation(scenario.config(strategy).with_seed(seed)).run()

    def drill_down(self, scenario: Scenario, strategy: str, rep: int = 0):
        """Waste decomposition of one campaign cell ``(scenario, strategy, seed)``.

        ``rep`` selects the repetition (0-based index into the scenario's
        derived seeds — the same seeds every strategy of the scenario saw).
        The cell is re-run with trace capture enabled, or replayed for free
        from the trace sidecar the runner's cache holds from an earlier
        drill; either way the returned
        :class:`~repro.trace.decompose.WasteDecomposition` has components
        summing repr-exactly to the cell's recorded waste ratio.

        Like :meth:`detail`, this requires a concrete ``base_seed`` so the
        decomposed repetition is one the campaign actually measured.
        """
        return self.drill_down_detailed(scenario, strategy, rep).decomposition

    def drill_down_detailed(self, scenario: Scenario, strategy: str, rep: int = 0):
        """Like :meth:`drill_down`, returning a
        :class:`~repro.trace.drilldown.CellDrillDown` with the cell's cache
        provenance (whether its scalar value pre-existed the drill)."""
        from repro.trace.drilldown import drill_down_cell_detailed

        if scenario.base_seed is None:
            raise ConfigurationError(
                f"scenario {scenario.name!r} has base_seed=None; a drill-down "
                "needs a concrete base seed to address a repetition the "
                "campaign actually measured"
            )
        if not 0 <= rep < scenario.num_runs:
            raise ConfigurationError(
                f"repetition {rep} out of range: scenario {scenario.name!r} "
                f"runs {scenario.num_runs} repetition(s) (0..{scenario.num_runs - 1})"
            )
        config = scenario.config(strategy)  # validates the strategy too
        seed = derive_seeds(scenario.base_seed, rep + 1)[rep]
        return drill_down_cell_detailed(
            config, seed, cache=self.runner.cache, scenario=scenario.name
        )

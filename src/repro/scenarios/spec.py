"""Declarative scenario specifications.

A :class:`Scenario` names one complete experimental situation: a platform
(possibly overridden from a reference machine), a workload mix, a failure
model, the set of strategies to compare and the Monte-Carlo sample size.
Scenarios are plain frozen dataclasses, so they are picklable (process
backend), hashable by content and cheap to derive from one another with
:meth:`Scenario.apply`.

``apply`` is the override engine the campaign layer builds on: it accepts
either direct field replacements (``num_runs=5``) or the platform-level
shorthand keys ``bandwidth_gbs`` / ``node_mtbf_years`` / ``num_nodes``, and
a ``workload`` override may be a callable taking the (already overridden)
platform so memory-dependent I/O volumes are rebuilt against the final
machine.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, fields, replace

from repro.apps.app_class import ApplicationClass
from repro.errors import ConfigurationError
from repro.iosched.registry import STRATEGIES, StrategySpec, canonical_strategy
from repro.platform.failures import FailureModel
from repro.platform.spec import PlatformSpec
from repro.simulation.config import SimulationConfig
from repro.units import DAY, GB, HOUR, YEAR

__all__ = ["Scenario", "PLATFORM_OVERRIDES"]

#: Shorthand override keys applied to the scenario's platform (in this
#: order) before any workload override is evaluated.
PLATFORM_OVERRIDES: tuple[str, ...] = ("num_nodes", "bandwidth_gbs", "node_mtbf_years")


def _int_override(key: str, value: object) -> int:
    """Narrow an ``object`` override to ``int`` (loudly, not via TypeError)."""
    if isinstance(value, (int, float, str)):
        return int(value)
    raise ConfigurationError(
        f"override {key!r} must be an integer, got {type(value).__name__}"
    )


def _float_override(key: str, value: object) -> float:
    if isinstance(value, (int, float, str)):
        return float(value)
    raise ConfigurationError(
        f"override {key!r} must be a number, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class Scenario:
    """One named experimental situation.

    Attributes
    ----------
    name:
        Scenario label, used in reports and cache-friendly progress labels.
    platform:
        The platform to simulate.
    workload:
        Application classes of the workload mix.
    strategies:
        Strategies to evaluate on this scenario: legacy names, parameterized
        spec strings (``"ordered[policy=fixed,period_s=1800]"``) or
        :class:`~repro.iosched.spec.StrategySpec` objects, normalised to
        canonical strings on construction.  Each strategy shares the
        scenario's seeds, so strategies see identical initial conditions.
    failure_model:
        Failure inter-arrival distribution (exponential by default).
    num_runs / base_seed:
        Monte-Carlo sample size and root seed.
    horizon_days / warmup_days / cooldown_days / fixed_period_s:
        Simulated segment shape, as in
        :class:`~repro.experiments.runner.ExperimentCell`.
    """

    name: str
    platform: PlatformSpec
    workload: tuple[ApplicationClass, ...]
    strategies: tuple[str | StrategySpec, ...] = STRATEGIES
    failure_model: FailureModel = FailureModel()
    num_runs: int = 3
    base_seed: int | None = 0
    horizon_days: float = 6.0
    warmup_days: float = 1.0
    cooldown_days: float = 1.0
    fixed_period_s: float = HOUR

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload", tuple(self.workload))
        object.__setattr__(self, "strategies", tuple(self.strategies))
        if not self.name:
            raise ConfigurationError("Scenario requires a non-empty name")
        if not self.workload:
            raise ConfigurationError(f"scenario {self.name!r} has an empty workload")
        if not self.strategies:
            raise ConfigurationError(f"scenario {self.name!r} selects no strategies")
        try:
            normalized = tuple(canonical_strategy(s) for s in self.strategies)
        except ConfigurationError as exc:
            raise ConfigurationError(f"scenario {self.name!r}: {exc}") from exc
        if len(set(normalized)) != len(normalized):
            raise ConfigurationError(
                f"scenario {self.name!r} selects the same strategy twice "
                f"(after normalisation): {', '.join(normalized)}"
            )
        object.__setattr__(self, "strategies", normalized)
        if self.num_runs <= 0:
            raise ConfigurationError(f"scenario {self.name!r}: num_runs must be positive")
        if self.horizon_days <= 0.0:
            raise ConfigurationError(f"scenario {self.name!r}: horizon_days must be positive")

    # ------------------------------------------------------------ configs
    def config(self, strategy: str | StrategySpec) -> SimulationConfig:
        """Simulation configuration of one strategy on this scenario."""
        strategy = canonical_strategy(strategy)
        if strategy not in self.strategies:
            raise ConfigurationError(
                f"scenario {self.name!r} does not evaluate strategy {strategy!r}"
            )
        return SimulationConfig(
            platform=self.platform,
            classes=self.workload,
            strategy=strategy,
            horizon_s=self.horizon_days * DAY,
            warmup_s=self.warmup_days * DAY,
            cooldown_s=self.cooldown_days * DAY,
            seed=self.base_seed,
            fixed_period_s=self.fixed_period_s,
            failure_model=self.failure_model,
        )

    def configs(self) -> list[SimulationConfig]:
        """One configuration per selected strategy, in declaration order."""
        return [self.config(strategy) for strategy in self.strategies]

    # ------------------------------------------------------------ overrides
    def apply(self, name: str | None = None, /, **overrides: object) -> "Scenario":
        """Derive a scenario by applying declarative overrides.

        Platform shorthands (``num_nodes``, ``bandwidth_gbs``,
        ``node_mtbf_years``) are applied to the platform first; a
        ``workload`` override may then be a sequence of classes or a
        callable mapping the final platform to the classes; every remaining
        key must be a :class:`Scenario` field and replaces it directly.
        """
        unknown = [
            key
            for key in overrides
            if key not in PLATFORM_OVERRIDES and key not in _FIELD_NAMES
        ]
        if unknown:
            valid = ", ".join(sorted((*PLATFORM_OVERRIDES, *_FIELD_NAMES)))
            raise ConfigurationError(
                f"unknown scenario override(s) {', '.join(sorted(map(repr, unknown)))}; "
                f"expected one of {valid}"
            )
        shorthands = [key for key in PLATFORM_OVERRIDES if key in overrides]
        if "platform" in overrides and shorthands:
            raise ConfigurationError(
                f"override 'platform' conflicts with {', '.join(map(repr, shorthands))}: "
                "a full platform replacement would silently discard the shorthand(s); "
                "apply them to the replacement platform instead"
            )
        if name is not None and "name" in overrides:
            raise ConfigurationError(
                f"scenario name given both positionally ({name!r}) and as an "
                f"override ({overrides['name']!r}); pass one or the other"
            )

        platform = self.platform
        if "num_nodes" in overrides:
            platform = platform.with_num_nodes(_int_override("num_nodes", overrides["num_nodes"]))
        if "bandwidth_gbs" in overrides:
            platform = platform.with_bandwidth(
                _float_override("bandwidth_gbs", overrides["bandwidth_gbs"]) * GB
            )
        if "node_mtbf_years" in overrides:
            platform = platform.with_node_mtbf(
                _float_override("node_mtbf_years", overrides["node_mtbf_years"]) * YEAR
            )
        if "platform" in overrides:
            replacement = overrides["platform"]
            if not isinstance(replacement, PlatformSpec):
                raise ConfigurationError(
                    "override 'platform' must be a PlatformSpec, got "
                    f"{type(replacement).__name__}"
                )
            platform = replacement

        workload_override = overrides.get("workload", self.workload)
        if callable(workload_override):
            workload_override = workload_override(platform)
        if not isinstance(workload_override, Iterable):
            raise ConfigurationError(
                "override 'workload' must be a sequence of application "
                "classes (or a callable producing one), got "
                f"{type(workload_override).__name__}"
            )
        workload = tuple(workload_override)

        direct = {
            key: value
            for key, value in overrides.items()
            if key in _FIELD_NAMES and key not in ("name", "platform", "workload")
        }
        if name is None:
            override_name = overrides.get("name", self.name)
            if not isinstance(override_name, str):
                raise ConfigurationError(
                    f"override 'name' must be a string, got {type(override_name).__name__}"
                )
            name = override_name
        return replace(
            self,
            name=name,
            platform=platform,
            workload=workload,
            **direct,
        )

    # ------------------------------------------------------------ reporting
    def describe(self) -> str:
        """One-line human-readable summary of the scenario."""
        return (
            f"{self.name}: {self.platform.name} "
            f"({self.platform.num_nodes} nodes, "
            f"{self.platform.io_bandwidth_bytes_per_s / GB:g} GB/s, "
            f"node MTBF {self.platform.node_mtbf_s / YEAR:g} y), "
            f"{len(self.workload)} classes, failures {self.failure_model.describe()}, "
            f"{len(self.strategies)} strategies x {self.num_runs} runs"
        )


_FIELD_NAMES = frozenset(field.name for field in fields(Scenario))

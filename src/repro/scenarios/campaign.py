"""Campaigns: named matrices of scenarios expanded from axes.

A :class:`Campaign` pairs a base :class:`~repro.scenarios.spec.Scenario`
with zero or more :class:`Axis` objects.  Each axis contributes a set of
labelled override points (e.g. ``mtbf=short -> {"node_mtbf_years": 2}``);
the campaign is the cartesian product of the axes, each combination applied
to the base scenario through :meth:`Scenario.apply`.

Expansion is fully deterministic: scenarios are produced in row-major axis
order with names like ``"io=weak,mtbf=short"``, so re-running a campaign
(or growing one axis) maps the unchanged cells onto the same configurations
— and therefore onto the same result-cache keys.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.scenarios.spec import Scenario

__all__ = ["Axis", "AxisPoint", "Campaign"]


@dataclass(frozen=True)
class AxisPoint:
    """One labelled point of an axis: a name plus scenario overrides."""

    label: str
    overrides: Mapping[str, object]

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigurationError("axis point requires a non-empty label")
        object.__setattr__(self, "overrides", dict(self.overrides))


@dataclass(frozen=True)
class Axis:
    """One dimension of a campaign matrix.

    Attributes
    ----------
    name:
        Axis name; combined with point labels in scenario names
        (``"<name>=<label>"``).
    points:
        The labelled override points of the axis, in sweep order.
    """

    name: str
    points: tuple[AxisPoint, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("axis requires a non-empty name")
        object.__setattr__(self, "points", tuple(self.points))
        if not self.points:
            raise ConfigurationError(f"axis {self.name!r} has no points")
        labels = [point.label for point in self.points]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"axis {self.name!r} has duplicate point labels")

    @classmethod
    def from_values(
        cls,
        name: str,
        key: str,
        values: Iterable[object],
        *,
        labels: Sequence[str] | None = None,
    ) -> "Axis":
        """Build an axis sweeping a single override key over ``values``.

        ``labels`` defaults to ``str(value)`` (floats use ``:g`` so
        ``40.0`` reads ``40``).
        """
        values = list(values)
        if labels is None:
            labels = [f"{v:g}" if isinstance(v, float) else str(v) for v in values]
        if len(labels) != len(values):
            raise ConfigurationError(
                f"axis {name!r}: {len(labels)} labels for {len(values)} values"
            )
        return cls(
            name=name,
            points=tuple(
                AxisPoint(label=label, overrides={key: value})
                for label, value in zip(labels, values)
            ),
        )


@dataclass(frozen=True)
class Campaign:
    """A named matrix of scenarios: base scenario x axes.

    ``scenarios()`` expands the matrix; with no axes the campaign is the
    single base scenario.  Axis overrides are merged per combination (later
    axes win on conflicting keys) and applied in one :meth:`Scenario.apply`
    call, so a workload-factory override always sees the platform with every
    platform-level override of the combination already applied, regardless
    of axis order.
    """

    name: str
    base: Scenario
    axes: tuple[Axis, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("Campaign requires a non-empty name")
        object.__setattr__(self, "axes", tuple(self.axes))
        axis_names = [axis.name for axis in self.axes]
        if len(set(axis_names)) != len(axis_names):
            raise ConfigurationError(f"campaign {self.name!r} has duplicate axis names")

    @property
    def shape(self) -> tuple[int, ...]:
        """Number of points per axis (empty for a single-scenario campaign)."""
        return tuple(len(axis.points) for axis in self.axes)

    def size(self) -> int:
        """Total number of scenarios in the matrix."""
        count = 1
        for extent in self.shape:
            count *= extent
        return count

    def scenarios(self) -> list[Scenario]:
        """Expand the matrix into concrete scenarios, row-major in axis order."""
        if not self.axes:
            return [self.base]
        expanded: list[Scenario] = []
        for combo in itertools.product(*(axis.points for axis in self.axes)):
            merged: dict[str, object] = {}
            for point in combo:
                merged.update(point.overrides)
            # A point-level "name" override renames the cell; otherwise the
            # name is composed from the axis labels.
            label = merged.pop(
                "name",
                ",".join(f"{axis.name}={point.label}" for axis, point in zip(self.axes, combo)),
            )
            expanded.append(self.base.apply(str(label), **merged))
        return expanded

    def describe(self) -> str:
        """Multi-line human-readable summary of the campaign."""
        lines = [
            f"Campaign {self.name}: {self.size()} scenario(s), "
            f"{len(self.base.strategies)} strategies, {self.base.num_runs} runs each",
            f"  base: {self.base.describe()}",
        ]
        for axis in self.axes:
            points = ", ".join(point.label for point in axis.points)
            lines.append(f"  axis {axis.name}: {points}")
        return "\n".join(lines)

"""Campaigns: named matrices of scenarios expanded from axes.

A :class:`Campaign` pairs a base :class:`~repro.scenarios.spec.Scenario`
with zero or more :class:`Axis` objects.  Each axis contributes a set of
labelled override points (e.g. ``mtbf=short -> {"node_mtbf_years": 2}``);
the campaign is the cartesian product of the axes, each combination applied
to the base scenario through :meth:`Scenario.apply`.

Expansion is fully deterministic: scenarios are produced in row-major axis
order with names like ``"io=weak,mtbf=short"``, so re-running a campaign
(or growing one axis) maps the unchanged cells onto the same configurations
— and therefore onto the same result-cache keys.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

from repro.errors import ConfigurationError
from repro.scenarios.spec import Scenario

__all__ = ["Axis", "AxisPoint", "Campaign"]


@dataclass(frozen=True)
class AxisPoint:
    """One labelled point of an axis: a name plus scenario overrides."""

    label: str
    overrides: Mapping[str, object]

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigurationError("axis point requires a non-empty label")
        object.__setattr__(self, "overrides", dict(self.overrides))


@dataclass(frozen=True)
class Axis:
    """One dimension of a campaign matrix.

    Attributes
    ----------
    name:
        Axis name; combined with point labels in scenario names
        (``"<name>=<label>"``).
    points:
        The labelled override points of the axis, in sweep order.
    """

    name: str
    points: tuple[AxisPoint, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("axis requires a non-empty name")
        object.__setattr__(self, "points", tuple(self.points))
        if not self.points:
            raise ConfigurationError(f"axis {self.name!r} has no points")
        labels = [point.label for point in self.points]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"axis {self.name!r} has duplicate point labels")

    @classmethod
    def from_values(
        cls,
        name: str,
        key: str,
        values: Iterable[object],
        *,
        labels: Sequence[str] | None = None,
    ) -> "Axis":
        """Build an axis sweeping a single override key over ``values``.

        ``labels`` defaults to ``str(value)`` (floats use ``:g`` so
        ``40.0`` reads ``40``).
        """
        values = list(values)
        if labels is None:
            labels = [f"{v:g}" if isinstance(v, float) else str(v) for v in values]
        if len(labels) != len(values):
            raise ConfigurationError(
                f"axis {name!r}: {len(labels)} labels for {len(values)} values"
            )
        return cls(
            name=name,
            points=tuple(
                AxisPoint(label=label, overrides={key: value})
                for label, value in zip(labels, values)
            ),
        )


@dataclass(frozen=True)
class Campaign:
    """A named matrix of scenarios: base scenario x axes.

    ``scenarios()`` expands the matrix; with no axes the campaign is the
    single base scenario.  Axis overrides are merged per combination (later
    axes win on conflicting keys) and applied in one :meth:`Scenario.apply`
    call, so a workload-factory override always sees the platform with every
    platform-level override of the combination already applied, regardless
    of axis order.
    """

    name: str
    base: Scenario
    axes: tuple[Axis, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("Campaign requires a non-empty name")
        object.__setattr__(self, "axes", tuple(self.axes))
        axis_names = [axis.name for axis in self.axes]
        if len(set(axis_names)) != len(axis_names):
            raise ConfigurationError(f"campaign {self.name!r} has duplicate axis names")

    @property
    def shape(self) -> tuple[int, ...]:
        """Number of points per axis (empty for a single-scenario campaign)."""
        return tuple(len(axis.points) for axis in self.axes)

    def size(self) -> int:
        """Total number of scenarios in the matrix."""
        count = 1
        for extent in self.shape:
            count *= extent
        return count

    def scenarios(self) -> list[Scenario]:
        """Expand the matrix into concrete scenarios, row-major in axis order."""
        if not self.axes:
            return [self.base]
        expanded: list[Scenario] = []
        for combo in itertools.product(*(axis.points for axis in self.axes)):
            merged: dict[str, object] = {}
            for point in combo:
                merged.update(point.overrides)
            # A point-level "name" override renames the cell; otherwise the
            # name is composed from the axis labels.
            label = merged.pop(
                "name",
                ",".join(f"{axis.name}={point.label}" for axis, point in zip(self.axes, combo)),
            )
            expanded.append(self.base.apply(str(label), **merged))
        return expanded

    # ------------------------------------------------------------ user files
    @classmethod
    def from_mapping(cls, data: Mapping[str, object], *, source: str = "<mapping>") -> "Campaign":
        """Build a campaign from a parsed TOML/JSON document.

        Schema (TOML shown; JSON is the same shape)::

            name = "my-sweep"
            base = "smoke"              # preset whose base scenario to start from

            [overrides]                 # optional Scenario.apply overrides
            num_runs = 2
            horizon_days = 0.5
            strategies = ["ordered-daly", "least-waste"]

            [[axes]]                    # compact single-key axis
            name = "io"
            key = "bandwidth_gbs"
            values = [1.0, 4.0]
            # labels = ["weak", "strong"]   # optional, defaults to the values

            [[axes]]                    # general labelled-points axis
            name = "mtbf"
            [[axes.points]]
            label = "short"
            [axes.points.overrides]
            node_mtbf_years = 0.0438

        ``base`` names a campaign preset (its axes are dropped, only its base
        scenario is inherited), which is how a plain data file gets a concrete
        platform and workload; ``overrides`` accepts every
        :meth:`Scenario.apply` key, including the platform shorthands.
        Workload-rebuild callables are not expressible in data files — use
        the Python API for axes that resize machine memory.
        """
        known = {"name", "base", "overrides", "axes"}
        unknown = sorted(set(map(str, data)) - known)
        if unknown:
            raise ConfigurationError(
                f"{source}: unknown campaign key(s) {', '.join(map(repr, unknown))}; "
                f"expected one of {', '.join(sorted(known))}"
            )
        name = data.get("name")
        if not name or not isinstance(name, str):
            raise ConfigurationError(f"{source}: campaign file needs a non-empty string 'name'")
        preset = data.get("base")
        if not preset or not isinstance(preset, str):
            raise ConfigurationError(
                f"{source}: campaign file needs 'base': the name of a campaign "
                "preset whose base scenario provides the platform and workload"
            )
        from repro.scenarios.presets import make_campaign  # lazy: presets imports us

        base = make_campaign(preset).base
        overrides = data.get("overrides", {})
        if not isinstance(overrides, Mapping):
            raise ConfigurationError(f"{source}: 'overrides' must be a table/object")
        if overrides:
            base = base.apply(**{str(key): value for key, value in overrides.items()})

        axes: list[Axis] = []
        axis_entries = data.get("axes", [])
        if not isinstance(axis_entries, Sequence) or isinstance(axis_entries, (str, bytes)):
            raise ConfigurationError(f"{source}: 'axes' must be an array of tables/objects")
        for position, entry in enumerate(axis_entries):
            axes.append(cls._axis_from_mapping(entry, source=f"{source}: axes[{position}]"))
        return cls(name=name, base=base, axes=tuple(axes))

    @staticmethod
    def _axis_from_mapping(entry: object, *, source: str) -> Axis:
        if not isinstance(entry, Mapping):
            raise ConfigurationError(f"{source}: each axis must be a table/object")
        axis_name = entry.get("name")
        if not axis_name or not isinstance(axis_name, str):
            raise ConfigurationError(f"{source}: axis needs a non-empty string 'name'")
        if "key" in entry:
            values = entry.get("values")
            if not isinstance(values, Sequence) or isinstance(values, (str, bytes)) or not values:
                raise ConfigurationError(f"{source}: axis {axis_name!r} needs a non-empty 'values' array")
            labels = entry.get("labels")
            if labels is not None and (
                not isinstance(labels, Sequence) or isinstance(labels, (str, bytes))
            ):
                raise ConfigurationError(f"{source}: axis {axis_name!r} 'labels' must be an array")
            return Axis.from_values(
                axis_name,
                str(entry["key"]),
                list(values),
                labels=[str(label) for label in labels] if labels is not None else None,
            )
        points = entry.get("points")
        if not isinstance(points, Sequence) or isinstance(points, (str, bytes)) or not points:
            raise ConfigurationError(
                f"{source}: axis {axis_name!r} needs either 'key'+'values' or a "
                "non-empty 'points' array"
            )
        built: list[AxisPoint] = []
        for index, point in enumerate(points):
            if not isinstance(point, Mapping) or not point.get("label"):
                raise ConfigurationError(
                    f"{source}: axis {axis_name!r} point [{index}] needs a 'label'"
                )
            point_overrides = point.get("overrides", {})
            if not isinstance(point_overrides, Mapping):
                raise ConfigurationError(
                    f"{source}: axis {axis_name!r} point {point['label']!r} "
                    "'overrides' must be a table/object"
                )
            built.append(AxisPoint(label=str(point["label"]), overrides=dict(point_overrides)))
        return Axis(name=axis_name, points=tuple(built))

    @classmethod
    def from_file(cls, path: str | os.PathLike[str]) -> "Campaign":
        """Load a user-defined campaign matrix from a TOML or JSON file.

        The format is chosen by suffix: ``.json`` parses as JSON, everything
        else as TOML.  See :meth:`from_mapping` for the schema.
        """
        path = Path(path)
        try:
            if path.suffix.lower() == ".json":
                data = json.loads(path.read_text(encoding="utf-8"))
            else:
                try:
                    import tomllib
                except ModuleNotFoundError as exc:  # pragma: no cover - py3.10
                    raise ConfigurationError(
                        f"TOML campaign files need Python 3.11+ (tomllib); "
                        f"rewrite {path.name} as JSON to use it here"
                    ) from exc
                with path.open("rb") as handle:
                    data = tomllib.load(handle)
        except OSError as exc:
            raise ConfigurationError(f"cannot read campaign file {path}: {exc}") from exc
        except (json.JSONDecodeError, ValueError) as exc:
            # tomllib.TOMLDecodeError subclasses ValueError.
            raise ConfigurationError(f"cannot parse campaign file {path}: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"campaign file {path} must contain a table/object at top level")
        return cls.from_mapping(data, source=str(path))

    def describe(self) -> str:
        """Multi-line human-readable summary of the campaign."""
        lines = [
            f"Campaign {self.name}: {self.size()} scenario(s), "
            f"{len(self.base.strategies)} strategies, {self.base.num_runs} runs each",
            f"  base: {self.base.describe()}",
        ]
        for axis in self.axes:
            points = ", ".join(point.label for point in axis.points)
            lines.append(f"  axis {axis.name}: {points}")
        return "\n".join(lines)

"""Named campaign presets.

The presets bracket the regimes the paper argues about rather than a single
machine: the reference Cielo matrix (weak vs. strong I/O x short vs. long
MTBF), two prospective-platform campaigns built from
:mod:`repro.workloads.prospective` (a bandwidth sweep and a resilience
sweep that crosses the failure model with the node MTBF), and a
laptop-scale ``smoke`` campaign on a miniature Cielo used by CI and the
regression tests.

``make_campaign`` resolves a preset by name; each factory accepts
``num_runs`` / ``horizon_days`` / ``strategies`` overrides so the same
matrix can run at smoke size or paper size.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.apps.app_class import ApplicationClass
from repro.errors import ConfigurationError
from repro.platform.failures import FailureModel
from repro.platform.spec import PlatformSpec
from repro.scenarios.campaign import Axis, AxisPoint, Campaign
from repro.scenarios.spec import Scenario
from repro.units import DAY, GB, HOUR
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import CIELO
from repro.workloads.prospective import PROSPECTIVE, prospective_workload

__all__ = [
    "CAMPAIGNS",
    "FAMILY_STRATEGIES",
    "campaign_names",
    "make_campaign",
    "mini_apex_workload",
    "mini_cielo_platform",
]

#: One representative strategy per scheduler family (the four lines the
#: paper's figures compare), used as the default strategy set of presets.
FAMILY_STRATEGIES: tuple[str, ...] = (
    "oblivious-daly",
    "ordered-daly",
    "orderednb-daly",
    "least-waste",
)


# ------------------------------------------------------------ mini Cielo
def mini_cielo_platform(
    *, bandwidth_gbs: float = 2.0, node_mtbf_days: float = 16.0
) -> PlatformSpec:
    """A 64-node miniature of Cielo that simulates in well under a second.

    The per-node memory matches Cielo (32 GB) so the APEX-style memory
    fractions produce realistic volumes, while bandwidth and MTBF are scaled
    so a half-day horizon sees both contention and a handful of failures
    (system MTBF = ``node_mtbf_days / 64`` days, i.e. six hours at the
    default).
    """
    return PlatformSpec(
        name="MiniCielo",
        num_nodes=64,
        cores_per_node=16,
        memory_per_node_bytes=32.0 * GB,
        io_bandwidth_bytes_per_s=bandwidth_gbs * GB,
        node_mtbf_s=node_mtbf_days * DAY,
    )


def mini_apex_workload(
    platform: PlatformSpec | None = None,
) -> list[ApplicationClass]:
    """The APEX class mix shrunk onto the miniature platform.

    Shares, relative job sizes and the memory-fraction I/O volumes mirror
    Table 1 (EAP/LAP/Silverton/VPIC); work times are compressed so jobs
    complete within laptop-scale horizons.
    """
    platform = platform or mini_cielo_platform()
    rows = (
        # name, cores, work, input%, output%, checkpoint%, share%
        ("EAP", 16 * 16, 5.0 * HOUR, 0.03, 1.05, 1.60, 0.66),
        ("LAP", 4 * 16, 2.0 * HOUR, 0.05, 2.20, 1.85, 0.055),
        ("Silverton", 32 * 16, 3.5 * HOUR, 0.70, 0.43, 3.50, 0.165),
        ("VPIC", 24 * 16, 4.0 * HOUR, 0.10, 2.70, 0.85, 0.12),
    )
    return [
        ApplicationClass.from_memory_fractions(
            name,
            platform=platform,
            cores=cores,
            work_s=work_s,
            input_fraction=input_f,
            output_fraction=output_f,
            checkpoint_fraction=checkpoint_f,
            workload_share=share,
        )
        for name, cores, work_s, input_f, output_f, checkpoint_f, share in rows
    ]


# ------------------------------------------------------------ presets
def smoke_campaign(
    *,
    num_runs: int = 2,
    horizon_days: float = 0.5,
    strategies: Sequence[str] = ("ordered-daly", "least-waste"),
) -> Campaign:
    """A 2x2 miniature-Cielo matrix that completes in seconds (CI smoke)."""
    base = Scenario(
        name="mini-cielo",
        platform=mini_cielo_platform(),
        workload=tuple(mini_apex_workload()),
        strategies=tuple(strategies),
        num_runs=num_runs,
        horizon_days=horizon_days,
        warmup_days=horizon_days / 8.0,
        cooldown_days=horizon_days / 8.0,
    )
    return Campaign(
        name="smoke",
        base=base,
        axes=(
            Axis.from_values("io", "bandwidth_gbs", [1.0, 4.0]),
            Axis(
                name="mtbf",
                points=(
                    AxisPoint("short", {"node_mtbf_years": 16.0 / 365.0}),
                    AxisPoint("long", {"node_mtbf_years": 64.0 / 365.0}),
                ),
            ),
        ),
    )


def cielo_reference_campaign(
    *,
    num_runs: int = 3,
    horizon_days: float = 4.0,
    strategies: Sequence[str] = FAMILY_STRATEGIES,
) -> Campaign:
    """Cielo, weak vs. strong file system x short vs. long node MTBF.

    The corners of the paper's Figures 1 and 2: 40 vs. 160 GB/s and 2 vs.
    20 year node MTBF.  The base APEX workload is shared by every variant —
    its I/O volumes depend only on per-node memory, which these axes do not
    touch; an axis that changes ``num_nodes`` or memory must add a
    ``workload`` rebuild override (see ``prospective_bandwidth_campaign``).
    """
    base = Scenario(
        name="cielo",
        platform=CIELO,
        workload=tuple(apex_workload(CIELO)),
        strategies=tuple(strategies),
        num_runs=num_runs,
        horizon_days=horizon_days,
    )
    return Campaign(
        name="cielo-reference",
        base=base,
        axes=(
            Axis.from_values("io", "bandwidth_gbs", [40.0, 160.0]),
            Axis.from_values("mtbf", "node_mtbf_years", [2.0, 20.0]),
        ),
    )


def prospective_bandwidth_campaign(
    *,
    num_runs: int = 2,
    horizon_days: float = 3.0,
    strategies: Sequence[str] = FAMILY_STRATEGIES,
) -> Campaign:
    """The prospective 50k-node system under a file-system bandwidth sweep.

    Mirrors the Figure 3 question — how much bandwidth does the future
    machine need — as a campaign: the APEX workload is re-scaled to the
    prospective platform per variant (volumes track machine memory).
    """
    base = Scenario(
        name="prospective",
        platform=PROSPECTIVE,
        workload=tuple(prospective_workload(PROSPECTIVE)),
        strategies=tuple(strategies),
        num_runs=num_runs,
        horizon_days=horizon_days,
    )
    # Workload volumes depend only on memory (identical across bandwidth
    # variants), but rebuilding per point keeps the recipe uniform.
    rebuild = prospective_workload
    return Campaign(
        name="prospective-bandwidth",
        base=base,
        axes=(
            Axis(
                name="io",
                points=tuple(
                    AxisPoint(
                        f"{int(gbs)}GBs",
                        {"bandwidth_gbs": gbs, "workload": rebuild},
                    )
                    for gbs in (500.0, 1000.0, 2000.0)
                ),
            ),
        ),
    )


def prospective_resilience_campaign(
    *,
    num_runs: int = 2,
    horizon_days: float = 3.0,
    strategies: Sequence[str] = FAMILY_STRATEGIES,
) -> Campaign:
    """The prospective system under failure-model x node-MTBF stress.

    Crosses the exponential process with a bursty Weibull (k = 0.7, a shape
    reported for HPC failure logs) against optimistic and pessimistic node
    MTBFs, asking whether the strategy ranking survives non-Poisson
    failures on the future machine.
    """
    base = Scenario(
        name="prospective",
        platform=PROSPECTIVE,
        workload=tuple(prospective_workload(PROSPECTIVE)),
        strategies=tuple(strategies),
        num_runs=num_runs,
        horizon_days=horizon_days,
    )
    return Campaign(
        name="prospective-resilience",
        base=base,
        axes=(
            Axis(
                name="failures",
                points=(
                    AxisPoint("exp", {"failure_model": FailureModel()}),
                    AxisPoint(
                        "weibull0.7",
                        {"failure_model": FailureModel(kind="weibull", shape=0.7)},
                    ),
                ),
            ),
            Axis.from_values("mtbf", "node_mtbf_years", [5.0, 25.0]),
        ),
    )


def period_sweep_campaign(
    *,
    num_runs: int = 2,
    horizon_days: float = 0.5,
    strategies: Sequence[str] = ("ordered-daly",),
    periods_hours: Sequence[float] = (0.5, 1.0, 2.0),
    strategy_kind: str = "ordered",
) -> Campaign:
    """Checkpoint-period sweep on the miniature Cielo.

    Exercises the parameterized strategy specs end-to-end: one axis point
    per fixed period (``ordered[policy=fixed,period_s=...]``) plus the
    ``strategies`` reference point (Young/Daly by default), asking where the
    production "checkpoint every N hours" heuristic lands relative to the
    per-class optimum.  Each parameterized spec is its own cache key, so the
    sweep composes with every execution backend and the result cache.
    """
    base = Scenario(
        name="mini-cielo",
        platform=mini_cielo_platform(),
        workload=tuple(mini_apex_workload()),
        strategies=tuple(strategies),
        num_runs=num_runs,
        horizon_days=horizon_days,
        warmup_days=horizon_days / 8.0,
        cooldown_days=horizon_days / 8.0,
    )
    points = [AxisPoint("reference", {"strategies": tuple(strategies)})]
    for hours in periods_hours:
        spec = f"{strategy_kind}[policy=fixed,period_s={hours * HOUR:g}]"
        points.append(AxisPoint(f"{hours:g}h", {"strategies": (spec,)}))
    return Campaign(
        name="period-sweep",
        base=base,
        axes=(Axis(name="period", points=tuple(points)),),
    )


#: Preset registry: name -> campaign factory.
CAMPAIGNS: dict[str, Callable[..., Campaign]] = {
    "smoke": smoke_campaign,
    "cielo-reference": cielo_reference_campaign,
    "prospective-bandwidth": prospective_bandwidth_campaign,
    "prospective-resilience": prospective_resilience_campaign,
    "period-sweep": period_sweep_campaign,
}


def campaign_names() -> tuple[str, ...]:
    """Names of the registered campaign presets."""
    return tuple(CAMPAIGNS)


def make_campaign(name: str, **overrides: object) -> Campaign:
    """Build a preset campaign by name.

    ``overrides`` are forwarded to the preset factory (``num_runs``,
    ``horizon_days``, ``strategies``).
    """
    factory = CAMPAIGNS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown campaign {name!r}; expected one of {', '.join(CAMPAIGNS)}"
        )
    return factory(**overrides)

"""repro.scenarios — declarative scenario campaigns.

The paper draws its conclusions from one machine (Cielo) under one workload
mix; this package turns those point measurements into *regime* sweeps:

* :class:`~repro.scenarios.spec.Scenario` — a declarative description of
  one experimental situation (platform overrides, workload mix, failure
  model, strategy set, Monte-Carlo sample size).
* :class:`~repro.scenarios.campaign.Campaign` /
  :class:`~repro.scenarios.campaign.Axis` — a named matrix of scenarios
  expanded from labelled override axes (e.g. MTBF x I/O bandwidth x
  failure model).
* :class:`~repro.scenarios.runner.CampaignRunner` — executes the matrix
  through :class:`repro.exec.ParallelRunner`, inheriting its process
  backend and on-disk result cache (re-running a grown matrix only
  simulates new cells).
* :mod:`~repro.scenarios.report` — the cross-scenario comparison table and
  CSV export.
* :mod:`~repro.scenarios.presets` — ready-made campaigns: the Cielo
  reference matrix, two prospective-platform campaigns and a CI-sized
  ``smoke`` matrix on a miniature Cielo.

Exposed on the CLI as ``coopckpt campaign``.
"""

from __future__ import annotations

from repro.scenarios.campaign import Axis, AxisPoint, Campaign
from repro.scenarios.presets import (
    CAMPAIGNS,
    FAMILY_STRATEGIES,
    campaign_names,
    make_campaign,
    mini_apex_workload,
    mini_cielo_platform,
)
from repro.scenarios.report import campaign_to_csv, render_campaign, render_campaign_details
from repro.scenarios.runner import CampaignResult, CampaignRunner, ScenarioOutcome
from repro.scenarios.spec import Scenario

__all__ = [
    "Axis",
    "AxisPoint",
    "CAMPAIGNS",
    "Campaign",
    "CampaignResult",
    "CampaignRunner",
    "FAMILY_STRATEGIES",
    "Scenario",
    "ScenarioOutcome",
    "campaign_names",
    "campaign_to_csv",
    "make_campaign",
    "mini_apex_workload",
    "mini_cielo_platform",
    "render_campaign",
    "render_campaign_details",
]

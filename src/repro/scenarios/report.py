"""Rendering of campaign results.

``render_campaign`` prints the cross-scenario comparison table (scenario
rows x strategy columns of mean waste ratios, the per-scenario winner
starred); ``campaign_to_csv`` exports every cell with its full candlestick
statistics.  Both renderings are pure functions of the
:class:`~repro.scenarios.runner.CampaignResult`, so serial and process
campaign runs produce byte-identical text.
"""

from __future__ import annotations

import csv
import io

from repro.errors import ConfigurationError
from repro.iosched.registry import resolved_strategy_spec
from repro.scenarios.runner import CampaignResult

__all__ = ["campaign_to_csv", "render_campaign", "render_campaign_details"]

#: Width of the scenario-name column (clipped, never truncating data).
_NAME_WIDTH = 28


def render_campaign(result: CampaignResult, *, precision: int = 3) -> str:
    """Plain-text comparison table of mean waste ratios.

    One row per scenario, one column per strategy; the lowest-mean strategy
    of each row is marked with ``*``.
    """
    strategies = list(result.strategies)
    name_width = max(
        [_NAME_WIDTH] + [len(o.scenario.name) for o in result.outcomes]
    )
    col_width = max([10] + [len(s) + 1 for s in strategies])
    header = f"{'scenario':<{name_width}}"
    for strategy in strategies:
        header += f"  {strategy:>{col_width}}"
    lines = [
        f"Campaign {result.campaign} — mean waste ratio per scenario "
        f"(* = best strategy)",
        header,
        "-" * len(header),
    ]
    for outcome in result.outcomes:
        best = outcome.best_strategy()
        row = f"{outcome.scenario.name:<{name_width}}"
        for strategy in strategies:
            if strategy in outcome.summaries:
                marker = "*" if strategy == best else " "
                cell = f"{outcome.summaries[strategy].mean:.{precision}f}{marker}"
            else:
                cell = "-"
            row += f"  {cell:>{col_width}}"
        lines.append(row)
    return "\n".join(lines)


def render_campaign_details(result: CampaignResult) -> str:
    """Per-scenario description plus candlestick statistics of every cell."""
    lines: list[str] = []
    for outcome in result.outcomes:
        lines.append(outcome.scenario.describe())
        for strategy in result.strategies:
            if strategy not in outcome.summaries:
                continue
            summary = outcome.summaries[strategy]
            marker = "*" if strategy == outcome.best_strategy() else " "
            lines.append(f"  {marker} {strategy:<16} {summary.format()}")
    return "\n".join(lines)


def campaign_to_csv(result: CampaignResult) -> str:
    """CSV export: one row per (scenario, strategy) cell with full statistics.

    Scenario names embed commas (``io=weak,mtbf=short``), so fields are
    quoted by the :mod:`csv` writer; floats use ``repr`` (shortest-exact),
    making the export a faithful round-trip of the summaries.  The ``spec``
    column spells out the cell's fully resolved strategy spec (policy and
    effective fixed period included), so two cells sharing a strategy name
    but running different parameters — e.g. ``ordered-fixed`` under two
    scenario ``fixed_period_s`` values — stay distinguishable in exports.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    stat_keys = ["n", "mean", "std", "min", "d1", "q1", "median", "q3", "d9", "max"]
    writer.writerow(["campaign", "scenario", "strategy", "spec", "best", *stat_keys])
    for outcome in result.outcomes:
        best = outcome.best_strategy()
        for strategy in result.strategies:
            if strategy not in outcome.summaries:
                continue
            stats = outcome.summaries[strategy].as_dict()
            writer.writerow(
                [
                    result.campaign,
                    outcome.scenario.name,
                    strategy,
                    _resolved_spec(strategy, outcome.scenario.fixed_period_s),
                    "1" if strategy == best else "0",
                    *[repr(stats[key]) for key in stat_keys],
                ]
            )
    return buffer.getvalue()


def _resolved_spec(strategy: str, fixed_period_s: float) -> str:
    """Fully resolved spec of one cell, degrading gracefully for plugins.

    Resolving instantiates the strategy, which fails when the cell ran a
    custom kind whose registering module is not imported in *this* (the
    reporting) process.  The result tables still carry the cell's canonical
    spec string, so exporting degrades to that instead of crashing the
    whole CSV.
    """
    try:
        return resolved_strategy_spec(strategy, fixed_period_s=fixed_period_s)
    except ConfigurationError:
        return strategy

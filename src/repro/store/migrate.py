"""Lossless store-to-store migration (``coopckpt cache import/export``).

:func:`copy_store` moves every entry and trace sidecar between two result
stores as :class:`~repro.exec.cache.RawRecord` verbatim text — no parsing,
no re-encoding, no version re-stamping.  Because both built-in backends
store (or reconstruct) exactly those bytes, migrating a cache in either
direction — filesystem → SQLite → filesystem, or the reverse — reproduces
every record byte-for-byte, so no simulated node-second is ever lost or
altered by a storage move.  Copying is idempotent: records are keyed by
``(digest, strategy, seed)`` and re-copying overwrites with identical
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.store.base import ResultStore

__all__ = ["MigrationReport", "copy_store"]


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one :func:`copy_store` pass."""

    entries: int = 0
    traces: int = 0

    def describe(self) -> str:
        return (
            f"{self.entries} entr{'y' if self.entries == 1 else 'ies'}, "
            f"{self.traces} trace sidecar(s)"
        )


def copy_store(src: ResultStore, dst: ResultStore) -> MigrationReport:
    """Copy every raw record of ``src`` into ``dst``; returns the counts.

    The source is never modified; the destination may be non-empty (records
    with colliding keys are overwritten, which for deterministic caches
    means rewritten with the same bytes).
    """
    entries = 0
    for record in src.iter_raw_entries():
        dst.put_raw_entry(record.digest, record.strategy, record.seed, record.body)
        entries += 1
    traces = 0
    for record in src.iter_raw_traces():
        dst.put_raw_trace(record.digest, record.strategy, record.seed, record.body)
        traces += 1
    return MigrationReport(entries=entries, traces=traces)

"""Pluggable result stores: one warm cache, selectable storage engines.

The serving-layer promotion of :class:`repro.exec.cache.ResultCache`: the
``(config digest, strategy, seed) -> value`` contract stays exactly as the
execution layer defined it, but the storage engine behind it is now chosen
by name through an open registry (:func:`register_store`), like execution
backends, strategies and simulator kernels before it.

Importing this package registers the built-in backends:

* ``"filesystem"`` — the historical directory layout, byte-for-byte
  unchanged (:class:`FilesystemStore`).
* ``"sqlite"`` — one WAL-mode, schema-versioned database file
  (:class:`SqliteStore`).

:func:`copy_store` migrates caches between any two backends losslessly in
either direction; :mod:`repro.service` puts an HTTP API in front of a
store so many users can share it without shell access.
"""

from repro.store.base import (
    DEFAULT_STORE,
    ResultStore,
    open_store,
    register_store,
    store_kinds,
)
from repro.store.filesystem import FilesystemStore
from repro.store.migrate import MigrationReport, copy_store
from repro.store.sqlite import SCHEMA_VERSION, SqliteStore

__all__ = [
    "DEFAULT_STORE",
    "FilesystemStore",
    "MigrationReport",
    "ResultStore",
    "SCHEMA_VERSION",
    "SqliteStore",
    "copy_store",
    "open_store",
    "register_store",
    "store_kinds",
]

"""The ``"sqlite"`` store: one WAL-mode database file.

Where the filesystem layout spends one file (and one inode, and one PFS
round-trip) per entry, :class:`SqliteStore` keeps an entire cache in a
single schema-versioned SQLite file — entries, trace sidecars and the
aggregates behind ``cache stats`` all become indexed tables, so stats and
gc are one query instead of a directory walk, and shipping a warm cache to
another machine is one ``scp``.

Semantics are identical to the filesystem store by construction:

* Every record stores the *verbatim JSON text* the filesystem layout would
  have written (``body``), alongside extracted indexed columns.  Migration
  (:mod:`repro.store.migrate`) copies bodies unchanged, so a cache
  round-tripped through SQLite and back is byte-identical — older-version
  and even corrupt entries included.
* Values are IEEE-754 doubles end to end (SQLite ``REAL`` is a double), so
  a hit is repr-exact; non-finite or unparseable records read as misses
  and are re-simulated, never propagated.
* Concurrency follows the cache's story: WAL mode gives many readers plus
  one writer at a time, a generous busy timeout serialises writers
  (threads in this process via one connection per thread, other processes
  via SQLite's own locking), and racing writers of the same key store the
  same deterministic bytes.

The schema is versioned in the ``meta`` table with the spool's contract: a
database pinned to a *newer* schema than the code understands is refused
loudly, never misread.
"""

from __future__ import annotations

import json
import math
import os
import sqlite3
import threading
import time
from collections.abc import Iterator
from pathlib import Path

from repro.errors import ConfigurationError
from repro.exec.cache import CacheStats, GcReport, RawRecord
from repro.store.base import ResultStore, register_store

__all__ = ["SCHEMA_VERSION", "SqliteStore"]

#: On-file schema layout version (meta table, key ``schema_version``).
SCHEMA_VERSION = 1

#: How long a writer waits for the database lock before failing.
_BUSY_TIMEOUT_S = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entries (
    digest   TEXT    NOT NULL,
    strategy TEXT    NOT NULL,
    seed     INTEGER NOT NULL,
    value    REAL,
    version  TEXT    NOT NULL,
    body     TEXT    NOT NULL,
    size     INTEGER NOT NULL,
    mtime    REAL    NOT NULL,
    PRIMARY KEY (digest, strategy, seed)
);
CREATE TABLE IF NOT EXISTS traces (
    digest   TEXT    NOT NULL,
    strategy TEXT    NOT NULL,
    seed     INTEGER NOT NULL,
    version  TEXT    NOT NULL,
    body     TEXT    NOT NULL,
    size     INTEGER NOT NULL,
    mtime    REAL    NOT NULL,
    PRIMARY KEY (digest, strategy, seed)
);
CREATE INDEX IF NOT EXISTS entries_version ON entries (version);
"""


def _entry_columns(body: str) -> tuple[float | None, str]:
    """``(value, version)`` columns extracted from one entry body.

    Mirrors the filesystem read path: unparseable bodies are ``"corrupt"``
    (matching ``ResultCache._entry_version``), and missing/mistyped or
    non-finite values are stored as NULL so :meth:`SqliteStore.get` misses
    on them exactly like :meth:`ResultCache.get` does.
    """
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        return None, "corrupt"
    if not isinstance(payload, dict):
        return None, "corrupt"
    version = str(payload.get("version", "unversioned"))
    try:
        value = float(payload["value"])
    except (KeyError, TypeError, ValueError):
        return None, version
    if not math.isfinite(value):
        return None, version
    return value, version


def _trace_version(body: str) -> str:
    try:
        payload = json.loads(body)
        if isinstance(payload, dict):
            return str(payload.get("version", "unversioned"))
    except json.JSONDecodeError:
        pass
    return "corrupt"


class SqliteStore(ResultStore):
    """Persistent ``(config digest, strategy, seed) -> float`` mapping in
    one SQLite file (entries + trace sidecars + stats in tables)."""

    kind = "sqlite"

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.root = Path(path)
        if self.root.is_dir():
            raise ConfigurationError(
                f"sqlite store path {self.root} is a directory (expected a database file)"
            )
        self.root.parent.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        self._closed = False
        self._connect()  # create or validate the schema eagerly

    # ------------------------------------------------------------ connections
    def _connect(self) -> sqlite3.Connection:
        """This thread's connection (one per thread; created on first use).

        ``check_same_thread=False`` only so :meth:`close` may close every
        connection from one thread — each connection is otherwise used
        exclusively by the thread that created it.
        """
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        if self._closed:
            raise ConfigurationError(f"sqlite store {self.root} is closed")
        conn = sqlite3.connect(
            str(self.root),
            timeout=_BUSY_TIMEOUT_S,
            isolation_level=None,  # autocommit; explicit BEGIN where needed
            check_same_thread=False,
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._ensure_schema(conn)
        except sqlite3.DatabaseError as exc:
            conn.close()
            raise ConfigurationError(
                f"{self.root} is not a sqlite result store: {exc}"
            ) from exc
        self._local.conn = conn
        with self._connections_lock:
            self._connections.append(conn)
        return conn

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        conn.execute("BEGIN IMMEDIATE")
        try:
            # One statement at a time: executescript would implicitly commit,
            # breaking the single-transaction create-and-version guarantee.
            for statement in _SCHEMA.split(";"):
                if statement.strip():
                    conn.execute(statement)
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            else:
                try:
                    found = int(row[0])
                except ValueError as exc:
                    raise ConfigurationError(
                        f"{self.root}: unreadable schema version {row[0]!r}"
                    ) from exc
                if found > SCHEMA_VERSION:
                    # The spool's layout contract, applied to stores: newer
                    # layouts are refused loudly, never misread.
                    raise ConfigurationError(
                        f"{self.root} uses store schema v{found}, newer than "
                        f"this build understands (v{SCHEMA_VERSION}); upgrade "
                        "coopckpt instead of opening it with old code"
                    )
        finally:
            conn.execute("COMMIT")

    # ------------------------------------------------------------ values
    def get(self, digest: str, strategy: str, seed: int) -> float | None:
        try:
            row = self._connect().execute(
                "SELECT value FROM entries WHERE digest = ? AND strategy = ? AND seed = ?",
                (digest, strategy, int(seed)),
            ).fetchone()
        except sqlite3.Error:
            # A contended or damaged database reads as a miss, mirroring the
            # filesystem store: the seed is re-simulated, never crashed on.
            row = None
        if row is None or row[0] is None:
            self.misses += 1
            return None
        value = float(row[0])
        if not math.isfinite(value):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, digest: str, strategy: str, seed: int, value: float) -> None:
        from repro.exec.digest import DIGEST_VERSION

        entry = {
            "digest": digest,
            "strategy": strategy,
            "seed": int(seed),
            "value": float(value),
            "version": DIGEST_VERSION,
        }
        # The body is exactly what the filesystem layout would write, so
        # exporting this store reproduces a byte-identical directory tree.
        body = json.dumps(entry)
        self._connect().execute(
            "INSERT OR REPLACE INTO entries"
            " (digest, strategy, seed, value, version, body, size, mtime)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                digest,
                strategy,
                int(seed),
                float(value),
                DIGEST_VERSION,
                body,
                len(body.encode("utf-8")),
                time.time(),
            ),
        )
        self.writes += 1

    # ------------------------------------------------------------ sidecars
    def get_trace(self, digest: str, strategy: str, seed: int) -> dict | None:
        from repro.exec.digest import DIGEST_VERSION

        try:
            row = self._connect().execute(
                "SELECT body FROM traces WHERE digest = ? AND strategy = ? AND seed = ?",
                (digest, strategy, int(seed)),
            ).fetchone()
        except sqlite3.Error:
            row = None
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except json.JSONDecodeError:
            return None
        if not isinstance(payload, dict) or payload.get("version") != DIGEST_VERSION:
            return None
        return payload

    def put_trace(self, digest: str, strategy: str, seed: int, payload: dict) -> None:
        from repro.exec.digest import DIGEST_VERSION

        body = json.dumps({**payload, "version": DIGEST_VERSION})
        self._put_trace_row(digest, strategy, seed, DIGEST_VERSION, body)

    def _put_trace_row(
        self, digest: str, strategy: str, seed: int, version: str, body: str
    ) -> None:
        self._connect().execute(
            "INSERT OR REPLACE INTO traces"
            " (digest, strategy, seed, version, body, size, mtime)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                digest,
                strategy,
                int(seed),
                version,
                body,
                len(body.encode("utf-8")),
                time.time(),
            ),
        )

    # ------------------------------------------------------------ raw access
    def _iter_raw(self, table: str) -> Iterator[RawRecord]:
        cursor = self._connect().execute(
            f"SELECT digest, strategy, seed, body FROM {table}"  # noqa: S608
            " ORDER BY digest, strategy, seed"
        )
        for digest, strategy, seed, body in cursor:
            yield RawRecord(str(digest), str(strategy), int(seed), str(body))

    def iter_raw_entries(self) -> Iterator[RawRecord]:
        return self._iter_raw("entries")

    def iter_raw_traces(self) -> Iterator[RawRecord]:
        return self._iter_raw("traces")

    def put_raw_entry(self, digest: str, strategy: str, seed: int, body: str) -> None:
        value, version = _entry_columns(body)
        self._connect().execute(
            "INSERT OR REPLACE INTO entries"
            " (digest, strategy, seed, value, version, body, size, mtime)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                digest,
                strategy,
                int(seed),
                value,
                version,
                body,
                len(body.encode("utf-8")),
                time.time(),
            ),
        )

    def put_raw_trace(self, digest: str, strategy: str, seed: int, body: str) -> None:
        self._put_trace_row(digest, strategy, seed, _trace_version(body), body)

    # ------------------------------------------------------------ maintenance
    def stats(self) -> CacheStats:
        """One aggregate query per table — no walk, whatever the entry count."""
        conn = self._connect()
        entries = 0
        total_bytes = 0
        versions: dict[str, int] = {}
        for version, count, size in conn.execute(
            "SELECT version, COUNT(*), COALESCE(SUM(size), 0) FROM entries GROUP BY version"
        ):
            entries += int(count)
            total_bytes += int(size)
            versions[str(version)] = int(count)
        trace_sidecars, trace_bytes = conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(size), 0) FROM traces"
        ).fetchone()
        return CacheStats(
            entries=entries,
            total_bytes=total_bytes,
            versions=dict(sorted(versions.items())),
            trace_sidecars=int(trace_sidecars),
            trace_bytes=int(trace_bytes),
        )

    def gc(
        self,
        *,
        older_than_s: float | None = None,
        digest_version: str | None = None,
        dry_run: bool = False,
    ) -> GcReport:
        """Prune by age and/or digest version; same semantics as the
        filesystem store (either criterion removes; a removed entry takes
        its sidecar; orphaned sidecars are swept by any criteria-bearing
        pass; ``dry_run`` counts without deleting)."""
        conn = self._connect()
        if older_than_s is None and digest_version is None:
            return GcReport(scanned=len(self), dry_run=dry_run)
        conditions: list[str] = []
        params: list[object] = []
        if older_than_s is not None:
            conditions.append("(? - {p}mtime) > ?")
            params.extend([time.time(), float(older_than_s)])
        if digest_version is not None:
            conditions.append("{p}version = ?")
            params.append(digest_version)
        where = " OR ".join(conditions)
        conn.execute("BEGIN IMMEDIATE")
        try:
            scanned = int(conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0])
            doomed = conn.execute(
                "SELECT e.size + COALESCE(t.size, 0) FROM entries e"
                " LEFT JOIN traces t ON t.digest = e.digest"
                "  AND t.strategy = e.strategy AND t.seed = e.seed"
                f" WHERE {where.format(p='e.')}",  # noqa: S608 (literal conditions)
                params,
            ).fetchall()
            removed = len(doomed)
            reclaimed = sum(int(size) for (size,) in doomed)
            orphans = conn.execute(
                "SELECT t.size FROM traces t LEFT JOIN entries e"
                " ON e.digest = t.digest AND e.strategy = t.strategy AND e.seed = t.seed"
                " WHERE e.digest IS NULL"
            ).fetchall()
            removed += len(orphans)
            reclaimed += sum(int(size) for (size,) in orphans)
            if not dry_run and removed:
                conn.execute(  # noqa: S608 (literal conditions)
                    f"DELETE FROM entries WHERE {where.format(p='')}", params
                )
                # Sidecars of the pruned entries plus the pre-existing
                # orphans — exactly the set counted above.
                conn.execute(
                    "DELETE FROM traces WHERE NOT EXISTS ("
                    " SELECT 1 FROM entries e WHERE e.digest = traces.digest"
                    "  AND e.strategy = traces.strategy AND e.seed = traces.seed)"
                )
        finally:
            conn.execute("COMMIT")
        return GcReport(
            scanned=scanned, removed=removed, reclaimed_bytes=reclaimed, dry_run=dry_run
        )

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Checkpoint the WAL and close every connection (idempotent)."""
        with self._connections_lock:
            connections, self._connections = self._connections, []
            self._closed = True
        for conn in connections:
            try:
                # Fold the write-ahead log back into the main file so the
                # closed database is one self-contained artifact.
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:
                pass
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()

    # ------------------------------------------------------------ reporting
    def __len__(self) -> int:
        return int(self._connect().execute("SELECT COUNT(*) FROM entries").fetchone()[0])

    def __repr__(self) -> str:
        return (
            f"SqliteStore(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )


def _make_sqlite_store(path: str | os.PathLike[str]) -> SqliteStore:
    return SqliteStore(path)


register_store("sqlite", _make_sqlite_store)

"""The ``"filesystem"`` store: the historical directory-of-JSON layout.

:class:`FilesystemStore` *is* a :class:`~repro.exec.cache.ResultCache` —
inheritance, not delegation — so the on-disk layout, the atomic-write
discipline, the per-shard index journals and every byte it produces are
identical to what the cache has always written.  A directory populated by
any earlier release opens as a filesystem store unchanged, and a directory
written through this class is indistinguishable from one written by
``ResultCache`` directly (the golden pins and digest discipline of
``tests/test_golden_regression.py`` therefore apply verbatim).
"""

from __future__ import annotations

import os

from repro.exec.cache import ResultCache
from repro.store.base import ResultStore, register_store

__all__ = ["FilesystemStore"]


class FilesystemStore(ResultCache, ResultStore):
    """One directory of JSON entries and ``.trace`` sidecars (the default)."""

    kind = "filesystem"


def _make_filesystem_store(path: str | os.PathLike[str]) -> FilesystemStore:
    return FilesystemStore(path)


register_store("filesystem", _make_filesystem_store)

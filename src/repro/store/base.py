"""The pluggable result-store contract and its open registry.

A *result store* holds the warm cache of simulated node-seconds the whole
system is built around: per-seed scalar values keyed by ``(config digest,
strategy, seed)`` plus their trace sidecars.  Historically that cache was
one concrete class (:class:`repro.exec.cache.ResultCache`, a directory of
JSON files); this module promotes the *interface* so the storage engine is
selectable the same way execution backends, strategies and simulator
kernels are — by name, through an open registry:

* ``"filesystem"`` — :class:`repro.store.filesystem.FilesystemStore`, the
  historical directory layout, byte-for-byte unchanged.
* ``"sqlite"`` — :class:`repro.store.sqlite.SqliteStore`, one WAL-mode
  database file holding entries, sidecars and stats in tables.

**Store contract** (recorded in ROADMAP.md): a store never changes *what*
is cached, only *where*.  Values round-trip repr-exactly (a cache hit is
bit-identical to the simulation it replaced), corrupt or foreign records
read as misses (never errors), concurrent writers — threads, processes,
spool workers — are safe because the value for a given key is
deterministic, and :func:`repro.store.migrate.copy_store` moves raw records
between any two backends losslessly in either direction.  New backends
plug in through :func:`register_store`.

Every store duck-types the :class:`~repro.exec.cache.ResultCache` surface
(``get``/``probe``/``put``, trace sidecars, ``stats``/``gc``, hit/miss
counters), so :class:`~repro.exec.runner.ParallelRunner`,
:class:`~repro.distributed.worker.SpoolWorker` and the trace drill-down all
work against any backend unchanged.
"""

from __future__ import annotations

import difflib
import os
from collections.abc import Callable, Iterator
from pathlib import Path

from repro.errors import ConfigurationError
from repro.exec.cache import CacheStats, GcReport, RawRecord

__all__ = [
    "DEFAULT_STORE",
    "ResultStore",
    "open_store",
    "register_store",
    "store_kinds",
]

#: The registry default: the historical on-disk layout.
DEFAULT_STORE = "filesystem"


class ResultStore:
    """Base class of result-store backends.

    Subclasses implement the abstract methods below and set :attr:`kind`;
    they must also expose ``root`` (the store's path) and the cumulative
    ``hits`` / ``misses`` / ``writes`` counters the runner reports from.
    Semantics mirror :class:`~repro.exec.cache.ResultCache` exactly — in
    particular, malformed or non-finite records are *misses*, never errors.
    """

    #: Registry name of the backend (set on subclasses).
    kind = "abstract"

    root: Path
    hits: int
    misses: int
    writes: int

    # ------------------------------------------------------------ values
    def get(self, digest: str, strategy: str, seed: int) -> float | None:
        """Cached value for one key, or ``None`` on a miss (counters touched)."""
        raise NotImplementedError

    def probe(self, digest: str, strategy: str, seed: int) -> float | None:
        """Like :meth:`get`, but counter-neutral (availability polls)."""
        hits, misses = self.hits, self.misses
        value = self.get(digest, strategy, seed)
        self.hits, self.misses = hits, misses
        return value

    def put(self, digest: str, strategy: str, seed: int, value: float) -> None:
        """Store one value atomically (safe under concurrent writers)."""
        raise NotImplementedError

    # ------------------------------------------------------------ sidecars
    def get_trace(self, digest: str, strategy: str, seed: int) -> dict | None:
        """Trace-sidecar payload for one key, or ``None`` on a miss."""
        raise NotImplementedError

    def put_trace(self, digest: str, strategy: str, seed: int, payload: dict) -> None:
        """Store a trace sidecar, stamped with the current digest version."""
        raise NotImplementedError

    # ------------------------------------------------------------ raw access
    def iter_raw_entries(self) -> Iterator[RawRecord]:
        """Every entry as verbatim text (the lossless migration surface)."""
        raise NotImplementedError

    def iter_raw_traces(self) -> Iterator[RawRecord]:
        """Every trace sidecar as verbatim text."""
        raise NotImplementedError

    def put_raw_entry(self, digest: str, strategy: str, seed: int, body: str) -> None:
        """Store one entry's verbatim text, unchanged."""
        raise NotImplementedError

    def put_raw_trace(self, digest: str, strategy: str, seed: int, body: str) -> None:
        """Store one sidecar's verbatim text, unchanged."""
        raise NotImplementedError

    # ------------------------------------------------------------ maintenance
    def stats(self) -> CacheStats:
        """Aggregate entry/sidecar counts, bytes and digest versions."""
        raise NotImplementedError

    def gc(
        self,
        *,
        older_than_s: float | None = None,
        digest_version: str | None = None,
        dry_run: bool = False,
    ) -> GcReport:
        """Prune entries by age and/or digest version (see ``ResultCache.gc``)."""
        raise NotImplementedError

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release store resources (idempotent)."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ reporting
    def __len__(self) -> int:
        """Number of entries currently stored."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"{self.kind} store at {self.root}"


#: Registry of store backends: kind -> factory(path) -> store.
_STORE_FACTORIES: dict[str, Callable[[str | os.PathLike[str]], ResultStore]] = {}


def store_kinds() -> tuple[str, ...]:
    """Names of every currently registered store backend."""
    return tuple(_STORE_FACTORIES)


def register_store(
    kind: str,
    factory: Callable[[str | os.PathLike[str]], ResultStore],
    *,
    replace_existing: bool = False,
) -> None:
    """Register a result-store backend under ``kind``.

    ``factory`` receives the store path (a directory, a database file —
    whatever the backend keys on) and returns a :class:`ResultStore`.
    Registering an existing kind requires ``replace_existing=True`` so
    typos don't silently shadow built-ins.
    """
    if not kind:
        raise ConfigurationError("store kind must be non-empty")
    if kind in _STORE_FACTORIES and not replace_existing:
        raise ConfigurationError(
            f"store {kind!r} is already registered; pass replace_existing=True to override"
        )
    _STORE_FACTORIES[kind] = factory


def open_store(
    kind: str,
    path: str | os.PathLike[str],
    *,
    must_exist: bool = False,
) -> ResultStore:
    """Open (or create) the store of ``kind`` at ``path``.

    Unknown kinds fail with a did-you-mean suggestion; ``must_exist=True``
    refuses to create a missing store — the inspection commands use it so a
    typo'd path reports the mistake instead of a healthy empty store.
    """
    factory = _STORE_FACTORIES.get(kind)
    if factory is None:
        known = ", ".join(sorted(_STORE_FACTORIES))
        hint = ""
        close = difflib.get_close_matches(kind, _STORE_FACTORIES, n=1)
        if close:
            hint = f" (did you mean {close[0]!r}?)"
        raise ConfigurationError(
            f"unknown store kind {kind!r}; expected one of: {known}{hint}"
        )
    if must_exist and not Path(path).exists():
        raise ConfigurationError(f"no cache at {path}")
    return factory(path)

"""Unit constants and conversion helpers.

All quantities inside the library use SI base units: seconds for time,
bytes for data volumes, bytes/second for bandwidth, and plain node counts
for sizes.  The constants below are the conversion factors used at the API
boundary (workload definitions, experiment parameters, reports).

The storage-industry convention of the paper (GB = 1e9 bytes, TB = 1e12
bytes, PB = 1e15 bytes) is followed; powers of two are not used anywhere.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24.0 * HOUR
YEAR: float = 365.0 * DAY

# --- data ------------------------------------------------------------------
BYTE: float = 1.0
KB: float = 1e3
MB: float = 1e6
GB: float = 1e9
TB: float = 1e12
PB: float = 1e15


def hours(value: float) -> float:
    """Convert ``value`` hours to seconds."""
    return value * HOUR


def days(value: float) -> float:
    """Convert ``value`` days to seconds."""
    return value * DAY


def years(value: float) -> float:
    """Convert ``value`` years (365 days) to seconds."""
    return value * YEAR


def gigabytes(value: float) -> float:
    """Convert ``value`` gigabytes (1e9 bytes) to bytes."""
    return value * GB


def terabytes(value: float) -> float:
    """Convert ``value`` terabytes (1e12 bytes) to bytes."""
    return value * TB


def petabytes(value: float) -> float:
    """Convert ``value`` petabytes (1e15 bytes) to bytes."""
    return value * PB


def gb_per_s(value: float) -> float:
    """Convert ``value`` GB/s to bytes/s."""
    return value * GB


def to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / HOUR


def to_days(seconds: float) -> float:
    """Convert seconds to days."""
    return seconds / DAY


def to_years(seconds: float) -> float:
    """Convert seconds to years (365 days)."""
    return seconds / YEAR


def to_gb(nbytes: float) -> float:
    """Convert bytes to gigabytes (1e9 bytes)."""
    return nbytes / GB


def to_tb(nbytes: float) -> float:
    """Convert bytes to terabytes (1e12 bytes)."""
    return nbytes / TB

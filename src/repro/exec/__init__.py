"""repro.exec — parallel experiment execution and result caching.

The paper's experiments repeat full discrete-event simulations over many
independently seeded initial conditions.  Seed derivation
(:func:`repro.stats.montecarlo.derive_seeds`) guarantees that the i-th seed
depends only on the base seed and ``i``, so repetitions are embarrassingly
parallel; this package exploits that:

* :class:`~repro.exec.runner.ParallelRunner` — dispatches per-seed tasks
  through a registry of execution backends: serially (default, bit-identical
  to the historical code path), on a
  :class:`concurrent.futures.ProcessPoolExecutor` with chunked seed
  dispatch, or across machines via the ``"spool"`` backend
  (:mod:`repro.distributed`).  New backends plug in through
  :func:`~repro.exec.runner.register_backend`.
* :class:`~repro.exec.cache.ResultCache` — an on-disk cache keyed by
  ``(config digest, strategy, seed)`` so re-running a sweep with a larger
  ``num_runs`` only simulates the new seeds.
* :func:`~repro.exec.digest.config_digest` — the stable content digest of a
  :class:`~repro.simulation.config.SimulationConfig` that keys the cache.

Every experiment entry point (``monte_carlo``, ``run_cell``, ``run_sweep``,
the figure and ablation modules, and the CLI via ``--workers`` /
``--cache-dir``) accepts a runner; the default remains fully serial.
"""

from __future__ import annotations

from repro.exec.cache import CacheStats, GcReport, ResultCache
from repro.exec.digest import DIGEST_VERSION, config_digest
from repro.exec.runner import (
    BACKENDS,
    ExecutionBackend,
    ParallelRunner,
    ProgressEvent,
    RunnerStats,
    SeedBatch,
    WasteRatioTask,
    backend_names,
    register_backend,
)

__all__ = [
    "BACKENDS",
    "CacheStats",
    "DIGEST_VERSION",
    "ExecutionBackend",
    "GcReport",
    "ParallelRunner",
    "ProgressEvent",
    "ResultCache",
    "RunnerStats",
    "SeedBatch",
    "WasteRatioTask",
    "backend_names",
    "config_digest",
    "register_backend",
]

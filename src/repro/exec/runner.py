"""Parallel Monte-Carlo execution.

:class:`ParallelRunner` dispatches the independent repetitions of a
Monte-Carlo experiment through a pluggable *execution backend*.  Because
:func:`repro.stats.montecarlo.derive_seeds` makes the i-th seed depend only
on the base seed and ``i``, repetitions are embarrassingly parallel: a
backend merely changes *where* each seed is simulated, never *what* is
simulated, so every backend returns bit-identical per-seed values.

Built-in backends (see :data:`BACKENDS`):

* ``"serial"`` — in-process, the default; bit-identical to the historical
  code path and the reference every other backend is tested against.
* ``"process"`` — a lazily created :class:`ProcessPoolExecutor` with chunked
  seed dispatch; tasks must be picklable.
* ``"spool"`` — broker-less distributed execution through a filesystem work
  spool (:mod:`repro.distributed`): cache-miss seeds are enqueued as
  content-addressed task specs, independent ``worker`` processes (possibly
  on other machines sharing the directory) simulate them into the shared
  result cache, and the submitter polls the cache until the batch is
  complete.  Requires ``spool_dir`` and a cache.

New backends plug in through :func:`register_backend`: a factory taking the
runner and returning an :class:`ExecutionBackend` whose ``run`` receives a
:class:`SeedBatch` and returns ``{batch index -> value}``.  The contract
(recorded in ROADMAP.md) is bit-identical results, order-independent
completion, and idempotent re-execution.

The runner optionally consults a :class:`repro.exec.cache.ResultCache`
before dispatching: seeds whose ``(config digest, strategy, seed)`` key is
already on disk are served from the cache and only the remaining seeds are
dispatched.  Growing ``num_runs`` on an existing sweep therefore only pays
for the new seeds.

Tasks submitted to the ``"process"`` and ``"spool"`` backends must be
picklable — module-level functions or instances of module-level classes such
as :class:`WasteRatioTask`; lambdas and closures only work on the serial
backend.
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.digest import config_digest
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulation

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "ParallelRunner",
    "ProgressEvent",
    "RunnerStats",
    "SeedBatch",
    "WasteRatioTask",
    "backend_names",
    "register_backend",
]


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification for a batch of Monte-Carlo repetitions.

    ``completed`` counts both simulated and cache-served seeds; ``cached``
    counts only the latter, so ``completed - cached`` seeds were actually
    simulated so far.
    """

    label: str
    completed: int
    total: int
    cached: int = 0


@dataclass
class RunnerStats:
    """Cumulative execution counters of one :class:`ParallelRunner`.

    ``tasks_run`` counts seeds simulated by this process; ``remote_seeds``
    counts seeds a distributed backend observed being completed by remote
    workers (they appear in neither ``tasks_run`` nor ``cache_hits``).
    """

    tasks_run: int = 0
    cache_hits: int = 0
    batches: int = 0
    remote_seeds: int = 0

    def snapshot(self) -> "RunnerStats":
        """Independent copy (convenient for before/after comparisons)."""
        return replace(self)


@dataclass(frozen=True)
class WasteRatioTask:
    """Picklable per-seed task: simulate one config variant, return its waste.

    The stored configuration acts as a template; the per-repetition seed is
    substituted at call time.  Instances are sent to worker processes, so
    the template must remain picklable (which every
    :class:`~repro.simulation.config.SimulationConfig` of frozen dataclasses
    is).
    """

    config: SimulationConfig

    def __call__(self, seed: int) -> float:
        return Simulation(self.config.with_seed(seed)).run().waste_ratio


def _run_chunk(task: Callable[[int], float], seeds: Sequence[int]) -> list[float]:
    """Worker-side helper: evaluate ``task`` on a chunk of seeds, in order."""
    return [float(task(seed)) for seed in seeds]


# --------------------------------------------------------------- backends
@dataclass(frozen=True)
class SeedBatch:
    """One ``map_seeds`` batch handed to an execution backend.

    ``pending`` holds the ``(result index, seed)`` pairs still to be
    computed after cache hits were subtracted; ``total``/``cached`` describe
    the whole batch so backends can emit accurate progress events.
    ``cache_key`` is the ``(config digest, strategy)`` pair of the batch, or
    ``None`` for ad-hoc callables with no content digest.
    """

    task: Callable[[int], float]
    pending: tuple[tuple[int, int], ...]
    label: str
    total: int
    cached: int
    cache_key: tuple[str, str] | None = None


class ExecutionBackend:
    """Base class of :class:`ParallelRunner` execution backends.

    Subclasses implement :meth:`run`; backends that write computed values
    into the runner's cache themselves (distributed backends whose workers
    own the cache writes) set :attr:`persists_results` so the runner skips
    its own write-back loop.
    """

    #: True when ``run`` already persisted the computed values to the
    #: runner's cache (the runner then skips its write-back).
    persists_results = False

    def __init__(self, runner: "ParallelRunner") -> None:
        self.runner = runner

    def run(self, batch: SeedBatch) -> dict[int, float]:
        """Compute every pending seed; return ``{batch index -> value}``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent)."""


class SerialBackend(ExecutionBackend):
    """In-process execution, bit-identical to the historical code path."""

    def run(self, batch: SeedBatch) -> dict[int, float]:
        runner = self.runner
        computed: dict[int, float] = {}
        for index, seed in batch.pending:
            computed[index] = float(batch.task(seed))
            runner.stats.tasks_run += 1
            runner._emit(batch.label, batch.cached + len(computed), batch.total, batch.cached)
        return computed


class ProcessBackend(ExecutionBackend):
    """A lazily created, batch-spanning :class:`ProcessPoolExecutor`.

    The pool is reused across batches so a sweep pays worker startup once,
    not once per cell.
    """

    def __init__(self, runner: "ParallelRunner") -> None:
        super().__init__(runner)
        self._pool: ProcessPoolExecutor | None = None

    def run(self, batch: SeedBatch) -> dict[int, float]:
        runner = self.runner
        pending = list(batch.pending)
        workers = runner.workers or os.cpu_count() or 1
        chunk_size = runner.chunk_size or max(
            1, math.ceil(len(pending) / (min(workers, len(pending)) * 4))
        )
        chunks = [pending[start : start + chunk_size] for start in range(0, len(pending), chunk_size)]
        computed: dict[int, float] = {}
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=workers)
        futures = {
            self._pool.submit(_run_chunk, batch.task, [seed for _, seed in chunk]): chunk
            for chunk in chunks
        }
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                chunk = futures[future]
                for (index, _), value in zip(chunk, future.result()):
                    computed[index] = value
                runner.stats.tasks_run += len(chunk)
                runner._emit(batch.label, batch.cached + len(computed), batch.total, batch.cached)
        return computed

    def close(self) -> None:
        if self._pool is not None:
            # cancel_futures makes an interrupted campaign abandon queued
            # chunks instead of draining them before exiting.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def _make_spool_backend(runner: "ParallelRunner") -> ExecutionBackend:
    """Factory for the distributed spool backend (imported lazily so the
    core runner has no import-time dependency on :mod:`repro.distributed`)."""
    from repro.distributed.submit import SpoolBackend

    return SpoolBackend(runner)


#: Registry of execution backends: name -> factory(runner) -> backend.
_BACKEND_FACTORIES: dict[str, Callable[["ParallelRunner"], ExecutionBackend]] = {
    "serial": SerialBackend,
    "process": ProcessBackend,
    "spool": _make_spool_backend,
}


def backend_names() -> tuple[str, ...]:
    """Names of every currently registered execution backend."""
    return tuple(_BACKEND_FACTORIES)


def register_backend(
    name: str,
    factory: Callable[["ParallelRunner"], ExecutionBackend],
    *,
    replace_existing: bool = False,
) -> None:
    """Register an execution backend under ``name``.

    ``factory`` receives the owning :class:`ParallelRunner` and returns an
    :class:`ExecutionBackend`.  Registering an existing name requires
    ``replace_existing=True`` so typos don't silently shadow built-ins.
    """
    if not name:
        raise ConfigurationError("backend name must be non-empty")
    if name in _BACKEND_FACTORIES and not replace_existing:
        raise ConfigurationError(
            f"backend {name!r} is already registered; pass replace_existing=True to override"
        )
    _BACKEND_FACTORIES[name] = factory


#: Names of the backends registered at import time.  Backends registered
#: later through :func:`register_backend` appear in :func:`backend_names`.
BACKENDS: tuple[str, ...] = backend_names()


@dataclass
class ParallelRunner:
    """Executes per-seed experiment tasks through a pluggable backend.

    Attributes
    ----------
    backend:
        Name of a registered execution backend: ``"serial"`` (default; runs
        in-process, supports arbitrary callables), ``"process"``
        (ProcessPoolExecutor; tasks must be picklable) or ``"spool"``
        (filesystem work spool drained by external workers; requires
        ``spool_dir`` and a cache).
    workers:
        Worker-process count for the ``"process"`` backend; defaults to the
        machine's CPU count.  Ignored by the serial backend.
    chunk_size:
        Seeds dispatched per pool submission (process) or per spooled task
        spec (spool); defaults to roughly four chunks per worker, which
        balances load against IPC overhead.
    cache / cache_dir:
        Optional :class:`ResultCache` (or a directory path from which one is
        built) consulted for batches that provide a cache key.  Mandatory
        for the spool backend, where it is the channel workers deliver
        results through.
    spool_dir:
        Work-spool directory shared with the workers (spool backend only).
    spool_poll_s / spool_lease_ttl_s / spool_timeout_s:
        Spool-backend tuning: cache poll interval, lease expiry after which
        a crashed worker's task is reclaimed, and an optional overall
        timeout per batch (``None`` waits indefinitely).
    spool_max_inflight:
        Backpressure bound for the spool backend: at most this many task
        specs of one batch sit in the spool at a time; further specs are
        enqueued as earlier ones complete, so a huge campaign never floods
        the shared filesystem with pending files.
    progress:
        Optional callback invoked with a :class:`ProgressEvent` after each
        completed seed (serial), chunk (process) or poll progress (spool),
        and once up-front when a batch starts with cache hits.
    """

    backend: str = "serial"
    workers: int | None = None
    chunk_size: int | None = None
    cache: ResultCache | None = None
    cache_dir: str | os.PathLike[str] | None = None
    spool_dir: str | os.PathLike[str] | None = None
    spool_poll_s: float = 0.1
    spool_lease_ttl_s: float = 60.0
    spool_timeout_s: float | None = None
    spool_max_inflight: int = 128
    progress: Callable[[ProgressEvent], None] | None = None
    stats: RunnerStats = field(default_factory=RunnerStats)
    #: Lazily created backend instance, reused across batches so backends
    #: can keep expensive state (worker pools, spool handles) alive.
    _backend_impl: ExecutionBackend | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.backend not in _BACKEND_FACTORIES:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {', '.join(backend_names())}"
            )
        if self.workers is not None and self.workers <= 0:
            raise ConfigurationError("workers must be positive")
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        if self.spool_poll_s <= 0:
            raise ConfigurationError("spool_poll_s must be positive")
        if self.spool_lease_ttl_s <= 0:
            raise ConfigurationError("spool_lease_ttl_s must be positive")
        if self.spool_timeout_s is not None and self.spool_timeout_s <= 0:
            raise ConfigurationError("spool_timeout_s must be positive (or None to wait)")
        if self.spool_max_inflight <= 0:
            raise ConfigurationError("spool_max_inflight must be positive")
        if self.cache is None and self.cache_dir is not None:
            self.cache = ResultCache(self.cache_dir)
        if self.backend == "spool":
            if self.spool_dir is None:
                raise ConfigurationError(
                    "the spool backend needs spool_dir: the work-spool directory "
                    "shared with the worker processes"
                )
            if self.cache is None:
                raise ConfigurationError(
                    "the spool backend needs a result cache (cache or cache_dir) "
                    "shared with the workers; it is the channel results are "
                    "delivered through"
                )

    # ------------------------------------------------------------ execution
    def _backend(self) -> ExecutionBackend:
        if self._backend_impl is None:
            self._backend_impl = _BACKEND_FACTORIES[self.backend](self)
        return self._backend_impl

    def map_seeds(
        self,
        task: Callable[[int], float],
        seeds: Sequence[int],
        *,
        label: str = "",
        cache_key: tuple[str, str] | None = None,
    ) -> list[float]:
        """Evaluate ``task(seed)`` for every seed, preserving seed order.

        ``cache_key`` is the ``(config digest, strategy)`` pair under which
        per-seed values are cached; when omitted (or when the runner has no
        cache) every seed is simulated.
        """
        seeds = list(seeds)
        total = len(seeds)
        results: dict[int, float] = {}
        if self.cache is not None and cache_key is not None:
            digest, strategy = cache_key
            for index, seed in enumerate(seeds):
                value = self.cache.get(digest, strategy, int(seed))
                if value is not None:
                    results[index] = value
        cached = len(results)
        self.stats.cache_hits += cached
        self.stats.batches += 1
        pending = tuple((index, seed) for index, seed in enumerate(seeds) if index not in results)
        if cached and self.progress is not None:
            self.progress(ProgressEvent(label=label, completed=cached, total=total, cached=cached))
        if pending:
            backend = self._backend()
            computed = backend.run(
                SeedBatch(
                    task=task,
                    pending=pending,
                    label=label,
                    total=total,
                    cached=cached,
                    cache_key=cache_key,
                )
            )
            if (
                not backend.persists_results
                and self.cache is not None
                and cache_key is not None
            ):
                digest, strategy = cache_key
                for index, value in computed.items():
                    self.cache.put(digest, strategy, int(seeds[index]), value)
            results.update(computed)
        return [results[index] for index in range(total)]

    def run_config(
        self,
        config: SimulationConfig,
        seeds: Sequence[int],
        *,
        label: str | None = None,
    ) -> list[float]:
        """Simulate ``config`` once per seed and return the waste ratios.

        This is the cache-aware entry point used by the experiment harness:
        the cache key is derived from the configuration's content digest and
        its canonical strategy-spec string (``config.strategy`` is already
        normalised), so identical cells across sweeps — including two
        spellings of the same parameterized strategy — share cached values.
        """
        return self.map_seeds(
            WasteRatioTask(config),
            seeds,
            label=label if label is not None else config.strategy,
            cache_key=(config_digest(config), config.strategy),
        )

    # ------------------------------------------------------------ progress
    def _emit(self, label: str, completed: int, total: int, cached: int) -> None:
        if self.progress is not None:
            self.progress(ProgressEvent(label=label, completed=completed, total=total, cached=cached))

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release the backend's resources (idempotent; a later batch restarts)."""
        if self._backend_impl is not None:
            self._backend_impl.close()
            self._backend_impl = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""Parallel Monte-Carlo execution.

:class:`ParallelRunner` dispatches the independent repetitions of a
Monte-Carlo experiment either serially in-process (the default, and
bit-identical to the historical code path) or across a pool of worker
processes.  Because :func:`repro.stats.montecarlo.derive_seeds` makes the
i-th seed depend only on the base seed and ``i``, repetitions are
embarrassingly parallel: the runner merely changes *where* each seed is
simulated, never *what* is simulated, so both backends return bit-identical
per-seed values.

The runner optionally consults a :class:`repro.exec.cache.ResultCache`
before simulating: seeds whose ``(config digest, strategy, seed)`` key is
already on disk are served from the cache and only the remaining seeds are
dispatched.  Growing ``num_runs`` on an existing sweep therefore only pays
for the new seeds.

Tasks submitted to the ``"process"`` backend must be picklable — module-level
functions or instances of module-level classes such as
:class:`WasteRatioTask`; lambdas and closures only work on the serial
backend.
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.digest import config_digest
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulation

__all__ = ["BACKENDS", "ParallelRunner", "ProgressEvent", "RunnerStats", "WasteRatioTask"]

#: Supported execution backends.
BACKENDS: tuple[str, ...] = ("serial", "process")


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification for a batch of Monte-Carlo repetitions.

    ``completed`` counts both simulated and cache-served seeds; ``cached``
    counts only the latter, so ``completed - cached`` seeds were actually
    simulated so far.
    """

    label: str
    completed: int
    total: int
    cached: int = 0


@dataclass
class RunnerStats:
    """Cumulative execution counters of one :class:`ParallelRunner`."""

    tasks_run: int = 0
    cache_hits: int = 0
    batches: int = 0

    def snapshot(self) -> "RunnerStats":
        """Independent copy (convenient for before/after comparisons)."""
        return replace(self)


@dataclass(frozen=True)
class WasteRatioTask:
    """Picklable per-seed task: simulate one config variant, return its waste.

    The stored configuration acts as a template; the per-repetition seed is
    substituted at call time.  Instances are sent to worker processes, so
    the template must remain picklable (which every
    :class:`~repro.simulation.config.SimulationConfig` of frozen dataclasses
    is).
    """

    config: SimulationConfig

    def __call__(self, seed: int) -> float:
        return Simulation(self.config.with_seed(seed)).run().waste_ratio


def _run_chunk(task: Callable[[int], float], seeds: Sequence[int]) -> list[float]:
    """Worker-side helper: evaluate ``task`` on a chunk of seeds, in order."""
    return [float(task(seed)) for seed in seeds]


@dataclass
class ParallelRunner:
    """Executes per-seed experiment tasks serially or on a process pool.

    Attributes
    ----------
    backend:
        ``"serial"`` (default; runs in-process, supports arbitrary
        callables) or ``"process"`` (ProcessPoolExecutor; tasks must be
        picklable).
    workers:
        Worker-process count for the ``"process"`` backend; defaults to the
        machine's CPU count.  Ignored by the serial backend.
    chunk_size:
        Seeds dispatched per pool submission; defaults to roughly four
        chunks per worker, which balances load against IPC overhead.
    cache / cache_dir:
        Optional :class:`ResultCache` (or a directory path from which one is
        built) consulted for batches that provide a cache key.
    progress:
        Optional callback invoked with a :class:`ProgressEvent` after each
        completed seed (serial) or chunk (process), and once up-front when a
        batch starts with cache hits.
    """

    backend: str = "serial"
    workers: int | None = None
    chunk_size: int | None = None
    cache: ResultCache | None = None
    cache_dir: str | os.PathLike[str] | None = None
    progress: Callable[[ProgressEvent], None] | None = None
    stats: RunnerStats = field(default_factory=RunnerStats)
    #: Lazily created process pool, reused across batches so a sweep pays
    #: worker startup once, not once per cell.
    _pool: ProcessPoolExecutor | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {', '.join(BACKENDS)}"
            )
        if self.workers is not None and self.workers <= 0:
            raise ConfigurationError("workers must be positive")
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        if self.cache is None and self.cache_dir is not None:
            self.cache = ResultCache(self.cache_dir)

    # ------------------------------------------------------------ execution
    def map_seeds(
        self,
        task: Callable[[int], float],
        seeds: Sequence[int],
        *,
        label: str = "",
        cache_key: tuple[str, str] | None = None,
    ) -> list[float]:
        """Evaluate ``task(seed)`` for every seed, preserving seed order.

        ``cache_key`` is the ``(config digest, strategy)`` pair under which
        per-seed values are cached; when omitted (or when the runner has no
        cache) every seed is simulated.
        """
        seeds = list(seeds)
        total = len(seeds)
        results: dict[int, float] = {}
        if self.cache is not None and cache_key is not None:
            digest, strategy = cache_key
            for index, seed in enumerate(seeds):
                value = self.cache.get(digest, strategy, int(seed))
                if value is not None:
                    results[index] = value
        cached = len(results)
        self.stats.cache_hits += cached
        self.stats.batches += 1
        pending = [(index, seed) for index, seed in enumerate(seeds) if index not in results]
        if cached and self.progress is not None:
            self.progress(ProgressEvent(label=label, completed=cached, total=total, cached=cached))
        if pending:
            if self.backend == "process":
                computed = self._run_process(task, pending, label=label, total=total, cached=cached)
            else:
                computed = self._run_serial(task, pending, label=label, total=total, cached=cached)
            if self.cache is not None and cache_key is not None:
                digest, strategy = cache_key
                for index, value in computed.items():
                    self.cache.put(digest, strategy, int(seeds[index]), value)
            results.update(computed)
        return [results[index] for index in range(total)]

    def run_config(
        self,
        config: SimulationConfig,
        seeds: Sequence[int],
        *,
        label: str | None = None,
    ) -> list[float]:
        """Simulate ``config`` once per seed and return the waste ratios.

        This is the cache-aware entry point used by the experiment harness:
        the cache key is derived from the configuration's content digest and
        strategy, so identical cells across sweeps share cached values.
        """
        return self.map_seeds(
            WasteRatioTask(config),
            seeds,
            label=label if label is not None else config.strategy,
            cache_key=(config_digest(config), config.strategy),
        )

    # ------------------------------------------------------------ backends
    def _emit(self, label: str, completed: int, total: int, cached: int) -> None:
        if self.progress is not None:
            self.progress(ProgressEvent(label=label, completed=completed, total=total, cached=cached))

    def _run_serial(
        self,
        task: Callable[[int], float],
        pending: list[tuple[int, int]],
        *,
        label: str,
        total: int,
        cached: int,
    ) -> dict[int, float]:
        computed: dict[int, float] = {}
        for index, seed in pending:
            computed[index] = float(task(seed))
            self.stats.tasks_run += 1
            self._emit(label, cached + len(computed), total, cached)
        return computed

    def _run_process(
        self,
        task: Callable[[int], float],
        pending: list[tuple[int, int]],
        *,
        label: str,
        total: int,
        cached: int,
    ) -> dict[int, float]:
        workers = self.workers or os.cpu_count() or 1
        chunk_size = self.chunk_size or max(
            1, math.ceil(len(pending) / (min(workers, len(pending)) * 4))
        )
        chunks = [pending[start : start + chunk_size] for start in range(0, len(pending), chunk_size)]
        computed: dict[int, float] = {}
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=workers)
        futures = {
            self._pool.submit(_run_chunk, task, [seed for _, seed in chunk]): chunk
            for chunk in chunks
        }
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                chunk = futures[future]
                for (index, _), value in zip(chunk, future.result()):
                    computed[index] = value
                self.stats.tasks_run += len(chunk)
                self._emit(label, cached + len(computed), total, cached)
        return computed

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Shut down the worker pool (idempotent; a later batch restarts it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""On-disk cache of per-seed simulation results.

A :class:`ResultCache` stores one scalar metric per completed simulation,
keyed by ``(config digest, strategy, seed)``.  Re-running a sweep with a
larger ``num_runs`` therefore only simulates the seeds that were not seen
before, and re-rendering a figure from an unchanged configuration touches no
simulation at all.

Layout: one small JSON file per entry, ::

    <root>/<digest[:2]>/<digest>/<strategy>/<seed>.json

Sharding by digest prefix keeps directories small on large parameter
sweeps; one-file-per-entry keeps concurrent writers (parallel workers,
several processes sharing a cache directory) safe without locking — entries
are written atomically via a temporary file and :func:`os.replace`, and the
value for a given key is deterministic, so racing writers simply store the
same bytes.

Values round-trip exactly: Python's JSON encoder serialises floats with
``repr``, which is shortest-exact, so a cache hit is bit-identical to the
simulation it replaced.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["ResultCache"]


class ResultCache:
    """Persistent ``(config digest, strategy, seed) -> float`` mapping.

    Attributes
    ----------
    root:
        Cache directory (created on first use).
    hits / misses / writes:
        Cumulative counters, useful to assert cache behaviour in tests and
        to report effectiveness from benchmarks.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ConfigurationError(f"cache path {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------ layout
    def _entry_path(self, digest: str, strategy: str, seed: int) -> Path:
        return self.root / digest[:2] / digest / strategy / f"{seed}.json"

    # ------------------------------------------------------------ access
    def get(self, digest: str, strategy: str, seed: int) -> float | None:
        """Cached value for one key, or ``None`` on a miss.

        Corrupt entries never propagate: unreadable files, malformed or
        truncated JSON, wrong payload shapes and non-finite values (a
        truncated/garbled write can still parse — ``NaN``/``Infinity`` are
        valid JSON extensions, but never valid simulation results) all count
        as misses, so the seed is re-simulated and the entry rewritten
        instead of the corruption killing a whole campaign.
        """
        path = self._entry_path(digest, strategy, seed)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
            value = float(entry["value"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Unreadable or malformed entries (stray files, foreign formats)
            # count as misses: the seed is simply re-simulated.
            self.misses += 1
            return None
        if not math.isfinite(value):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, digest: str, strategy: str, seed: int, value: float) -> None:
        """Store one value atomically (safe under concurrent writers)."""
        path = self._entry_path(digest, strategy, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"digest": digest, "strategy": strategy, "seed": int(seed), "value": float(value)}
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(entry, handle)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.writes += 1

    # ------------------------------------------------------------ reporting
    def __len__(self) -> int:
        """Number of entries currently on disk (walks the cache tree)."""
        return sum(1 for _ in self.root.glob("*/*/*/*.json"))

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )

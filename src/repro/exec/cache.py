"""On-disk cache of per-seed simulation results.

A :class:`ResultCache` stores one scalar metric per completed simulation,
keyed by ``(config digest, strategy, seed)``.  Re-running a sweep with a
larger ``num_runs`` therefore only simulates the seeds that were not seen
before, and re-rendering a figure from an unchanged configuration touches no
simulation at all.

Layout: one small JSON file per entry, ::

    <root>/<digest[:2]>/<digest>/<strategy>/<seed>.json

Sharding by digest prefix keeps directories small on large parameter
sweeps; one-file-per-entry keeps concurrent writers (parallel workers,
several processes sharing a cache directory) safe without locking — entries
are written atomically via a temporary file and :func:`os.replace`, and the
value for a given key is deterministic, so racing writers simply store the
same bytes.

Values round-trip exactly: Python's JSON encoder serialises floats with
``repr``, which is shortest-exact, so a cache hit is bit-identical to the
simulation it replaced.

Each shard additionally keeps an append-only index journal
(``<shard>/.index.jsonl``, one record per entry/sidecar write) so
:meth:`ResultCache.stats` reads O(shards) files instead of stat-walking
every entry.  The journal is advisory (see :mod:`repro.exec.journal`):
shards without one — written by older code, or populated out-of-band — are
walked once and indexed; rewrites of the same path fold to the *latest*
record, so a corrupt-then-rewritten entry or sidecar counts once, not
twice; and :meth:`ResultCache.gc` rebuilds the journals from the directory
tree after pruning, which re-synchronises them with any external deletion.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import NamedTuple

from repro.errors import ConfigurationError
from repro.exec.journal import append_record, read_records

__all__ = ["CacheStats", "GcReport", "RawRecord", "ResultCache", "atomic_write_text"]

#: Name of the per-shard index journal (hidden: never globbed as an entry).
_INDEX_NAME = ".index.jsonl"


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + :func:`os.replace`).

    Safe under concurrent writers on the same filesystem: readers observe
    either the old content or the new, never a torn write.  Shared by the
    result cache and the distributed work spool, whose correctness both
    rest on this property.
    """
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False
    )
    try:
        with handle:
            handle.write(text)
        os.replace(handle.name, path)
    except BaseException:
        # BaseException, not OSError: a KeyboardInterrupt (or any other
        # non-OSError) escaping mid-write must not leak the temp file either.
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


class RawRecord(NamedTuple):
    """One entry or sidecar as verbatim text, keyed by its cache coordinates.

    The unit of store-to-store migration (:mod:`repro.store.migrate`):
    ``body`` is the exact on-disk text, so copying raw records between
    stores — filesystem to SQLite and back — is byte-lossless in both
    directions, even for entries written under older digest versions.
    """

    digest: str
    strategy: str
    seed: int
    body: str


def _body_version(body: str) -> str:
    """Digest-format version recorded in one entry body (``"corrupt"`` when
    unparseable, mirroring :meth:`ResultCache._entry_version`)."""
    try:
        return str(json.loads(body).get("version", "unversioned"))
    except (json.JSONDecodeError, AttributeError):
        return "corrupt"


@dataclass(frozen=True)
class CacheStats:
    """Aggregate statistics of one on-disk cache directory.

    ``versions`` maps each digest-format version found in the entries to its
    entry count; entries written before versions were recorded (PR ≤ 2) show
    up under ``"unversioned"``.
    """

    entries: int = 0
    total_bytes: int = 0
    versions: dict[str, int] = field(default_factory=dict)
    #: Trace sidecars (waste-decomposition drill-down payloads) and their
    #: bytes; sidecars ride along with entries and are not counted above.
    trace_sidecars: int = 0
    trace_bytes: int = 0


@dataclass(frozen=True)
class GcReport:
    """Outcome of one :meth:`ResultCache.gc` pass."""

    scanned: int = 0
    removed: int = 0
    reclaimed_bytes: int = 0
    dry_run: bool = False


class ResultCache:
    """Persistent ``(config digest, strategy, seed) -> float`` mapping.

    Attributes
    ----------
    root:
        Cache directory (created on first use).
    hits / misses / writes:
        Cumulative counters, useful to assert cache behaviour in tests and
        to report effectiveness from benchmarks.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ConfigurationError(f"cache path {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------ layout
    def _entry_path(self, digest: str, strategy: str, seed: int) -> Path:
        return self.root / digest[:2] / digest / strategy / f"{seed}.json"

    def _journal_path(self, shard: str) -> Path:
        return self.root / shard / _INDEX_NAME

    def _journal_put(self, kind: str, path: Path, size: int, version: str) -> None:
        """Record one write in the shard's index journal (best effort: a
        lost append degrades stats to the next walk, never breaks them)."""
        rel = path.relative_to(self.root).as_posix()
        shard = rel.split("/", 1)[0]
        try:
            append_record(
                self._journal_path(shard),
                {"kind": kind, "path": rel, "bytes": size, "version": version},
            )
        except OSError:
            pass

    # ------------------------------------------------------------ access
    def get(self, digest: str, strategy: str, seed: int) -> float | None:
        """Cached value for one key, or ``None`` on a miss.

        Corrupt entries never propagate: unreadable files, malformed or
        truncated JSON, wrong payload shapes and non-finite values (a
        truncated/garbled write can still parse — ``NaN``/``Infinity`` are
        valid JSON extensions, but never valid simulation results) all count
        as misses, so the seed is re-simulated and the entry rewritten
        instead of the corruption killing a whole campaign.
        """
        path = self._entry_path(digest, strategy, seed)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
            value = float(entry["value"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Unreadable or malformed entries (stray files, foreign formats)
            # count as misses: the seed is simply re-simulated.
            self.misses += 1
            return None
        if not math.isfinite(value):
            self.misses += 1
            return None
        self.hits += 1
        return value

    # The submitter-facing probe API: availability checks that do not skew
    # the hit/miss counters the runner reports for its own lookups.
    def probe(self, digest: str, strategy: str, seed: int) -> float | None:
        """Like :meth:`get`, but without touching the hit/miss counters.

        Distributed submitters poll the cache while remote workers fill it;
        counting every poll as a miss would make the runner's cache report
        meaningless, so availability probes are counter-neutral.
        """
        hits, misses = self.hits, self.misses
        value = self.get(digest, strategy, seed)
        self.hits, self.misses = hits, misses
        return value

    def put(self, digest: str, strategy: str, seed: int, value: float) -> None:
        """Store one value atomically (safe under concurrent writers)."""
        from repro.exec.digest import DIGEST_VERSION

        path = self._entry_path(digest, strategy, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "digest": digest,
            "strategy": strategy,
            "seed": int(seed),
            "value": float(value),
            "version": DIGEST_VERSION,
        }
        text = json.dumps(entry)
        atomic_write_text(path, text)
        self._journal_put("entry", path, len(text.encode("utf-8")), DIGEST_VERSION)
        self.writes += 1

    # ------------------------------------------------------------ trace sidecars
    # A drill-down (repro.trace) stores its full waste decomposition as a
    # *sidecar* next to the scalar entry it decomposes —
    # ``<root>/<digest[:2]>/<digest>/<strategy>/<seed>.trace`` — so re-drilling
    # a cell replays the decomposition instead of re-simulating it.  Sidecars
    # are versioned by DIGEST_VERSION with the same compatibility rule as
    # entries: a version mismatch is a miss (the cell's key no longer means
    # the same simulation), never an error.

    def trace_path(self, digest: str, strategy: str, seed: int) -> Path:
        """On-disk path of the trace sidecar of one ``(digest, strategy, seed)`` key."""
        return self._entry_path(digest, strategy, seed).with_suffix(".trace")

    def get_trace(self, digest: str, strategy: str, seed: int) -> dict | None:
        """Sidecar payload for one key, or ``None`` on a miss.

        Missing files, malformed JSON, non-dict payloads and payloads written
        under a different :data:`~repro.exec.digest.DIGEST_VERSION` all count
        as misses — the caller re-simulates and rewrites, exactly like scalar
        entries.
        """
        from repro.exec.digest import DIGEST_VERSION

        path = self.trace_path(digest, strategy, seed)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("version") != DIGEST_VERSION:
            return None
        return payload

    def put_trace(self, digest: str, strategy: str, seed: int, payload: dict) -> None:
        """Store a trace sidecar atomically, stamped with the digest version."""
        from repro.exec.digest import DIGEST_VERSION

        path = self.trace_path(digest, strategy, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps({**payload, "version": DIGEST_VERSION})
        atomic_write_text(path, text)
        self._journal_put("trace", path, len(text.encode("utf-8")), DIGEST_VERSION)

    # ------------------------------------------------------------ raw access
    # The migration surface used by repro.store: entries and sidecars travel
    # as verbatim text (RawRecord), so copying a cache into another store
    # backend and back reproduces every file byte-for-byte — including
    # entries written under older digest versions, which a value-level copy
    # would re-stamp.

    def _raw_record(self, path: Path) -> RawRecord | None:
        """The raw record behind one entry/sidecar path, or ``None`` for
        files that are not cache entries (stray names, foreign layouts)."""
        try:
            seed = int(path.stem)
        except ValueError:
            return None
        strategy = path.parent.name
        digest = path.parent.parent.name
        if path.parent.parent.parent.name != digest[:2]:
            return None  # not where this digest's entries live
        try:
            body = path.read_text(encoding="utf-8")
        except OSError:
            return None
        return RawRecord(digest, strategy, seed, body)

    def _iter_raw(self, suffix: str) -> Iterator[RawRecord]:
        for path in sorted(self.root.glob(f"*/*/*/*{suffix}")):
            record = self._raw_record(path)
            if record is not None:
                yield record

    def iter_raw_entries(self) -> Iterator[RawRecord]:
        """Every entry as verbatim text, in deterministic path order."""
        return self._iter_raw(".json")

    def iter_raw_traces(self) -> Iterator[RawRecord]:
        """Every trace sidecar as verbatim text, in deterministic path order."""
        return self._iter_raw(".trace")

    def put_raw_entry(self, digest: str, strategy: str, seed: int, body: str) -> None:
        """Store one entry's verbatim text (atomic; journal kept in sync).

        The body is written unchanged — no re-encoding, no version stamp —
        so a migrated cache is indistinguishable from the original.
        """
        path = self._entry_path(digest, strategy, int(seed))
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, body)
        self._journal_put("entry", path, len(body.encode("utf-8")), _body_version(body))

    def put_raw_trace(self, digest: str, strategy: str, seed: int, body: str) -> None:
        """Store one trace sidecar's verbatim text (atomic; journal kept in sync)."""
        path = self.trace_path(digest, strategy, int(seed))
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, body)
        self._journal_put("trace", path, len(body.encode("utf-8")), _body_version(body))

    # ------------------------------------------------------------ maintenance
    def _entries(self) -> Iterator[Path]:
        """Every entry file currently on disk (excluding in-flight temps)."""
        return self.root.glob("*/*/*/*.json")

    def _sidecars(self) -> Iterator[Path]:
        """Every trace sidecar on disk (same layout as :meth:`_entries`)."""
        return self.root.glob("*/*/*/*.trace")

    def _shard_names(self) -> list[str]:
        return sorted(
            path.name for path in self.root.iterdir() if path.is_dir()
        )

    @staticmethod
    def _entry_version(path: Path) -> str:
        try:
            with path.open("r", encoding="utf-8") as handle:
                return str(json.load(handle).get("version", "unversioned"))
        except (OSError, json.JSONDecodeError, AttributeError):
            # Unparseable entries still occupy their measured bytes, so
            # stats agrees with what `gc --digest-version corrupt` reclaims.
            return "corrupt"

    def _walk_shard(self, shard: str) -> dict[tuple[str, str], dict]:
        """Index one shard from its directory tree (the slow path)."""
        folded: dict[tuple[str, str], dict] = {}
        shard_dir = self.root / shard
        for suffix, kind in ((".json", "entry"), (".trace", "trace")):
            for path in shard_dir.glob(f"*/*/*{suffix}"):
                try:
                    size = path.stat().st_size
                except OSError:
                    size = 0
                rel = path.relative_to(self.root).as_posix()
                record = {"kind": kind, "path": rel, "bytes": size}
                if kind == "entry":
                    record["version"] = self._entry_version(path)
                folded[(kind, rel)] = record
        return folded

    def _write_shard_index(self, shard: str, folded: dict[tuple[str, str], dict]) -> None:
        """Persist one shard's folded index (or drop it when the shard is
        empty, so directory cleanup can remove the shard).  Best effort."""
        journal = self._journal_path(shard)
        try:
            if not folded:
                journal.unlink(missing_ok=True)
                return
            atomic_write_text(
                journal,
                "".join(
                    json.dumps(record, separators=(",", ":")) + "\n"
                    for record in folded.values()
                ),
            )
        except OSError:
            pass

    def _shard_index(self, shard: str) -> dict[tuple[str, str], dict]:
        """One shard's index, journal-first.

        A journaled shard is read from its journal alone — deduplicated by
        path with the latest record winning, so a corrupt-then-rewritten
        entry (or sidecar) on a resumed campaign is counted once.  A shard
        with no journal (older layout, or populated out-of-band) is walked
        once and its journal written, migrating it.
        """
        journal = self._journal_path(shard)
        if not journal.exists():
            folded = self._walk_shard(shard)
            self._write_shard_index(shard, folded)
            return folded
        folded = {}
        for record in read_records(journal):
            kind, rel = record.get("kind"), record.get("path")
            if kind not in ("entry", "trace") or not isinstance(rel, str):
                continue
            if rel.startswith("/") or ".." in rel.split("/"):
                continue  # a journal must never index outside the cache
            folded[(kind, rel)] = record
        return folded

    def stats(self) -> CacheStats:
        """Aggregate entry count, bytes and versions, one journal per shard.

        Costs O(shards touched): each journaled shard is one file read, and
        only journal-less shards fall back to a directory walk (which also
        writes their journal, so the walk happens once per shard ever).
        """
        entries = 0
        total_bytes = 0
        versions: dict[str, int] = {}
        trace_sidecars = 0
        trace_bytes = 0
        for shard in self._shard_names():
            for (kind, _), record in self._shard_index(shard).items():
                try:
                    size = int(record.get("bytes", 0))
                except (TypeError, ValueError):
                    size = 0
                if kind == "entry":
                    entries += 1
                    total_bytes += size
                    version = str(record.get("version", "unversioned"))
                    versions[version] = versions.get(version, 0) + 1
                else:
                    trace_sidecars += 1
                    trace_bytes += size
        return CacheStats(
            entries=entries,
            total_bytes=total_bytes,
            versions=dict(sorted(versions.items())),
            trace_sidecars=trace_sidecars,
            trace_bytes=trace_bytes,
        )

    def gc(
        self,
        *,
        older_than_s: float | None = None,
        digest_version: str | None = None,
        dry_run: bool = False,
    ) -> GcReport:
        """Prune entries so long-lived cache directories don't grow unbounded.

        ``older_than_s`` removes entries whose file modification time is more
        than that many seconds in the past; ``digest_version`` removes entries
        recorded under that digest-format version (``"unversioned"`` matches
        pre-version entries, ``"corrupt"`` matches unparseable ones).  With
        both criteria given an entry is removed when *either* matches; with
        neither, nothing is removed.  A removed entry takes its trace sidecar
        with it, and any criteria-bearing pass also sweeps *orphaned*
        sidecars (whose scalar entry is already gone — entry-based criteria
        could never judge them again).  Empty digest/strategy directories
        left behind are cleaned up as well.
        """
        if older_than_s is None and digest_version is None:
            return GcReport(scanned=sum(1 for _ in self._entries()), dry_run=dry_run)
        now = time.time()
        scanned = removed = reclaimed = 0
        for path in self._entries():
            scanned += 1
            try:
                stat = path.stat()
            except OSError:
                continue
            expired = older_than_s is not None and (now - stat.st_mtime) > older_than_s
            version_match = False
            if digest_version is not None:
                try:
                    with path.open("r", encoding="utf-8") as handle:
                        version = str(json.load(handle).get("version", "unversioned"))
                except (OSError, json.JSONDecodeError, AttributeError):
                    version = "corrupt"
                version_match = version == digest_version
            if not (expired or version_match):
                continue
            # A pruned entry takes its trace sidecar with it: a sidecar
            # without its scalar entry could otherwise outlive a prune
            # indefinitely (age/version criteria are judged on entries).
            # Its bytes count in dry runs too, so the estimate an operator
            # acts on matches what a real pass reclaims.
            sidecar = path.with_suffix(".trace")
            try:
                sidecar_size = sidecar.stat().st_size
            except OSError:
                sidecar_size = 0
            removed += 1
            reclaimed += stat.st_size + sidecar_size
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    removed -= 1
                    reclaimed -= stat.st_size + sidecar_size
                    continue
                try:
                    # missing_ok: "no sidecar" and "empty sidecar" differ —
                    # a 0-byte sidecar must still be unlinked or it orphans.
                    sidecar.unlink(missing_ok=True)
                except OSError:
                    reclaimed -= sidecar_size
        # Orphaned sidecars (scalar entry gone, e.g. a prior unlink race or
        # external deletion): no entry-based criterion can ever select them,
        # so any criteria-bearing gc pass reclaims them outright.
        for sidecar in self._sidecars():
            if sidecar.with_suffix(".json").exists():
                continue
            try:
                size = sidecar.stat().st_size
            except OSError:
                size = 0
            removed += 1
            reclaimed += size
            if not dry_run:
                try:
                    sidecar.unlink(missing_ok=True)
                except OSError:
                    removed -= 1
                    reclaimed -= size
        if not dry_run and removed:
            # The prune invalidated the shard journals; rebuild them from
            # the surviving tree (this also re-synchronises shards modified
            # out-of-band, e.g. entries deleted externally).  Emptied shards
            # drop their journal so the directory sweep can remove them.
            for shard in self._shard_names():
                self._write_shard_index(shard, self._walk_shard(shard))
            # Drop now-empty <strategy>/, <digest>/ and <shard>/ directories.
            for depth in ("*/*/*", "*/*", "*"):
                for directory in self.root.glob(depth):
                    try:
                        directory.rmdir()  # only succeeds when empty
                    except OSError:
                        pass
        return GcReport(scanned=scanned, removed=removed, reclaimed_bytes=reclaimed, dry_run=dry_run)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release store resources.

        A no-op for the filesystem layout (every operation is already
        self-contained), defined so callers can close any
        :class:`repro.store.ResultStore` uniformly.
        """

    # ------------------------------------------------------------ reporting
    def __len__(self) -> int:
        """Number of entries currently on disk (walks the cache tree)."""
        return sum(1 for _ in self._entries())

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )

"""Append-only JSONL journals: the lock-free index format of spool and cache.

Both the distributed work spool and the result cache keep *per-shard index
journals* so readers (``cache stats``, submitter progress polling) scale
with the number of shards touched instead of sweeping and stat-walking
every entry.  The format is deliberately minimal:

* one JSON object per line, appended with a single buffered write — on a
  POSIX filesystem ``O_APPEND`` writes of a short line are atomic, so any
  number of workers can append to the same shard journal without locks;
* a journal is *advisory*: it can lag the directory it indexes (a crash
  between a rename and its journal append), so every consumer must treat it
  as an accelerator over a slower ground truth (directory scan, cache
  probe), never as the source of record;
* a torn final line (a writer died mid-append, or the reader raced an
  append) is treated as absent: :func:`read_records` and
  :func:`tail_records` only consume newline-terminated lines and skip
  unparseable ones.

``tail_records`` supports incremental consumption: callers remember the
byte offset it returns and pass it back, so polling a journal costs one
``stat`` plus reading only the bytes appended since the previous poll.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["append_record", "read_records", "tail_records"]


def append_record(path: Path, record: dict) -> None:
    """Append one record as a single JSONL line (parents created on demand).

    The line is serialised first and written with one call, so concurrent
    appenders on the same filesystem interleave whole lines, never bytes.
    """
    line = json.dumps(record, separators=(",", ":")) + "\n"
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)


def tail_records(path: Path, offset: int = 0) -> tuple[list[dict], int]:
    """Records appended at or after ``offset``, plus the next offset.

    Returns ``([], offset)`` when the journal is missing or has not grown.
    The returned offset always lands on a line boundary: a torn final line
    (no trailing newline yet) is left for the next poll, so a reader never
    consumes half an append.  Unparseable complete lines are skipped — a
    corrupt journal degrades to "fewer events", never to an error.
    """
    try:
        size = os.stat(path).st_size
    except OSError:
        return [], offset
    if size <= offset:
        return [], offset
    with open(path, "rb") as handle:
        handle.seek(offset)
        chunk = handle.read(size - offset)
    end = chunk.rfind(b"\n")
    if end < 0:
        return [], offset  # only a torn line so far; re-read once completed
    records: list[dict] = []
    for raw in chunk[: end + 1].splitlines():
        try:
            record = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return records, offset + end + 1


def read_records(path: Path) -> list[dict]:
    """Every complete, parseable record of one journal (missing file = [])."""
    records, _ = tail_records(path, 0)
    return records

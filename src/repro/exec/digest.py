"""Stable content digests for simulation configurations.

The on-disk result cache (:mod:`repro.exec.cache`) is keyed by
``(config digest, strategy, seed)``.  The digest must therefore be a pure
function of every parameter that can change a simulation's *result* — the
platform, the application classes, the strategy and all numeric knobs — and
of nothing else.  In particular the per-run ``seed`` is excluded (it is a
separate key component) and so is ``collect_trace`` (tracing never changes
the simulated outcome, only what is recorded along the way).

Floats are serialised with :func:`repr`-exact JSON encoding, so two configs
hash equal iff they would produce bit-identical simulations.  The digest
embeds a format version; bump :data:`DIGEST_VERSION` whenever the simulator
changes behaviour in a way that invalidates cached values.

The ``strategy`` field enters the payload as its canonical spec string
(:func:`repro.iosched.spec.canonical_strategy`, applied by
``SimulationConfig``): the paper's seven legacy names stay bare strings —
keeping every pre-spec digest byte-identical without a version bump — while
non-default strategy parameters (``ordered[policy=fixed,period_s=1800]``)
become part of the key automatically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro.simulation.config import SimulationConfig

__all__ = ["DIGEST_VERSION", "config_digest"]

#: Cache-format version; bump to invalidate every previously cached result.
#: v2: SimulationConfig grew a ``failure_model`` field (pluggable failure
#: inter-arrival distributions), which changes the digest payload schema.
DIGEST_VERSION = "2"

#: Config fields excluded from the digest: the seed is a separate cache-key
#: component, trace collection does not affect simulated results, and the
#: simulator kernel is bound to a float-for-float equivalence contract
#: (:mod:`repro.sim.kernel`) — it changes wall-clock, never results, so two
#: configs differing only in kernel must share one cache entry.
_EXCLUDED_FIELDS = frozenset({"seed", "collect_trace", "kernel"})


def _encode(value: Any) -> Any:
    """Canonical JSON-encodable form of one config field value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = dataclasses.asdict(value)
        return {"__type__": type(value).__name__, **{k: _encode(v) for k, v in sorted(fields.items())}}
    if isinstance(value, (tuple, list)):
        return [_encode(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # Interference models and other pluggable objects: rely on their repr,
    # which each model defines to include its parameters.
    return {"__repr__": repr(value)}


def config_digest(config: SimulationConfig) -> str:
    """Hex SHA-256 digest of every result-affecting field of ``config``."""
    payload: dict[str, Any] = {"__version__": DIGEST_VERSION}
    for field in dataclasses.fields(config):
        if field.name in _EXCLUDED_FIELDS:
            continue
        payload[field.name] = _encode(getattr(config, field.name))
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

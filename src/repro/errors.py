"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch any library failure with a single ``except`` clause while still being
able to distinguish configuration errors from runtime simulation errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro package."""


class ConfigurationError(ReproError):
    """A platform, workload or simulation parameter is invalid."""


class SchedulingError(ReproError):
    """The job scheduler or an I/O scheduler was driven into an invalid state."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class AnalysisError(ReproError):
    """An analytical computation (lower bound, waste model) cannot be performed."""


class SpoolError(ReproError):
    """A distributed work-spool operation failed (remote task error, timeout,
    corrupt task spec)."""

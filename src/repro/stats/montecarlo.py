"""Monte-Carlo driver.

Each experiment of the paper is repeated over many randomly drawn initial
conditions (job mixes and failure traces); :func:`monte_carlo` runs a
user-provided experiment function once per derived seed and summarises the
resulting sample.

Repetitions can be dispatched to worker processes through
:class:`repro.exec.ParallelRunner` (``backend="process"``); because the i-th
derived seed depends only on the base seed and ``i``, the parallel path
returns bit-identical per-seed values and summaries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import AnalysisError
from repro.stats.summary import DistributionSummary, summarize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repro.exec uses us)
    from repro.exec.runner import ParallelRunner

__all__ = ["monte_carlo", "derive_seeds", "resolve_base_seed", "DerivedSeeds"]


class DerivedSeeds(list):
    """Seed list that remembers the resolved root entropy it was derived from.

    Behaves exactly like ``list[int]`` (equality, iteration, indexing), with
    one extra attribute, :attr:`base_entropy`: the concrete root entropy the
    seeds were spawned from.  When :func:`derive_seeds` is called with
    ``base_seed=None`` the operating-system entropy is resolved *once* and
    recorded here, so even "no seed" runs are reproducible after the fact —
    ``derive_seeds(seeds.base_entropy, n)`` regenerates the same seeds — and
    their results can be cached under a stable key.
    """

    def __init__(self, seeds, base_entropy: int) -> None:
        super().__init__(seeds)
        self.base_entropy = int(base_entropy)


def resolve_base_seed(base_seed: int | None) -> int:
    """Resolve ``None`` to fresh OS entropy; pass concrete seeds through.

    Seed derivation and result caching both need a concrete root value, so
    the "no seed" case must be resolved exactly once per sample (not once
    per repetition) and recorded; see :class:`DerivedSeeds`.
    """
    if base_seed is not None:
        return int(base_seed)
    entropy = np.random.SeedSequence().entropy
    assert entropy is not None  # SeedSequence() always gathers entropy
    return int(entropy)


def derive_seeds(base_seed: int | None, num_runs: int) -> DerivedSeeds:
    """Derive ``num_runs`` independent 63-bit seeds from ``base_seed``.

    The derivation uses :class:`numpy.random.SeedSequence` spawning, so the
    i-th derived seed depends only on ``base_seed`` and ``i`` (not on how
    many runs are requested), which lets a sweep grow its sample without
    invalidating earlier runs.  ``base_seed=None`` resolves fresh entropy
    once; the returned list records it as ``.base_entropy``.
    """
    if num_runs <= 0:
        raise AnalysisError("num_runs must be positive")
    entropy = resolve_base_seed(base_seed)
    seeds = DerivedSeeds(
        (
            int(
                np.random.SeedSequence(entropy=entropy, spawn_key=(index,))
                .generate_state(1, dtype=np.uint64)[0]
                >> 1
            )
            for index in range(num_runs)
        ),
        base_entropy=entropy,
    )
    return seeds


def monte_carlo(
    experiment: Callable[[int], float],
    *,
    num_runs: int,
    base_seed: int | None = None,
    reduce: Callable[[list[float]], DistributionSummary] = summarize,
    backend: str = "serial",
    workers: int | None = None,
    runner: "ParallelRunner | None" = None,
) -> DistributionSummary:
    """Run ``experiment(seed)`` for ``num_runs`` derived seeds and summarise.

    Parameters
    ----------
    experiment:
        Callable mapping a seed to a scalar metric (e.g. the waste ratio of
        one simulation run).  Must be picklable (a module-level function or
        callable instance) when the process backend is used.
    num_runs:
        Number of repetitions.
    base_seed:
        Root seed from which per-run seeds are derived.
    reduce:
        Reduction from the list of per-run values to a summary; defaults to
        :func:`repro.stats.summary.summarize`.
    backend / workers:
        ``"serial"`` (default) keeps the historical single-process path;
        ``"process"`` dispatches repetitions to a pool of ``workers``
        processes.  Both return bit-identical values.
    runner:
        A pre-configured :class:`repro.exec.ParallelRunner`; overrides
        ``backend``/``workers``.  Note that an attached result cache is not
        consulted here — arbitrary experiment callables have no content
        digest; caching applies to the config-based entry points
        (:meth:`~repro.exec.ParallelRunner.run_config` and the experiment
        harness built on it).
    """
    seeds = derive_seeds(base_seed, num_runs)
    if runner is None and backend == "serial":
        values = [float(experiment(seed)) for seed in seeds]
    else:
        if runner is None:
            from repro.exec.runner import ParallelRunner

            runner = ParallelRunner(backend=backend, workers=workers)
        values = runner.map_seeds(experiment, seeds)
    return reduce(values)

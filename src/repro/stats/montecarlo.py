"""Monte-Carlo driver.

Each experiment of the paper is repeated over many randomly drawn initial
conditions (job mixes and failure traces); :func:`monte_carlo` runs a
user-provided experiment function once per derived seed and summarises the
resulting sample.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import AnalysisError
from repro.stats.summary import DistributionSummary, summarize

__all__ = ["monte_carlo", "derive_seeds"]


def derive_seeds(base_seed: int | None, num_runs: int) -> list[int]:
    """Derive ``num_runs`` independent 63-bit seeds from ``base_seed``.

    The derivation uses :class:`numpy.random.SeedSequence` spawning, so the
    i-th derived seed depends only on ``base_seed`` and ``i`` (not on how
    many runs are requested), which lets a sweep grow its sample without
    invalidating earlier runs.
    """
    if num_runs <= 0:
        raise AnalysisError("num_runs must be positive")
    root = np.random.SeedSequence(base_seed)
    seeds: list[int] = []
    for index in range(num_runs):
        child = np.random.SeedSequence(
            entropy=root.entropy if root.entropy is not None else 0,
            spawn_key=(index,),
        )
        seeds.append(int(child.generate_state(1, dtype=np.uint64)[0] >> 1))
    return seeds


def monte_carlo(
    experiment: Callable[[int], float],
    *,
    num_runs: int,
    base_seed: int | None = None,
    reduce: Callable[[list[float]], DistributionSummary] = summarize,
) -> DistributionSummary:
    """Run ``experiment(seed)`` for ``num_runs`` derived seeds and summarise.

    Parameters
    ----------
    experiment:
        Callable mapping a seed to a scalar metric (e.g. the waste ratio of
        one simulation run).
    num_runs:
        Number of repetitions.
    base_seed:
        Root seed from which per-run seeds are derived.
    reduce:
        Reduction from the list of per-run values to a summary; defaults to
        :func:`repro.stats.summary.summarize`.
    """
    values = [float(experiment(seed)) for seed in derive_seeds(base_seed, num_runs)]
    return reduce(values)

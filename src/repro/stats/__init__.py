"""Monte-Carlo statistics collection.

* :mod:`repro.stats.summary` — distribution summaries (mean, quartiles and
  deciles) matching the candlestick plots of the paper.
* :mod:`repro.stats.montecarlo` — repeated evaluation of a stochastic
  experiment over independent seeds.
"""

from repro.stats.summary import DistributionSummary, summarize
from repro.stats.montecarlo import monte_carlo

__all__ = ["DistributionSummary", "summarize", "monte_carlo"]

"""Distribution summaries for Monte-Carlo results.

The paper reports each measurement as a candlestick: the box spans the first
and third quartiles, the whiskers the first and ninth deciles, and the
centre is the mean.  :class:`DistributionSummary` captures exactly those
statistics (plus the median and extrema) for a sample of waste ratios or any
other scalar metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import numpy as np

from repro.errors import AnalysisError

__all__ = ["DistributionSummary", "summarize"]


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of a scalar sample (candlestick-style)."""

    n: int
    mean: float
    std: float
    minimum: float
    decile1: float
    quartile1: float
    median: float
    quartile3: float
    decile9: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """All statistics as a plain dictionary (useful for tabulation)."""
        return {
            "n": float(self.n),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "d1": self.decile1,
            "q1": self.quartile1,
            "median": self.median,
            "q3": self.quartile3,
            "d9": self.decile9,
            "max": self.maximum,
        }

    def format(self, precision: int = 3) -> str:
        """Compact one-line rendering: ``mean [d1 q1 | q3 d9]``."""
        p = precision
        return (
            f"{self.mean:.{p}f} "
            f"[{self.decile1:.{p}f} {self.quartile1:.{p}f} | "
            f"{self.quartile3:.{p}f} {self.decile9:.{p}f}]"
        )


def summarize(values: Iterable[float]) -> DistributionSummary:
    """Compute a :class:`DistributionSummary` from a sample of values."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise AnalysisError("cannot summarize an empty sample")
    if not np.all(np.isfinite(data)):
        raise AnalysisError("sample contains non-finite values")
    d1, q1, med, q3, d9 = np.percentile(data, [10.0, 25.0, 50.0, 75.0, 90.0])
    # The exact mean lies in [min, max], but pairwise-summation rounding can
    # push np.mean a few ULPs outside (e.g. three identical denormals), so
    # clamp it back into the sample's range.
    mean = float(min(max(data.mean(), data.min()), data.max()))
    return DistributionSummary(
        n=int(data.size),
        mean=mean,
        std=float(data.std(ddof=0)),
        minimum=float(data.min()),
        decile1=float(d1),
        quartile1=float(q1),
        median=float(med),
        quartile3=float(q3),
        decile9=float(d9),
        maximum=float(data.max()),
    )

"""Command-line interface.

``coopckpt`` exposes the reproduction experiments and a single-run simulator
from the shell::

    coopckpt table1
    coopckpt lower-bound --bandwidth-gbs 40
    coopckpt simulate --strategy least-waste --bandwidth-gbs 80 --horizon-days 4
    coopckpt figure1 --num-runs 3 --horizon-days 6 [--chart] [--csv fig1.csv]
    coopckpt figure2 --num-runs 3 --workers 4 --cache-dir ~/.cache/coopckpt
    coopckpt figure3 --num-runs 2
    coopckpt ablation --study interference
    coopckpt trace --strategy least-waste --horizon-days 2
    coopckpt campaign --preset smoke --workers 4 --cache-dir ~/.cache/coopckpt
    coopckpt campaign --preset prospective-resilience --details --csv campaign.csv

Every experiment prints a plain-text table mirroring the corresponding table
or figure of the paper; the figure commands can additionally export CSV/JSON
and render an ASCII chart of the series.  The experiment subcommands accept
``--workers N`` to fan the Monte-Carlo repetitions out over worker processes
and ``--cache-dir PATH`` to reuse previously simulated (config, strategy,
seed) results from disk; both leave the numbers bit-identical to a serial,
uncached run.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.exec.runner import ParallelRunner
from repro.experiments.figure1 import Figure1Config, render_figure1, run_figure1
from repro.experiments.figure2 import Figure2Config, render_figure2, run_figure2
from repro.experiments.figure3 import Figure3Config, render_figure3, run_figure3
from repro.experiments.table1 import render_table1
from repro.experiments.theory import theoretical_waste
from repro.iosched.registry import STRATEGIES
from repro.scenarios.presets import CAMPAIGNS
from repro.simulation.simulator import run_simulation
from repro.units import HOUR
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform

__all__ = ["main", "build_parser"]


def _add_runner_arguments(sub: argparse.ArgumentParser) -> None:
    """Execution-backend options shared by the experiment subcommands."""
    sub.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the Monte-Carlo repetitions (1 = serial)",
    )
    sub.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="on-disk result cache; re-runs only simulate unseen seeds",
    )


def _runner_from_args(args: argparse.Namespace) -> ParallelRunner:
    """Build the experiment runner selected by ``--workers``/``--cache-dir``."""
    workers = getattr(args, "workers", 1)
    if workers <= 0:
        raise SystemExit("--workers must be positive")
    return ParallelRunner(
        backend="process" if workers > 1 else "serial",
        workers=workers,
        cache_dir=getattr(args, "cache_dir", None),
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the ``coopckpt`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="coopckpt",
        description=(
            "Reproduction of 'Optimal Cooperative Checkpointing for Shared "
            "High-Performance Computing Platforms' (Herault et al., IPDPS 2018)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (APEX workload characteristics)")

    bound = sub.add_parser("lower-bound", help="print the theoretical lower bound (Theorem 1)")
    bound.add_argument("--bandwidth-gbs", type=float, default=160.0)
    bound.add_argument("--node-mtbf-years", type=float, default=2.0)

    sim = sub.add_parser("simulate", help="run one simulation and print its summary")
    sim.add_argument("--strategy", choices=STRATEGIES, default="least-waste")
    sim.add_argument("--bandwidth-gbs", type=float, default=80.0)
    sim.add_argument("--node-mtbf-years", type=float, default=2.0)
    sim.add_argument("--horizon-days", type=float, default=6.0)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--fixed-period-hours", type=float, default=1.0)

    fig1 = sub.add_parser("figure1", help="waste ratio vs. bandwidth (Cielo)")
    fig1.add_argument("--num-runs", type=int, default=3)
    fig1.add_argument("--horizon-days", type=float, default=6.0)
    fig1.add_argument("--node-mtbf-years", type=float, default=2.0)
    fig1.add_argument(
        "--bandwidths-gbs", type=float, nargs="+", default=[40.0, 80.0, 120.0, 160.0]
    )
    fig1.add_argument("--detailed", action="store_true", help="include candlestick statistics")
    fig1.add_argument("--chart", action="store_true", help="append an ASCII chart of the series")
    fig1.add_argument("--csv", metavar="PATH", help="also write the series as CSV")
    fig1.add_argument("--json", metavar="PATH", help="also write the series as JSON")
    _add_runner_arguments(fig1)

    fig2 = sub.add_parser("figure2", help="waste ratio vs. node MTBF (Cielo, 40 GB/s)")
    fig2.add_argument("--num-runs", type=int, default=3)
    fig2.add_argument("--horizon-days", type=float, default=6.0)
    fig2.add_argument("--bandwidth-gbs", type=float, default=40.0)
    fig2.add_argument("--mtbf-years", type=float, nargs="+", default=[2.0, 5.0, 20.0, 50.0])
    fig2.add_argument("--detailed", action="store_true", help="include candlestick statistics")
    fig2.add_argument("--chart", action="store_true", help="append an ASCII chart of the series")
    fig2.add_argument("--csv", metavar="PATH", help="also write the series as CSV")
    fig2.add_argument("--json", metavar="PATH", help="also write the series as JSON")
    _add_runner_arguments(fig2)

    fig3 = sub.add_parser(
        "figure3", help="minimum bandwidth for 80%% efficiency (prospective system)"
    )
    fig3.add_argument("--num-runs", type=int, default=2)
    fig3.add_argument("--horizon-days", type=float, default=4.0)
    fig3.add_argument("--mtbf-years", type=float, nargs="+", default=[5.0, 15.0, 25.0])
    fig3.add_argument("--csv", metavar="PATH", help="also write the table as CSV")
    _add_runner_arguments(fig3)

    ablation = sub.add_parser("ablation", help="fixed-period and interference-model ablations")
    ablation.add_argument(
        "--study", choices=("fixed-period", "interference"), default="fixed-period"
    )
    ablation.add_argument("--bandwidth-gbs", type=float, default=60.0)
    ablation.add_argument("--node-mtbf-years", type=float, default=2.0)
    ablation.add_argument("--horizon-days", type=float, default=3.0)
    ablation.add_argument("--num-runs", type=int, default=2)
    ablation.add_argument(
        "--periods-hours", type=float, nargs="+", default=[0.5, 1.0, 2.0, 4.0],
        help="fixed periods to compare (fixed-period study)",
    )
    ablation.add_argument(
        "--alphas", type=float, nargs="+", default=[0.0, 0.25, 1.0],
        help="interference degradation factors (interference study)",
    )
    ablation.add_argument(
        "--strategy", choices=STRATEGIES, default=None,
        help="strategy to ablate (defaults per study)",
    )
    _add_runner_arguments(ablation)

    campaign = sub.add_parser(
        "campaign", help="run a scenario campaign (platform/failure/workload matrix)"
    )
    campaign.add_argument(
        "--preset", choices=sorted(CAMPAIGNS), default="smoke",
        help="campaign preset to expand (default: smoke)",
    )
    campaign.add_argument(
        "--num-runs", type=int, default=None,
        help="Monte-Carlo repetitions per (scenario, strategy) cell",
    )
    campaign.add_argument(
        "--horizon-days", type=float, default=None,
        help="simulated segment length per repetition",
    )
    campaign.add_argument(
        "--strategies", choices=STRATEGIES, nargs="+", default=None,
        help="strategy subset to compare (default: the preset's own set)",
    )
    campaign.add_argument(
        "--details", action="store_true",
        help="append per-scenario candlestick statistics",
    )
    campaign.add_argument(
        "--best-summary", action="store_true",
        help="re-simulate each scenario's best strategy once and print its full summary",
    )
    campaign.add_argument("--csv", metavar="PATH", help="also write every cell as CSV")
    _add_runner_arguments(campaign)

    trace = sub.add_parser("trace", help="run one simulation and print its job timeline")
    trace.add_argument("--strategy", choices=STRATEGIES, default="least-waste")
    trace.add_argument("--bandwidth-gbs", type=float, default=80.0)
    trace.add_argument("--node-mtbf-years", type=float, default=2.0)
    trace.add_argument("--horizon-days", type=float, default=2.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--max-events", type=int, default=40, help="timeline lines to print")

    return parser


def _cmd_table1(_: argparse.Namespace) -> str:
    return render_table1()


def _cmd_lower_bound(args: argparse.Namespace) -> str:
    platform = cielo_platform(
        bandwidth_gbs=args.bandwidth_gbs, node_mtbf_years=args.node_mtbf_years
    )
    workload = apex_workload(platform)
    bound = theoretical_waste(workload, platform)
    lines = [
        f"Theoretical lower bound on {platform.name} "
        f"({args.bandwidth_gbs:g} GB/s, {args.node_mtbf_years:g}-year node MTBF)",
        f"  constrained (lambda > 0) : {bound.constrained}",
        f"  lambda                   : {bound.lam:.3e}",
        f"  I/O pressure (Eq. 6)     : {bound.io_pressure:.3f}",
        f"  waste lower bound        : {bound.waste:.3f}",
        f"  efficiency upper bound   : {bound.efficiency:.3f}",
        "  per-class periods (hours):",
    ]
    for name, period, daly in zip(bound.class_names, bound.periods, bound.daly_periods):
        lines.append(f"    {name:<10}: optimal {period / HOUR:6.2f}  (Daly {daly / HOUR:6.2f})")
    return "\n".join(lines)


def _cmd_simulate(args: argparse.Namespace) -> str:
    platform = cielo_platform(
        bandwidth_gbs=args.bandwidth_gbs, node_mtbf_years=args.node_mtbf_years
    )
    result = run_simulation(
        platform=platform,
        workload=apex_workload(platform),
        strategy=args.strategy,
        horizon_days=args.horizon_days,
        seed=args.seed,
        fixed_period_s=args.fixed_period_hours * HOUR,
    )
    return result.summary()


def _sweep_output(result, rendered: str, args: argparse.Namespace, title: str) -> str:
    """Shared post-processing of the Figure 1/2 sweeps (detail, chart, export)."""
    from repro.experiments.export import sweep_to_csv, sweep_to_json, write_text
    from repro.experiments.plotting import sweep_chart
    from repro.experiments.report import render_sweep_detailed

    parts = [rendered]
    if getattr(args, "detailed", False):
        parts.append(render_sweep_detailed(result, title=f"{title} (detailed)"))
    if getattr(args, "chart", False):
        parts.append(sweep_chart(result))
    if getattr(args, "csv", None):
        path = write_text(args.csv, sweep_to_csv(result))
        parts.append(f"wrote {path}")
    if getattr(args, "json", None):
        path = write_text(args.json, sweep_to_json(result))
        parts.append(f"wrote {path}")
    return "\n\n".join(parts)


def _cmd_figure1(args: argparse.Namespace) -> str:
    config = Figure1Config(
        bandwidths_gbs=tuple(args.bandwidths_gbs),
        node_mtbf_years=args.node_mtbf_years,
        horizon_days=args.horizon_days,
        num_runs=args.num_runs,
    )
    result = run_figure1(config, runner=_runner_from_args(args))
    return _sweep_output(result, render_figure1(result), args, "Figure 1")


def _cmd_figure2(args: argparse.Namespace) -> str:
    config = Figure2Config(
        node_mtbf_years=tuple(args.mtbf_years),
        bandwidth_gbs=args.bandwidth_gbs,
        horizon_days=args.horizon_days,
        num_runs=args.num_runs,
    )
    result = run_figure2(config, runner=_runner_from_args(args))
    return _sweep_output(result, render_figure2(result), args, "Figure 2")


def _cmd_figure3(args: argparse.Namespace) -> str:
    config = Figure3Config(
        node_mtbf_years=tuple(args.mtbf_years),
        horizon_days=args.horizon_days,
        num_runs=args.num_runs,
    )
    result = run_figure3(config, runner=_runner_from_args(args))
    rendered = render_figure3(result)
    if args.csv:
        from repro.experiments.export import figure3_to_csv, write_text

        path = write_text(args.csv, figure3_to_csv(result))
        rendered += f"\n\nwrote {path}"
    return rendered


def _cmd_ablation(args: argparse.Namespace) -> str:
    from repro.experiments.ablation import (
        fixed_period_ablation,
        interference_model_ablation,
        render_ablation,
    )

    platform = cielo_platform(
        bandwidth_gbs=args.bandwidth_gbs, node_mtbf_years=args.node_mtbf_years
    )
    workload = apex_workload(platform)
    runner = _runner_from_args(args)
    if args.study == "fixed-period":
        cells = fixed_period_ablation(
            platform,
            workload,
            strategy=args.strategy or "oblivious-fixed",
            periods_hours=tuple(args.periods_hours),
            horizon_days=args.horizon_days,
            num_runs=args.num_runs,
            runner=runner,
        )
        title = (
            f"Fixed-period ablation on {platform.name} "
            f"({args.bandwidth_gbs:g} GB/s, {args.node_mtbf_years:g}-year node MTBF)"
        )
    else:
        cells = interference_model_ablation(
            platform,
            workload,
            strategy=args.strategy or "oblivious-daly",
            alphas=tuple(args.alphas),
            horizon_days=args.horizon_days,
            num_runs=args.num_runs,
            runner=runner,
        )
        title = (
            f"Interference-model ablation on {platform.name} "
            f"({args.bandwidth_gbs:g} GB/s, {args.node_mtbf_years:g}-year node MTBF)"
        )
    return render_ablation(title, cells)


def _cmd_campaign(args: argparse.Namespace) -> str:
    from repro.scenarios.presets import make_campaign
    from repro.scenarios.report import campaign_to_csv, render_campaign, render_campaign_details
    from repro.scenarios.runner import CampaignRunner

    overrides: dict[str, object] = {}
    if args.num_runs is not None:
        if args.num_runs <= 0:
            raise SystemExit("--num-runs must be positive")
        overrides["num_runs"] = args.num_runs
    if args.horizon_days is not None:
        overrides["horizon_days"] = args.horizon_days
    if args.strategies is not None:
        overrides["strategies"] = tuple(args.strategies)
    campaign = make_campaign(args.preset, **overrides)

    runner = CampaignRunner(runner=_runner_from_args(args))
    result = runner.run(campaign)
    parts = [campaign.describe(), "", render_campaign(result)]
    if args.details:
        parts.append("")
        parts.append(render_campaign_details(result))
    if args.best_summary:
        for outcome in result.outcomes:
            best = outcome.best_strategy()
            detail = runner.detail(outcome.scenario, best)
            parts.append("")
            parts.append(f"--- {outcome.scenario.name} / {best} (first seed) ---")
            parts.append(detail.summary())
    if args.cache_dir is not None and runner.runner.cache is not None:
        stats = runner.runner.stats
        parts.append("")
        parts.append(
            f"cache: {stats.cache_hits} hit(s), {stats.tasks_run} simulation(s) "
            f"this run ({runner.runner.cache.root})"
        )
    if args.csv:
        from repro.experiments.export import write_text

        path = write_text(args.csv, campaign_to_csv(result))
        parts.append("")
        parts.append(f"wrote {path}")
    return "\n".join(parts)


def _cmd_trace(args: argparse.Namespace) -> str:
    from repro.simulation.config import SimulationConfig
    from repro.simulation.simulator import Simulation
    from repro.units import DAY

    platform = cielo_platform(
        bandwidth_gbs=args.bandwidth_gbs, node_mtbf_years=args.node_mtbf_years
    )
    config = SimulationConfig(
        platform=platform,
        classes=tuple(apex_workload(platform)),
        strategy=args.strategy,
        horizon_s=args.horizon_days * DAY,
        warmup_s=0.0,
        cooldown_s=0.0,
        seed=args.seed,
        collect_trace=True,
    )
    simulation = Simulation(config)
    result = simulation.run()
    assert simulation.trace is not None
    lines = [result.summary(), "", f"timeline (first {args.max_events} events):"]
    for event in simulation.trace.events[: args.max_events]:
        detail = " ".join(f"{k}={v}" for k, v in sorted(event.detail.items()))
        lines.append(f"  t={event.time / HOUR:9.3f} h  {event.job_name:<14} {event.kind.value:<20} {detail}")
    intervals = simulation.trace.achieved_checkpoint_intervals()
    if intervals:
        lines.append("")
        lines.append("achieved checkpoint intervals (hours), per job:")
        for job_id, values in list(intervals.items())[:10]:
            formatted = ", ".join(f"{v / HOUR:.2f}" for v in values)
            lines.append(f"  job {job_id}: {formatted}")
    return "\n".join(lines)


_COMMANDS = {
    "table1": _cmd_table1,
    "lower-bound": _cmd_lower_bound,
    "simulate": _cmd_simulate,
    "figure1": _cmd_figure1,
    "figure2": _cmd_figure2,
    "figure3": _cmd_figure3,
    "ablation": _cmd_ablation,
    "campaign": _cmd_campaign,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface.

``coopckpt`` exposes the reproduction experiments and a single-run simulator
from the shell::

    coopckpt table1
    coopckpt strategies [--json]
    coopckpt lower-bound --bandwidth-gbs 40
    coopckpt simulate --strategy least-waste --bandwidth-gbs 80 --horizon-days 4
    coopckpt simulate --strategy "ordered[policy=fixed,period_s=1800]"
    coopckpt figure1 --num-runs 3 --horizon-days 6 [--chart] [--csv fig1.csv]
    coopckpt figure2 --num-runs 3 --workers 4 --cache-dir ~/.cache/coopckpt
    coopckpt figure3 --num-runs 2
    coopckpt ablation --study interference
    coopckpt trace --strategy least-waste --horizon-days 2
    coopckpt trace --campaign smoke --scenario "io=1,mtbf=short" \\
        --strategy least-waste --seed 0 --cache-dir ~/.cache/coopckpt --csv cell.csv
    coopckpt campaign --preset smoke --workers 4 --cache-dir ~/.cache/coopckpt
    coopckpt campaign --preset prospective-resilience --details --csv campaign.csv
    coopckpt campaign --file my-sweep.toml --backend spool --spool ./spool --cache-dir ./cache
    coopckpt worker --spool ./spool --cache-dir ./cache
    coopckpt cache stats --cache-dir ./cache
    coopckpt cache gc --cache-dir ./cache --older-than 30 --digest-version unversioned
    coopckpt cache export --cache-dir ./cache --to ./cache.sqlite
    coopckpt cache stats --cache-dir ./cache.sqlite --store sqlite
    coopckpt serve --port 8181 --cache-dir ./cache.sqlite --store sqlite --workers 4

Every experiment prints a plain-text table mirroring the corresponding table
or figure of the paper; the figure commands can additionally export CSV/JSON
and render an ASCII chart of the series.  The experiment subcommands accept
``--workers N`` to fan the Monte-Carlo repetitions out over worker processes,
``--cache-dir PATH`` to reuse previously simulated (config, strategy, seed)
results from disk, and ``--backend spool --spool DIR`` to distribute cells to
``worker`` daemons (any number, on any machines sharing the two
directories); all of it leaves the numbers bit-identical to a serial,
uncached run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from collections.abc import Sequence

from repro.errors import ConfigurationError, ReproError
from repro.exec.runner import ParallelRunner, backend_names
from repro.experiments.figure1 import Figure1Config, render_figure1, run_figure1
from repro.experiments.figure2 import Figure2Config, render_figure2, run_figure2
from repro.experiments.figure3 import Figure3Config, render_figure3, run_figure3
from repro.experiments.table1 import render_table1
from repro.experiments.theory import theoretical_waste
from repro.scenarios.presets import CAMPAIGNS
from repro.sim.kernel import kernel_names, set_default_kernel
from repro.simulation.simulator import run_simulation
from repro.store import DEFAULT_STORE, open_store, store_kinds
from repro.units import HOUR
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform

__all__ = ["main", "build_parser"]

_STRATEGY_HELP = (
    "a strategy name or parameterized spec, e.g. least-waste or "
    "'ordered[policy=fixed,period_s=1800]' (see `coopckpt strategies`)"
)


def _add_runner_arguments(sub: argparse.ArgumentParser) -> None:
    """Execution-backend options shared by the experiment subcommands."""
    sub.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the Monte-Carlo repetitions (1 = serial)",
    )
    sub.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="on-disk result cache; re-runs only simulate unseen seeds",
    )
    _add_store_argument(sub)
    sub.add_argument(
        "--backend", choices=backend_names(), default=None,
        help="execution backend (default: serial, or process when --workers > 1); "
        "'spool' distributes cells to external `worker` daemons via --spool",
    )
    sub.add_argument(
        "--spool", metavar="DIR", default=None,
        help="work-spool directory shared with `worker` daemons (spool backend)",
    )
    sub.add_argument(
        "--spool-timeout", type=float, default=None, metavar="S",
        help="abort a spooled batch after S seconds without completion "
        "(default: wait indefinitely)",
    )
    sub.add_argument(
        "--lease-ttl", type=float, default=60.0, metavar="S",
        help="spool lease expiry before an abandoned task is reclaimed; each "
        "claim is judged by the TTL its claiming worker recorded, so this "
        "only governs claims with no metadata (spool backend, default 60)",
    )
    sub.add_argument(
        "--max-inflight", type=int, default=128, metavar="N",
        help="backpressure: at most N task specs of one batch sit in the "
        "spool at a time; the rest enter as earlier ones complete "
        "(spool backend, default 128)",
    )
    _add_kernel_argument(sub)


def _add_store_argument(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--store", metavar="KIND", default=None,
        help="result-store backend behind --cache-dir: "
        f"{', '.join(store_kinds())} (default: {DEFAULT_STORE}; third-party "
        "kinds via repro.store.register_store)",
    )


def _add_kernel_argument(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--kernel", choices=kernel_names(), default=None,
        help="simulator kernel: 'python' (reference) or 'numpy' (batched "
        "fast path); kernels are float-for-float equivalent, so this only "
        "changes wall-clock (default: python, or $REPRO_SIM_KERNEL)",
    )


def _runner_from_args(args: argparse.Namespace) -> ParallelRunner:
    """Build (once) the runner selected by ``--backend``/``--workers``/``--cache-dir``.

    The runner is remembered on ``args`` so :func:`main` can shut its
    backend down (worker pools included) on success, failure and Ctrl-C
    alike.
    """
    existing = getattr(args, "_runner", None)
    if existing is not None:
        return existing
    workers = getattr(args, "workers", 1)
    if workers <= 0:
        raise ConfigurationError("--workers must be positive")
    backend = getattr(args, "backend", None)
    if backend is None:
        backend = "process" if workers > 1 else "serial"
    runner = ParallelRunner(
        backend=backend,
        workers=workers,
        cache=_store_from_args(args),
        spool_dir=getattr(args, "spool", None),
        spool_timeout_s=getattr(args, "spool_timeout", None),
        spool_lease_ttl_s=getattr(args, "lease_ttl", 60.0),
        spool_max_inflight=getattr(args, "max_inflight", 128),
    )
    args._runner = runner
    return runner


def _store_from_args(args: argparse.Namespace):
    """Open (once) the result store selected by ``--store``/``--cache-dir``.

    Like the runner, the store is remembered on ``args`` so :func:`main`
    closes it on every exit path (a SQLite store checkpoints its WAL on
    close).  No ``--cache-dir`` means no store — and ``--store`` alone is a
    loud error rather than a silently uncached run.
    """
    existing = getattr(args, "_store", None)
    if existing is not None:
        return existing
    cache_dir = getattr(args, "cache_dir", None)
    kind = getattr(args, "store", None)
    if cache_dir is None:
        if kind is not None:
            raise ConfigurationError(
                "--store selects the backend of --cache-dir; add "
                "--cache-dir PATH to attach a cache"
            )
        return None
    store = open_store(kind or DEFAULT_STORE, cache_dir)
    args._store = store
    return store


def build_parser() -> argparse.ArgumentParser:
    """Build the ``coopckpt`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="coopckpt",
        description=(
            "Reproduction of 'Optimal Cooperative Checkpointing for Shared "
            "High-Performance Computing Platforms' (Herault et al., IPDPS 2018)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (APEX workload characteristics)")

    strategies = sub.add_parser(
        "strategies",
        help="list registered strategy kinds, their parameters and the spec syntax",
    )
    strategies.add_argument(
        "--json", action="store_true", help="machine-readable JSON instead of text"
    )

    bound = sub.add_parser("lower-bound", help="print the theoretical lower bound (Theorem 1)")
    bound.add_argument("--bandwidth-gbs", type=float, default=160.0)
    bound.add_argument("--node-mtbf-years", type=float, default=2.0)

    sim = sub.add_parser("simulate", help="run one simulation and print its summary")
    sim.add_argument("--strategy", default="least-waste", metavar="SPEC", help=_STRATEGY_HELP)
    sim.add_argument("--bandwidth-gbs", type=float, default=80.0)
    sim.add_argument("--node-mtbf-years", type=float, default=2.0)
    sim.add_argument("--horizon-days", type=float, default=6.0)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--fixed-period-hours", type=float, default=1.0)
    _add_kernel_argument(sim)

    fig1 = sub.add_parser("figure1", help="waste ratio vs. bandwidth (Cielo)")
    fig1.add_argument("--num-runs", type=int, default=3)
    fig1.add_argument("--horizon-days", type=float, default=6.0)
    fig1.add_argument("--node-mtbf-years", type=float, default=2.0)
    fig1.add_argument(
        "--bandwidths-gbs", type=float, nargs="+", default=[40.0, 80.0, 120.0, 160.0]
    )
    fig1.add_argument("--detailed", action="store_true", help="include candlestick statistics")
    fig1.add_argument("--chart", action="store_true", help="append an ASCII chart of the series")
    fig1.add_argument("--csv", metavar="PATH", help="also write the series as CSV")
    fig1.add_argument("--json", metavar="PATH", help="also write the series as JSON")
    _add_runner_arguments(fig1)

    fig2 = sub.add_parser("figure2", help="waste ratio vs. node MTBF (Cielo, 40 GB/s)")
    fig2.add_argument("--num-runs", type=int, default=3)
    fig2.add_argument("--horizon-days", type=float, default=6.0)
    fig2.add_argument("--bandwidth-gbs", type=float, default=40.0)
    fig2.add_argument("--mtbf-years", type=float, nargs="+", default=[2.0, 5.0, 20.0, 50.0])
    fig2.add_argument("--detailed", action="store_true", help="include candlestick statistics")
    fig2.add_argument("--chart", action="store_true", help="append an ASCII chart of the series")
    fig2.add_argument("--csv", metavar="PATH", help="also write the series as CSV")
    fig2.add_argument("--json", metavar="PATH", help="also write the series as JSON")
    _add_runner_arguments(fig2)

    fig3 = sub.add_parser(
        "figure3", help="minimum bandwidth for 80%% efficiency (prospective system)"
    )
    fig3.add_argument("--num-runs", type=int, default=2)
    fig3.add_argument("--horizon-days", type=float, default=4.0)
    fig3.add_argument("--mtbf-years", type=float, nargs="+", default=[5.0, 15.0, 25.0])
    fig3.add_argument("--csv", metavar="PATH", help="also write the table as CSV")
    _add_runner_arguments(fig3)

    ablation = sub.add_parser("ablation", help="fixed-period and interference-model ablations")
    ablation.add_argument(
        "--study", choices=("fixed-period", "interference"), default="fixed-period"
    )
    ablation.add_argument("--bandwidth-gbs", type=float, default=60.0)
    ablation.add_argument("--node-mtbf-years", type=float, default=2.0)
    ablation.add_argument("--horizon-days", type=float, default=3.0)
    ablation.add_argument("--num-runs", type=int, default=2)
    ablation.add_argument(
        "--periods-hours", type=float, nargs="+", default=[0.5, 1.0, 2.0, 4.0],
        help="fixed periods to compare (fixed-period study)",
    )
    ablation.add_argument(
        "--alphas", type=float, nargs="+", default=[0.0, 0.25, 1.0],
        help="interference degradation factors (interference study)",
    )
    ablation.add_argument(
        "--strategy", default=None, metavar="SPEC",
        help=f"strategy to ablate (defaults per study); {_STRATEGY_HELP}",
    )
    _add_runner_arguments(ablation)

    campaign = sub.add_parser(
        "campaign", help="run a scenario campaign (platform/failure/workload matrix)"
    )
    campaign_source = campaign.add_mutually_exclusive_group()
    campaign_source.add_argument(
        "--preset", choices=sorted(CAMPAIGNS), default=None,
        help="campaign preset to expand (default: smoke)",
    )
    campaign_source.add_argument(
        "--file", metavar="PATH", default=None,
        help="user-defined campaign matrix (TOML or JSON; see Campaign.from_file)",
    )
    campaign.add_argument(
        "--num-runs", type=int, default=None,
        help="Monte-Carlo repetitions per (scenario, strategy) cell",
    )
    campaign.add_argument(
        "--horizon-days", type=float, default=None,
        help="simulated segment length per repetition",
    )
    campaign.add_argument(
        "--strategies", nargs="+", default=None, metavar="SPEC",
        help=f"strategies to compare (default: the preset's own set); {_STRATEGY_HELP}",
    )
    campaign.add_argument(
        "--details", action="store_true",
        help="append per-scenario candlestick statistics",
    )
    campaign.add_argument(
        "--best-summary", action="store_true",
        help="re-simulate each scenario's best strategy once and print its full summary",
    )
    campaign.add_argument("--csv", metavar="PATH", help="also write every cell as CSV")
    _add_runner_arguments(campaign)

    worker = sub.add_parser(
        "worker",
        help="run a spool-draining worker daemon (distributed campaign execution)",
    )
    worker.add_argument(
        "--spool", metavar="DIR", required=True,
        help="work-spool directory shared with the submitter and other workers",
    )
    worker.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="shared result cache results are delivered through "
        "(required unless --status)",
    )
    _add_store_argument(worker)
    worker.add_argument(
        "--worker-id", metavar="ID", default=None,
        help="identity recorded in claims (default: <host>-<pid>)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="S",
        help="sleep between claim attempts when the spool is empty (default: 0.5)",
    )
    worker.add_argument(
        "--lease-ttl", type=float, default=60.0, metavar="S",
        help="lease expiry after which peers reclaim this worker's tasks "
        "(default: 60; heartbeats run at a quarter of this)",
    )
    worker.add_argument(
        "--batch-size", type=int, default=8, metavar="N",
        help="tasks claimed per shard rename (default: 8); the excess of a "
        "bigger shard is handed straight back to peers",
    )
    worker.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="exit after completing N tasks (default: unbounded)",
    )
    worker.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve /metrics and /healthz JSON on this local port "
        "(0 = OS-assigned; the chosen port is printed at startup)",
    )
    worker.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON log lines (one object per event) instead "
        "of human-oriented text",
    )
    worker.add_argument(
        "--drain", action="store_true",
        help="exit once the spool is fully drained (no pending or claimed tasks)",
    )
    worker.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="exit after S seconds without claiming any task",
    )
    worker.add_argument(
        "--status", action="store_true",
        help="print the spool's task counts and exit (no work is claimed)",
    )
    worker.add_argument("--quiet", action="store_true", help="suppress per-task log lines")
    _add_kernel_argument(worker)

    cache = sub.add_parser("cache", help="inspect, prune and migrate a result store")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count, bytes and digest versions present"
    )
    cache_stats.add_argument("--cache-dir", metavar="PATH", required=True)
    _add_store_argument(cache_stats)
    cache_gc = cache_sub.add_parser(
        "gc", help="prune entries by age and/or digest version"
    )
    cache_gc.add_argument("--cache-dir", metavar="PATH", required=True)
    _add_store_argument(cache_gc)
    cache_gc.add_argument(
        "--older-than", type=float, default=None, metavar="DAYS",
        help="remove entries not written/refreshed for this many days",
    )
    cache_gc.add_argument(
        "--digest-version", metavar="V", default=None,
        help="remove entries recorded under digest-format version V "
        "('unversioned' matches pre-version entries)",
    )
    cache_gc.add_argument(
        "--dry-run", action="store_true", help="report what would be removed, remove nothing"
    )
    cache_export = cache_sub.add_parser(
        "export",
        help="copy every entry losslessly into another store "
        "(e.g. filesystem directory -> one SQLite file)",
    )
    cache_export.add_argument(
        "--cache-dir", metavar="PATH", required=True, help="source store path"
    )
    _add_store_argument(cache_export)
    cache_export.add_argument(
        "--to", metavar="PATH", required=True, help="destination store path"
    )
    cache_export.add_argument(
        "--to-store", metavar="KIND", default=None,
        help="destination backend (default: sqlite when the source is "
        "filesystem, filesystem otherwise)",
    )
    cache_import = cache_sub.add_parser(
        "import",
        help="copy every entry losslessly from another store into --cache-dir",
    )
    cache_import.add_argument(
        "--cache-dir", metavar="PATH", required=True, help="destination store path"
    )
    _add_store_argument(cache_import)
    cache_import.add_argument(
        "--from", dest="from_path", metavar="PATH", required=True,
        help="source store path",
    )
    cache_import.add_argument(
        "--from-store", metavar="KIND", default=None,
        help="source backend (default: sqlite when the destination is "
        "filesystem, filesystem otherwise)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve campaign results over HTTP: submit campaigns, poll "
        "progress, list cells, export CSV, drill into waste decompositions",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default: 127.0.0.1; 0.0.0.0 exposes the "
        "service to the network)",
    )
    serve.add_argument(
        "--port", type=int, default=8181, metavar="PORT",
        help="port to bind (default: 8181; 0 = OS-assigned, printed at startup)",
    )
    serve.add_argument(
        "--cache-dir", metavar="PATH", required=True,
        help="result store every job reads and warms (created if missing)",
    )
    _add_store_argument(serve)
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes per running job (1 = in-process serial)",
    )
    _add_kernel_argument(serve)

    trace = sub.add_parser(
        "trace",
        help="job timeline of one simulation, or the waste decomposition of "
        "one campaign cell (--campaign)",
    )
    trace.add_argument(
        "--strategy", default=None, metavar="SPEC",
        help=f"{_STRATEGY_HELP} (default: least-waste, or the campaign "
        "scenario's first strategy)",
    )
    # Timeline-mode knobs default to None so campaign mode can reject them
    # loudly instead of silently ignoring them (defaults in _cmd_trace).
    trace.add_argument("--bandwidth-gbs", type=float, default=None, help="timeline mode (default 80)")
    trace.add_argument("--node-mtbf-years", type=float, default=None, help="timeline mode (default 2)")
    trace.add_argument("--horizon-days", type=float, default=None, help="timeline mode (default 2)")
    trace.add_argument(
        "--seed", type=int, default=0,
        help="simulation seed; with --campaign, the 0-based repetition index "
        "within the cell (selects the N-th derived seed)",
    )
    trace.add_argument(
        "--max-events", type=int, default=None,
        help="timeline lines to print (timeline mode, default 40)",
    )
    trace.add_argument(
        "--campaign", metavar="NAME|PATH", default=None,
        help="drill into one campaign cell: a preset name "
        f"({', '.join(sorted(CAMPAIGNS))}) or a TOML/JSON campaign file",
    )
    trace.add_argument(
        "--scenario", metavar="NAME", default=None,
        help="expanded scenario name within the campaign, e.g. "
        "'io=1,mtbf=short' (default: the campaign's only scenario)",
    )
    trace.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write the waste decomposition as CSV (--campaign mode)",
    )
    trace.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="result cache: re-drilling a cell replays its trace sidecar for "
        "free, and the decomposition is verified against the cell's cached "
        "waste value (--campaign mode)",
    )
    _add_store_argument(trace)

    lint = sub.add_parser(
        "lint",
        help="static contract checks: determinism, fsops, digest, lock and "
        "registry discipline (also: python -m repro.analysis)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    return parser


def _cmd_table1(_: argparse.Namespace) -> str:
    return render_table1()


def _cmd_strategies(args: argparse.Namespace) -> str:
    import json

    from repro.iosched.spec import kind_info, legacy_strategy_names, strategy_kinds

    kinds = {name: kind_info(name) for name in strategy_kinds()}
    if args.json:
        payload = {
            "syntax": "kind or kind[param=value,...]",
            "kinds": {
                name: {
                    "description": info.description,
                    "display": info.display,
                    "params": [
                        {
                            "name": param.name,
                            "type": param.type.__name__,
                            "default": param.default,
                            "choices": list(param.choices) if param.choices else None,
                            "help": param.help,
                        }
                        for param in info.params
                    ],
                }
                for name, info in kinds.items()
            },
            "legacy": list(legacy_strategy_names()),
        }
        return json.dumps(payload, indent=2)
    lines = [
        "Strategy specs: <kind> or <kind>[param=value,...], e.g. "
        "ordered[policy=fixed,period_s=1800]",
        "",
    ]
    for name, info in kinds.items():
        lines.append(f"{name} — {info.description}" if info.description else name)
        for param in info.params:
            default = param.describe_default()
            detail = f"default {default}"
            if param.choices:
                choices = ", ".join(map(str, param.choices))
                detail += f", one of: {choices}"
            lines.append(
                f"  {param.name:<10} {param.type.__name__:<6} {detail:<28} {param.help}"
            )
        lines.append("")
    lines.append(
        "Legacy names (aliases, also the cache-key form of their combination):"
    )
    lines.append("  " + ", ".join(legacy_strategy_names()))
    lines.append("")
    lines.append(
        "Third-party strategies: repro.iosched.register_strategy(kind, factory) — "
        "see the README's 'Custom strategies' section."
    )
    return "\n".join(lines)


def _cmd_lower_bound(args: argparse.Namespace) -> str:
    platform = cielo_platform(
        bandwidth_gbs=args.bandwidth_gbs, node_mtbf_years=args.node_mtbf_years
    )
    workload = apex_workload(platform)
    bound = theoretical_waste(workload, platform)
    lines = [
        f"Theoretical lower bound on {platform.name} "
        f"({args.bandwidth_gbs:g} GB/s, {args.node_mtbf_years:g}-year node MTBF)",
        f"  constrained (lambda > 0) : {bound.constrained}",
        f"  lambda                   : {bound.lam:.3e}",
        f"  I/O pressure (Eq. 6)     : {bound.io_pressure:.3f}",
        f"  waste lower bound        : {bound.waste:.3f}",
        f"  efficiency upper bound   : {bound.efficiency:.3f}",
        "  per-class periods (hours):",
    ]
    for name, period, daly in zip(bound.class_names, bound.periods, bound.daly_periods):
        lines.append(f"    {name:<10}: optimal {period / HOUR:6.2f}  (Daly {daly / HOUR:6.2f})")
    return "\n".join(lines)


def _cmd_simulate(args: argparse.Namespace) -> str:
    platform = cielo_platform(
        bandwidth_gbs=args.bandwidth_gbs, node_mtbf_years=args.node_mtbf_years
    )
    result = run_simulation(
        platform=platform,
        workload=apex_workload(platform),
        strategy=args.strategy,
        horizon_days=args.horizon_days,
        seed=args.seed,
        fixed_period_s=args.fixed_period_hours * HOUR,
    )
    return result.summary()


def _sweep_output(result, rendered: str, args: argparse.Namespace, title: str) -> str:
    """Shared post-processing of the Figure 1/2 sweeps (detail, chart, export)."""
    from repro.experiments.export import sweep_to_csv, sweep_to_json, write_text
    from repro.experiments.plotting import sweep_chart
    from repro.experiments.report import render_sweep_detailed

    parts = [rendered]
    if getattr(args, "detailed", False):
        parts.append(render_sweep_detailed(result, title=f"{title} (detailed)"))
    if getattr(args, "chart", False):
        parts.append(sweep_chart(result))
    if getattr(args, "csv", None):
        path = write_text(args.csv, sweep_to_csv(result))
        parts.append(f"wrote {path}")
    if getattr(args, "json", None):
        path = write_text(args.json, sweep_to_json(result))
        parts.append(f"wrote {path}")
    return "\n\n".join(parts)


def _cmd_figure1(args: argparse.Namespace) -> str:
    config = Figure1Config(
        bandwidths_gbs=tuple(args.bandwidths_gbs),
        node_mtbf_years=args.node_mtbf_years,
        horizon_days=args.horizon_days,
        num_runs=args.num_runs,
    )
    result = run_figure1(config, runner=_runner_from_args(args))
    return _sweep_output(result, render_figure1(result), args, "Figure 1")


def _cmd_figure2(args: argparse.Namespace) -> str:
    config = Figure2Config(
        node_mtbf_years=tuple(args.mtbf_years),
        bandwidth_gbs=args.bandwidth_gbs,
        horizon_days=args.horizon_days,
        num_runs=args.num_runs,
    )
    result = run_figure2(config, runner=_runner_from_args(args))
    return _sweep_output(result, render_figure2(result), args, "Figure 2")


def _cmd_figure3(args: argparse.Namespace) -> str:
    config = Figure3Config(
        node_mtbf_years=tuple(args.mtbf_years),
        horizon_days=args.horizon_days,
        num_runs=args.num_runs,
    )
    result = run_figure3(config, runner=_runner_from_args(args))
    rendered = render_figure3(result)
    if args.csv:
        from repro.experiments.export import figure3_to_csv, write_text

        path = write_text(args.csv, figure3_to_csv(result))
        rendered += f"\n\nwrote {path}"
    return rendered


def _cmd_ablation(args: argparse.Namespace) -> str:
    from repro.experiments.ablation import (
        fixed_period_ablation,
        interference_model_ablation,
        render_ablation,
    )

    platform = cielo_platform(
        bandwidth_gbs=args.bandwidth_gbs, node_mtbf_years=args.node_mtbf_years
    )
    workload = apex_workload(platform)
    runner = _runner_from_args(args)
    if args.study == "fixed-period":
        cells = fixed_period_ablation(
            platform,
            workload,
            strategy=args.strategy or "oblivious-fixed",
            periods_hours=tuple(args.periods_hours),
            horizon_days=args.horizon_days,
            num_runs=args.num_runs,
            runner=runner,
        )
        title = (
            f"Fixed-period ablation on {platform.name} "
            f"({args.bandwidth_gbs:g} GB/s, {args.node_mtbf_years:g}-year node MTBF)"
        )
    else:
        cells = interference_model_ablation(
            platform,
            workload,
            strategy=args.strategy or "oblivious-daly",
            alphas=tuple(args.alphas),
            horizon_days=args.horizon_days,
            num_runs=args.num_runs,
            runner=runner,
        )
        title = (
            f"Interference-model ablation on {platform.name} "
            f"({args.bandwidth_gbs:g} GB/s, {args.node_mtbf_years:g}-year node MTBF)"
        )
    return render_ablation(title, cells)


def _cmd_campaign(args: argparse.Namespace) -> str:
    import dataclasses

    from repro.scenarios.campaign import Campaign
    from repro.scenarios.presets import make_campaign
    from repro.scenarios.report import campaign_to_csv, render_campaign, render_campaign_details
    from repro.scenarios.runner import CampaignRunner

    overrides: dict[str, object] = {}
    if args.num_runs is not None:
        if args.num_runs <= 0:
            raise ConfigurationError("--num-runs must be positive")
        overrides["num_runs"] = args.num_runs
    if args.horizon_days is not None:
        overrides["horizon_days"] = args.horizon_days
    if args.strategies is not None:
        overrides["strategies"] = tuple(args.strategies)
    if args.file is not None:
        campaign = Campaign.from_file(args.file)
        if overrides:  # CLI overrides beat the file's own settings
            campaign = dataclasses.replace(campaign, base=campaign.base.apply(**overrides))
    else:
        campaign = make_campaign(args.preset or "smoke", **overrides)

    runner = CampaignRunner(runner=_runner_from_args(args))
    result = runner.run(campaign)
    parts = [campaign.describe(), "", render_campaign(result)]
    if args.details:
        parts.append("")
        parts.append(render_campaign_details(result))
    if args.best_summary:
        for outcome in result.outcomes:
            best = outcome.best_strategy()
            # No winner to re-simulate: the outcome is empty, or (in a
            # hand-assembled result) the winner is a strategy the scenario
            # does not declare, which Scenario.config() would reject.
            if best is None or best not in outcome.scenario.strategies:
                continue
            detail = runner.detail(outcome.scenario, best)
            parts.append("")
            parts.append(f"--- {outcome.scenario.name} / {best} (first seed) ---")
            parts.append(detail.summary())
    if args.cache_dir is not None and runner.runner.cache is not None:
        stats = runner.runner.stats
        remote = f", {stats.remote_seeds} remote seed(s)" if stats.remote_seeds else ""
        parts.append("")
        parts.append(
            f"cache: {stats.cache_hits} hit(s), {stats.tasks_run} simulation(s)"
            f"{remote} this run ({runner.runner.cache.root})"
        )
    if args.csv:
        from repro.experiments.export import write_text

        path = write_text(args.csv, campaign_to_csv(result))
        parts.append("")
        parts.append(f"wrote {path}")
    return "\n".join(parts)


def _cmd_worker(args: argparse.Namespace) -> str:
    import json as json_module
    from pathlib import Path

    from repro.distributed import SpoolWorker, WorkSpool

    if args.status and not Path(args.spool).is_dir():
        # --status must never create the spool: a typo'd path would report a
        # perfectly healthy empty spool (and fool CI's drain assertion).
        raise ConfigurationError(f"no spool at {args.spool}")
    spool = WorkSpool(args.spool, lease_ttl_s=args.lease_ttl)
    if args.status:
        return f"spool {spool.root}: {spool.status().describe()}"
    if args.cache_dir is None:
        raise ConfigurationError("worker needs --cache-dir: the shared result cache")
    if args.poll_interval <= 0:
        raise ConfigurationError("--poll-interval must be positive")
    if args.batch_size <= 0:
        raise ConfigurationError("--batch-size must be positive")

    def _json_event(event: dict) -> None:
        print(json_module.dumps(event, separators=(",", ":")), flush=True)

    worker = SpoolWorker(
        spool,
        _store_from_args(args),
        poll_interval_s=args.poll_interval,
        batch_size=args.batch_size,
        max_tasks=args.max_tasks,
        log=None if (args.quiet or args.log_json) else print,
        event_log=_json_event if args.log_json else None,
        **({"worker_id": args.worker_id} if args.worker_id else {}),
    )
    metrics_server = None
    if args.metrics_port is not None:
        from repro.distributed import WorkerMetricsServer

        metrics_server = WorkerMetricsServer(worker.metrics, port=args.metrics_port)
    banner = {
        "worker": worker.worker_id,
        "spool": str(spool.root),
        "cache": str(args.cache_dir),
    }
    if metrics_server is not None:
        banner["metrics"] = metrics_server.url
    if args.log_json:
        _json_event({"ts": time.time(), "event": "start", **banner})
    else:
        line = f"worker {worker.worker_id}: spool {spool.root}, cache {args.cache_dir}"
        if metrics_server is not None:
            line += f", metrics {metrics_server.url}"
        print(line, flush=True)
    try:
        stats = worker.run(drain=args.drain, idle_timeout_s=args.idle_timeout)
    finally:
        if metrics_server is not None:
            metrics_server.close()
    return f"worker {worker.worker_id}: {stats.describe()}"


def _cmd_cache(args: argparse.Namespace) -> str:
    from repro.exec.digest import DIGEST_VERSION
    from repro.store import copy_store

    kind = args.store or DEFAULT_STORE
    if args.cache_command in ("export", "import"):
        # Migrations default the *other* side to the other built-in backend,
        # which makes the common moves one flag each:
        #   cache export --cache-dir ./cache --to ./cache.sqlite
        #   cache import --cache-dir ./cache --from ./cache.sqlite
        other_default = "sqlite" if kind == "filesystem" else "filesystem"
        if args.cache_command == "export":
            src = open_store(kind, args.cache_dir, must_exist=True)
            dst = open_store(args.to_store or other_default, args.to)
        else:
            src = open_store(
                args.from_store or other_default, args.from_path, must_exist=True
            )
            dst = open_store(kind, args.cache_dir)
        try:
            report = copy_store(src, dst)
        finally:
            src.close()
            dst.close()
        return f"copied {report.describe()}: {src.describe()} -> {dst.describe()}"
    # Never create the store here: a typo'd --cache-dir would otherwise
    # report a perfectly healthy empty cache instead of the mistake.
    store = open_store(kind, args.cache_dir, must_exist=True)
    try:
        if args.cache_command == "stats":
            stats = store.stats()
            lines = [
                f"cache {store.root} ({store.kind})",
                f"  entries      : {stats.entries}",
                f"  total bytes  : {stats.total_bytes}",
                f"  digest now   : version {DIGEST_VERSION}",
            ]
            if stats.trace_sidecars:
                lines.insert(
                    3,
                    f"  trace sidecars: {stats.trace_sidecars} ({stats.trace_bytes} bytes)",
                )
            if stats.versions:
                lines.append("  versions     :")
                for version, count in stats.versions.items():
                    stale = "" if version == DIGEST_VERSION else "  (prunable: cache gc --digest-version)"
                    lines.append(f"    {version:<12}: {count} entr{'y' if count == 1 else 'ies'}{stale}")
            return "\n".join(lines)
        if args.older_than is not None and args.older_than < 0:
            raise ConfigurationError("--older-than must be non-negative")
        report = store.gc(
            older_than_s=args.older_than * 86400.0 if args.older_than is not None else None,
            digest_version=args.digest_version,
            dry_run=args.dry_run,
        )
        verb = "would remove" if args.dry_run else "removed"
        return (
            f"cache {store.root}: scanned {report.scanned} entr{'y' if report.scanned == 1 else 'ies'}, "
            f"{verb} {report.removed} ({report.reclaimed_bytes} bytes)"
        )
    finally:
        store.close()


def _cmd_serve(args: argparse.Namespace) -> str:
    from repro.service import CampaignService, JobManager

    if not 0 <= args.port <= 65535:
        raise ConfigurationError(f"--port must be between 0 and 65535, got {args.port}")
    if args.workers <= 0:
        raise ConfigurationError("--workers must be positive")
    store = _store_from_args(args)  # closed by main() on every exit path
    service = CampaignService(
        JobManager(store, workers=args.workers), host=args.host, port=args.port
    )
    print(
        f"serving campaign results on {service.url} ({store.describe()})",
        flush=True,
    )
    print(
        "endpoints: /healthz /metrics /v1/presets /v1/jobs "
        "(POST a campaign, then GET .../result .../csv .../cells .../trace)",
        flush=True,
    )
    try:
        service.serve_forever()
    finally:
        service.close()
    return "server stopped"


def _cmd_trace(args: argparse.Namespace) -> str:
    from repro.simulation.config import SimulationConfig
    from repro.simulation.simulator import Simulation
    from repro.units import DAY

    # Two modes share the subcommand; flags of one are errors in the other
    # (never silently ignored).
    timeline_only = ("bandwidth_gbs", "node_mtbf_years", "horizon_days", "max_events")
    campaign_only = ("scenario", "csv", "cache_dir", "store")
    if args.campaign is not None:
        stray = [name for name in timeline_only if getattr(args, name) is not None]
        if stray:
            flags = ", ".join("--" + name.replace("_", "-") for name in stray)
            raise ConfigurationError(
                f"{flags} only appl{'ies' if len(stray) == 1 else 'y'} to the "
                "timeline mode; a --campaign cell is fully defined by its "
                "scenario (use --scenario/--strategy/--seed to address it)"
            )
        return _cmd_trace_cell(args)
    stray = [name for name in campaign_only if getattr(args, name) is not None]
    if stray:
        flags = ", ".join("--" + name.replace("_", "-") for name in stray)
        raise ConfigurationError(f"{flags} require(s) --campaign: the cell drill-down mode")
    platform = cielo_platform(
        bandwidth_gbs=args.bandwidth_gbs if args.bandwidth_gbs is not None else 80.0,
        node_mtbf_years=args.node_mtbf_years if args.node_mtbf_years is not None else 2.0,
    )
    config = SimulationConfig(
        platform=platform,
        classes=tuple(apex_workload(platform)),
        strategy=args.strategy or "least-waste",
        horizon_s=(args.horizon_days if args.horizon_days is not None else 2.0) * DAY,
        warmup_s=0.0,
        cooldown_s=0.0,
        seed=args.seed,
        collect_trace=True,
    )
    simulation = Simulation(config)
    result = simulation.run()
    assert simulation.trace is not None
    max_events = args.max_events if args.max_events is not None else 40
    lines = [result.summary(), "", f"timeline (first {max_events} events):"]
    for event in simulation.trace.events[:max_events]:
        detail = " ".join(f"{k}={v}" for k, v in sorted(event.detail.items()))
        lines.append(f"  t={event.time / HOUR:9.3f} h  {event.job_name:<14} {event.kind.value:<20} {detail}")
    intervals = simulation.trace.achieved_checkpoint_intervals()
    if intervals:
        lines.append("")
        lines.append("achieved checkpoint intervals (hours), per job:")
        for job_id, values in list(intervals.items())[:10]:
            formatted = ", ".join(f"{v / HOUR:.2f}" for v in values)
            lines.append(f"  job {job_id}: {formatted}")
    waits = {j: w for j, w in simulation.trace.io_wait_by_job().items() if w > 0.0}
    if waits:
        lines.append("")
        lines.append("I/O queue wait (hours), top jobs:")
        for job_id, wait in sorted(waits.items(), key=lambda kv: (-kv[1], kv[0]))[:10]:
            lines.append(f"  job {job_id}: {wait / HOUR:.2f}")
    return "\n".join(lines)


def _cmd_trace_cell(args: argparse.Namespace) -> str:
    from pathlib import Path

    from repro.scenarios.campaign import Campaign
    from repro.scenarios.presets import make_campaign
    from repro.scenarios.runner import CampaignRunner
    from repro.trace import decomposition_to_csv, render_decomposition

    if args.campaign in CAMPAIGNS:
        campaign = make_campaign(args.campaign)
    elif Path(args.campaign).is_file():
        campaign = Campaign.from_file(args.campaign)
    else:
        raise ConfigurationError(
            f"unknown campaign {args.campaign!r}: neither a preset "
            f"({', '.join(sorted(CAMPAIGNS))}) nor a campaign file"
        )
    scenarios = campaign.scenarios()
    if args.scenario is None:
        if len(scenarios) > 1:
            names = ", ".join(repr(s.name) for s in scenarios)
            raise ConfigurationError(
                f"campaign {campaign.name!r} expands to {len(scenarios)} "
                f"scenarios; pick one with --scenario: {names}"
            )
        scenario = scenarios[0]
    else:
        by_name = {s.name: s for s in scenarios}
        scenario = by_name.get(args.scenario)
        if scenario is None:
            names = ", ".join(repr(name) for name in by_name)
            raise ConfigurationError(
                f"no scenario named {args.scenario!r} in campaign "
                f"{campaign.name!r}; known scenarios: {names}"
            )
    strategy = args.strategy if args.strategy is not None else scenario.strategies[0]

    # _runner_from_args registers the runner on args so main()'s finally
    # block closes any backend it grows (the no-orphaned-workers guarantee).
    runner = CampaignRunner(runner=_runner_from_args(args))
    drill = runner.drill_down_detailed(scenario, strategy, rep=args.seed)
    decomposition = drill.decomposition
    parts = [render_decomposition(decomposition)]
    if runner.runner.cache is not None:
        # A pre-drill recorded value implies repr-exact agreement (the drill
        # raises on contradiction); only then is a match claimed — CI greps
        # this line, and a fresh drill writing its own entry must not
        # self-confirm (e.g. through a typo'd --cache-dir).
        if drill.recorded_value is not None:
            parts.append(
                f"components sum to {decomposition.waste_ratio!r} — "
                "matches the cached cell value"
            )
        else:
            parts.append(
                f"components sum to {decomposition.waste_ratio!r} "
                "(cell was not in the cache before; its value and trace "
                "sidecar are now stored)"
            )
    if args.csv:
        from repro.experiments.export import write_text

        path = write_text(args.csv, decomposition_to_csv(decomposition))
        parts.append(f"wrote {path}")
    return "\n".join(parts)


def _cmd_lint(args: argparse.Namespace) -> str:
    from repro.analysis.cli import run_from_args

    output, code = run_from_args(args)
    # main() returns this instead of 0, so `coopckpt lint` exits 1 on
    # findings like any other linter (2 stays reserved for misconfiguration).
    args._exit_code = code
    return output


_COMMANDS = {
    "table1": _cmd_table1,
    "strategies": _cmd_strategies,
    "lower-bound": _cmd_lower_bound,
    "simulate": _cmd_simulate,
    "figure1": _cmd_figure1,
    "figure2": _cmd_figure2,
    "figure3": _cmd_figure3,
    "ablation": _cmd_ablation,
    "campaign": _cmd_campaign,
    "worker": _cmd_worker,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Failures exit non-zero with a one-line message on stderr (2 for library
    errors, 130 for Ctrl-C), and any execution backend the command built —
    worker pools included — is shut down on every path, so an aborted
    campaign leaves no orphaned worker processes behind.  Interrupting a
    run never corrupts an attached cache: entries are written atomically,
    so everything completed before the interrupt stays valid for the next
    (resuming) run.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        kernel = getattr(args, "kernel", None)
        if kernel is not None:
            # Process-wide selection; also exported to the environment so
            # worker processes spawned by the command inherit it.
            set_default_kernel(kernel)
        output = _COMMANDS[args.command](args)
        print(output)
        return getattr(args, "_exit_code", 0)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # The reader went away (e.g. `coopckpt campaign | head`); that is not
        # an error.  Re-point stdout at devnull so interpreter shutdown does
        # not raise a second time while flushing.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        runner = getattr(args, "_runner", None)
        if runner is not None:
            runner.close()
        store = getattr(args, "_store", None)
        if store is not None:
            store.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

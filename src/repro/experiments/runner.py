"""Shared sweep machinery for the figure experiments.

A *cell* is one (platform variant, strategy) pair evaluated over a number of
Monte-Carlo repetitions; a *sweep* evaluates every strategy for every value
of a platform parameter (bandwidth in Figure 1, node MTBF in Figure 2) and
records the theoretical lower bound alongside.

Both entry points accept an optional :class:`repro.exec.ParallelRunner`,
which dispatches the per-seed repetitions to worker processes and/or serves
them from an on-disk result cache; omitting it preserves the historical
serial, uncached behaviour (and both paths are bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.apps.app_class import ApplicationClass
from repro.errors import ConfigurationError
from repro.exec.runner import ParallelRunner
from repro.experiments.theory import theoretical_waste
from repro.iosched.registry import STRATEGIES, StrategySpec, canonical_strategy
from repro.platform.spec import PlatformSpec
from repro.simulation.config import SimulationConfig
from repro.stats.montecarlo import derive_seeds
from repro.stats.summary import DistributionSummary, summarize
from repro.units import DAY, HOUR

__all__ = ["ExperimentCell", "SweepResult", "run_cell", "run_sweep"]


@dataclass(frozen=True)
class ExperimentCell:
    """One strategy evaluated on one platform variant.

    Attributes
    ----------
    platform / workload / strategy:
        What to simulate.
    horizon_days / warmup_days / cooldown_days:
        Length of the simulated segment and of the excluded warm-up and
        drain periods.  The paper uses 60-day segments; the defaults here
        are laptop-scale (see DESIGN.md, "Scaling note").
    num_runs:
        Monte-Carlo repetitions (the paper uses at least 1 000).
    base_seed:
        Root seed; per-run seeds are derived deterministically.
    fixed_period_s:
        Period of the ``*-fixed`` strategy variants.
    """

    platform: PlatformSpec
    workload: tuple[ApplicationClass, ...]
    strategy: str | StrategySpec
    horizon_days: float = 6.0
    warmup_days: float = 1.0
    cooldown_days: float = 1.0
    num_runs: int = 3
    base_seed: int | None = 0
    fixed_period_s: float = HOUR

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload", tuple(self.workload))
        object.__setattr__(self, "strategy", canonical_strategy(self.strategy))
        if self.num_runs <= 0:
            raise ConfigurationError("num_runs must be positive")
        if self.horizon_days <= 0.0:
            raise ConfigurationError("horizon_days must be positive")

    def config(self, seed: int) -> SimulationConfig:
        """Simulation configuration for one Monte-Carlo repetition."""
        return SimulationConfig(
            platform=self.platform,
            classes=self.workload,
            strategy=self.strategy,
            horizon_s=self.horizon_days * DAY,
            warmup_s=self.warmup_days * DAY,
            cooldown_s=self.cooldown_days * DAY,
            seed=seed,
            fixed_period_s=self.fixed_period_s,
        )


def run_cell(cell: ExperimentCell, runner: ParallelRunner | None = None) -> DistributionSummary:
    """Run one cell and summarise the per-run waste ratios.

    ``runner`` selects the execution backend and result cache; the default
    is a fresh serial, uncached runner (the historical behaviour).
    """
    if runner is None:
        runner = ParallelRunner()
    seeds = derive_seeds(cell.base_seed, cell.num_runs)
    values = runner.run_config(cell.config(0), seeds, label=cell.strategy)
    return summarize(values)


@dataclass
class SweepResult:
    """Result of a one-dimensional parameter sweep.

    Attributes
    ----------
    parameter_name:
        Name of the swept platform parameter (for reporting).
    parameter_values:
        The sweep axis, in evaluation order.
    strategies:
        Strategies evaluated for each axis value.
    waste:
        ``waste[strategy][i]`` is the waste-ratio summary of ``strategy`` at
        ``parameter_values[i]``.
    theory:
        ``theory[i]`` is the theoretical lower bound at ``parameter_values[i]``.
    """

    parameter_name: str
    parameter_values: list[float]
    strategies: list[str]
    waste: dict[str, list[DistributionSummary]] = field(default_factory=dict)
    theory: list[float] = field(default_factory=list)

    def series(self, strategy: str) -> list[float]:
        """Mean waste ratio of ``strategy`` along the sweep axis."""
        return [summary.mean for summary in self.waste[strategy]]

    def best_strategy_at(self, index: int) -> str:
        """Strategy with the lowest mean waste at ``parameter_values[index]``."""
        return min(self.strategies, key=lambda s: self.waste[s][index].mean)


def run_sweep(
    *,
    parameter_name: str,
    parameter_values: Sequence[float],
    platform_for: Callable[[float], PlatformSpec],
    workload_for: Callable[[PlatformSpec], Sequence[ApplicationClass]],
    strategies: Sequence[str] = STRATEGIES,
    horizon_days: float = 6.0,
    warmup_days: float = 1.0,
    cooldown_days: float = 1.0,
    num_runs: int = 3,
    base_seed: int | None = 0,
    fixed_period_s: float = HOUR,
    runner: ParallelRunner | None = None,
) -> SweepResult:
    """Evaluate every strategy at every value of a platform parameter.

    Parameters
    ----------
    platform_for:
        Maps a parameter value to a :class:`PlatformSpec`.
    workload_for:
        Maps the resulting platform to the application classes (the APEX
        volumes depend on the platform's memory, so the workload is rebuilt
        per platform variant).
    runner:
        Optional :class:`repro.exec.ParallelRunner` shared by every cell of
        the sweep (process pool and result cache included).
    """
    if not parameter_values:
        raise ConfigurationError("parameter_values must not be empty")
    normalized = [canonical_strategy(s) for s in strategies]
    if len(set(normalized)) != len(normalized):
        raise ConfigurationError(
            "sweep evaluates the same strategy twice (after normalisation): "
            + ", ".join(normalized)
        )
    result = SweepResult(
        parameter_name=parameter_name,
        parameter_values=[float(v) for v in parameter_values],
        strategies=normalized,
    )
    strategies = result.strategies
    for strategy in strategies:
        result.waste[strategy] = []
    for value in parameter_values:
        platform = platform_for(float(value))
        workload = tuple(workload_for(platform))
        # Report the bound on the same scale as the simulated waste ratios
        # (wasted fraction of total resources, see LowerBoundResult).
        result.theory.append(theoretical_waste(workload, platform).waste_fraction)
        for strategy in strategies:
            cell = ExperimentCell(
                platform=platform,
                workload=workload,
                strategy=strategy,
                horizon_days=horizon_days,
                warmup_days=warmup_days,
                cooldown_days=cooldown_days,
                num_runs=num_runs,
                base_seed=base_seed,
                fixed_period_s=fixed_period_s,
            )
            result.waste[strategy].append(run_cell(cell, runner=runner))
    return result

"""Evaluation harness: one module per table / figure of the paper.

* :mod:`repro.experiments.table1` — Table 1, the APEX workload characteristics.
* :mod:`repro.experiments.theory` — the theoretical lower bound used as the
  reference curve in Figures 1-3 (Theorem 1).
* :mod:`repro.experiments.figure1` — Figure 1, waste ratio vs. aggregate
  file-system bandwidth on Cielo.
* :mod:`repro.experiments.figure2` — Figure 2, waste ratio vs. node MTBF on
  Cielo under constrained bandwidth.
* :mod:`repro.experiments.figure3` — Figure 3, minimum bandwidth required to
  reach 80 % efficiency on the prospective system.
* :mod:`repro.experiments.runner` — shared sweep machinery (one cell = one
  strategy on one platform variant, repeated over Monte-Carlo seeds).
* :mod:`repro.experiments.report` — plain-text table rendering of results.
"""

from repro.experiments.runner import ExperimentCell, SweepResult, run_cell, run_sweep
from repro.experiments.table1 import table1_rows, render_table1
from repro.experiments.theory import steady_state_classes, theoretical_waste
from repro.experiments.figure1 import Figure1Config, render_figure1, run_figure1
from repro.experiments.figure2 import Figure2Config, render_figure2, run_figure2
from repro.experiments.figure3 import Figure3Config, Figure3Result, render_figure3, run_figure3
from repro.experiments.ablation import (
    AblationCell,
    fixed_period_ablation,
    interference_model_ablation,
    render_ablation,
)
from repro.experiments.export import (
    figure3_to_csv,
    figure3_to_rows,
    sweep_to_csv,
    sweep_to_json,
    sweep_to_rows,
    write_text,
)
from repro.experiments.plotting import ascii_chart, sweep_chart

__all__ = [
    "ExperimentCell",
    "SweepResult",
    "run_cell",
    "run_sweep",
    "table1_rows",
    "render_table1",
    "steady_state_classes",
    "theoretical_waste",
    "Figure1Config",
    "run_figure1",
    "render_figure1",
    "Figure2Config",
    "run_figure2",
    "render_figure2",
    "Figure3Config",
    "Figure3Result",
    "run_figure3",
    "render_figure3",
    "AblationCell",
    "fixed_period_ablation",
    "interference_model_ablation",
    "render_ablation",
    "sweep_to_rows",
    "sweep_to_csv",
    "sweep_to_json",
    "figure3_to_rows",
    "figure3_to_csv",
    "write_text",
    "ascii_chart",
    "sweep_chart",
]

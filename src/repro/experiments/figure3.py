"""Figure 3 — minimum bandwidth for 80 % efficiency on the prospective system.

For the future 50 000-node / 7 PB platform of §6.2, the paper asks: how much
aggregate file-system bandwidth does each strategy need to keep the platform
at 80 % efficiency (a waste ratio of at most 25 %), as a function of the
node MTBF?  Expected behaviour:

* the blocking Fixed strategies need by far the most bandwidth (up to ~50x
  Least-Waste at low MTBF);
* ``orderednb-daly`` and ``least-waste`` track each other and the
  theoretical model, and their requirement grows only mildly as the MTBF
  degrades;
* all Daly-based strategies need roughly half the bandwidth of
  ``oblivious-fixed`` once failures are rare.

The minimum bandwidth is found by a monotone bisection on a log-scaled
bandwidth axis; each probe is a (small) Monte-Carlo average of simulated
waste ratios, or an analytical evaluation for the theoretical model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.exec.runner import ParallelRunner
from repro.experiments.runner import ExperimentCell, run_cell
from repro.experiments.theory import theoretical_waste
from repro.iosched.registry import STRATEGIES
from repro.units import TB
from repro.workloads.prospective import prospective_platform, prospective_workload

__all__ = ["Figure3Config", "Figure3Result", "run_figure3", "render_figure3"]

#: MTBF axis of the paper's Figure 3 (years).
PAPER_MTBFS_YEARS: tuple[float, ...] = (5.0, 10.0, 15.0, 20.0, 25.0)

#: Efficiency target of the paper (Exascale Computing Project guidance).
TARGET_EFFICIENCY: float = 0.80


@dataclass(frozen=True)
class Figure3Config:
    """Parameters of the Figure 3 reproduction (laptop-scale defaults).

    ``search_lo_tbs`` / ``search_hi_tbs`` bound the bandwidth bisection and
    ``search_iterations`` controls its resolution (each iteration halves the
    bracket on a log scale).
    """

    node_mtbf_years: tuple[float, ...] = (5.0, 15.0, 25.0)
    strategies: tuple[str, ...] = STRATEGIES
    target_efficiency: float = TARGET_EFFICIENCY
    horizon_days: float = 4.0
    warmup_days: float = 0.5
    cooldown_days: float = 0.5
    num_runs: int = 2
    base_seed: int = 0
    search_lo_tbs: float = 0.2
    search_hi_tbs: float = 60.0
    search_iterations: int = 7

    def __post_init__(self) -> None:
        if not (0.0 < self.target_efficiency < 1.0):
            raise ConfigurationError("target_efficiency must be in (0, 1)")
        if self.search_lo_tbs <= 0.0 or self.search_hi_tbs <= self.search_lo_tbs:
            raise ConfigurationError("invalid bandwidth search bracket")
        if self.search_iterations <= 0:
            raise ConfigurationError("search_iterations must be positive")

    @property
    def target_waste_ratio(self) -> float:
        """Wasted resource fraction corresponding to the efficiency target.

        Both the simulator and (via ``waste_fraction``) the theoretical
        model report waste as a fraction of total resources, so 80 %
        efficiency corresponds to a waste ratio of 0.2.
        """
        return 1.0 - self.target_efficiency


@dataclass
class Figure3Result:
    """Minimum bandwidth (TB/s) per strategy and per MTBF value."""

    node_mtbf_years: list[float]
    strategies: list[str]
    min_bandwidth_tbs: dict[str, list[float]]
    theory_tbs: list[float]
    target_efficiency: float

    def series(self, strategy: str) -> list[float]:
        """Minimum-bandwidth series of one strategy along the MTBF axis."""
        return self.min_bandwidth_tbs[strategy]


def _simulated_waste(
    strategy: str,
    bandwidth_tbs: float,
    mtbf_years: float,
    config: Figure3Config,
    runner: ParallelRunner | None = None,
) -> float:
    platform = prospective_platform(bandwidth_tbs=bandwidth_tbs, node_mtbf_years=mtbf_years)
    workload = tuple(prospective_workload(platform))
    cell = ExperimentCell(
        platform=platform,
        workload=workload,
        strategy=strategy,
        horizon_days=config.horizon_days,
        warmup_days=config.warmup_days,
        cooldown_days=config.cooldown_days,
        num_runs=config.num_runs,
        base_seed=config.base_seed,
    )
    return run_cell(cell, runner=runner).mean


def _theory_waste(bandwidth_tbs: float, mtbf_years: float) -> float:
    platform = prospective_platform(bandwidth_tbs=bandwidth_tbs, node_mtbf_years=mtbf_years)
    workload = prospective_workload(platform)
    # Same scale as the simulated waste ratio (fraction of total resources).
    return theoretical_waste(workload, platform).waste_fraction


def _min_bandwidth(
    waste_at,
    target_waste: float,
    lo_tbs: float,
    hi_tbs: float,
    iterations: int,
) -> float:
    """Log-scale bisection for the smallest bandwidth with waste <= target.

    ``waste_at`` maps a bandwidth in TB/s to a waste ratio; waste is assumed
    to be non-increasing in bandwidth.  Returns ``hi_tbs`` when even the
    upper bound misses the target, and ``lo_tbs`` when the lower bound
    already meets it.
    """
    if waste_at(hi_tbs) > target_waste:
        return hi_tbs
    if waste_at(lo_tbs) <= target_waste:
        return lo_tbs
    log_lo, log_hi = math.log(lo_tbs), math.log(hi_tbs)
    for _ in range(iterations):
        log_mid = 0.5 * (log_lo + log_hi)
        if waste_at(math.exp(log_mid)) <= target_waste:
            log_hi = log_mid
        else:
            log_lo = log_mid
    return math.exp(log_hi)


def run_figure3(
    config: Figure3Config | None = None, runner: ParallelRunner | None = None
) -> Figure3Result:
    """Run the Figure 3 study and return the minimum-bandwidth table.

    ``runner`` optionally parallelises and/or caches the Monte-Carlo probes
    of the bandwidth bisection (see :mod:`repro.exec`).  Within one run
    every probe hits a distinct (bandwidth, strategy, MTBF) cell, so the
    cache pays off on *re-runs* — e.g. extending ``node_mtbf_years`` or
    ``strategies`` replays the unchanged cells from disk.
    """
    config = config or Figure3Config()
    target = config.target_waste_ratio
    result = Figure3Result(
        node_mtbf_years=list(config.node_mtbf_years),
        strategies=list(config.strategies),
        min_bandwidth_tbs={strategy: [] for strategy in config.strategies},
        theory_tbs=[],
        target_efficiency=config.target_efficiency,
    )
    for mtbf in config.node_mtbf_years:
        result.theory_tbs.append(
            _min_bandwidth(
                lambda bw: _theory_waste(bw, mtbf),
                target,
                config.search_lo_tbs,
                config.search_hi_tbs,
                iterations=max(20, config.search_iterations),
            )
        )
        for strategy in config.strategies:
            result.min_bandwidth_tbs[strategy].append(
                _min_bandwidth(
                    lambda bw: _simulated_waste(strategy, bw, mtbf, config, runner),
                    target,
                    config.search_lo_tbs,
                    config.search_hi_tbs,
                    iterations=config.search_iterations,
                )
            )
    return result


def render_figure3(result: Figure3Result) -> str:
    """Plain-text rendering: one row per MTBF, one column per strategy."""
    width = 18
    lines = [
        "Figure 3: minimum aggregated bandwidth (TB/s) to reach "
        f"{100.0 * result.target_efficiency:.0f}% efficiency (prospective system)",
        "",
    ]
    header = "Node MTBF (years)".ljust(width) + "".join(
        name.rjust(width) for name in result.strategies + ["theoretical-model"]
    )
    lines.append(header)
    lines.append("-" * len(header))
    for index, mtbf in enumerate(result.node_mtbf_years):
        row = f"{mtbf:g}".ljust(width)
        for strategy in result.strategies:
            row += f"{result.min_bandwidth_tbs[strategy][index]:>{width}.2f}"
        row += f"{result.theory_tbs[index]:>{width}.2f}"
        lines.append(row)
    return "\n".join(lines)


def bandwidth_tbs_to_bytes(bandwidth_tbs: float) -> float:
    """Convert a TB/s figure to bytes/s (kept here for symmetry with reports)."""
    return bandwidth_tbs * TB

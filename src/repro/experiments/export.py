"""Export experiment results to CSV or JSON.

The paper's figures are plots; this module serialises the reproduced series
so they can be re-plotted with any external tool.  Two exporters are
provided: one for :class:`~repro.experiments.runner.SweepResult` (Figures 1
and 2), one for :class:`~repro.experiments.figure3.Figure3Result`.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.experiments.figure3 import Figure3Result
from repro.experiments.runner import SweepResult

__all__ = [
    "sweep_to_rows",
    "sweep_to_csv",
    "sweep_to_json",
    "figure3_to_rows",
    "figure3_to_csv",
    "write_text",
]


def sweep_to_rows(result: SweepResult) -> list[dict]:
    """One row per (parameter value, strategy) cell, plus the theory rows.

    Each row carries the full candlestick statistics of the cell so nothing
    is lost relative to the in-memory representation.
    """
    rows: list[dict] = []
    for index, value in enumerate(result.parameter_values):
        for strategy in result.strategies:
            summary = result.waste[strategy][index]
            row = {
                "parameter": result.parameter_name,
                "value": value,
                "strategy": strategy,
            }
            row.update(summary.as_dict())
            rows.append(row)
        rows.append(
            {
                "parameter": result.parameter_name,
                "value": value,
                "strategy": "theoretical-model",
                "mean": result.theory[index],
            }
        )
    return rows


def _rows_to_csv(rows: list[dict]) -> str:
    if not rows:
        return ""
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def sweep_to_csv(result: SweepResult) -> str:
    """CSV rendering of :func:`sweep_to_rows`."""
    return _rows_to_csv(sweep_to_rows(result))


def sweep_to_json(result: SweepResult, *, indent: int = 2) -> str:
    """JSON rendering of :func:`sweep_to_rows` plus sweep metadata."""
    payload = {
        "parameter": result.parameter_name,
        "values": result.parameter_values,
        "strategies": result.strategies,
        "rows": sweep_to_rows(result),
    }
    return json.dumps(payload, indent=indent)


def figure3_to_rows(result: Figure3Result) -> list[dict]:
    """One row per (MTBF, strategy) cell of a Figure 3 study."""
    rows: list[dict] = []
    for index, mtbf in enumerate(result.node_mtbf_years):
        for strategy in result.strategies:
            rows.append(
                {
                    "node_mtbf_years": mtbf,
                    "strategy": strategy,
                    "min_bandwidth_tbs": result.min_bandwidth_tbs[strategy][index],
                    "target_efficiency": result.target_efficiency,
                }
            )
        rows.append(
            {
                "node_mtbf_years": mtbf,
                "strategy": "theoretical-model",
                "min_bandwidth_tbs": result.theory_tbs[index],
                "target_efficiency": result.target_efficiency,
            }
        )
    return rows


def figure3_to_csv(result: Figure3Result) -> str:
    """CSV rendering of :func:`figure3_to_rows`."""
    return _rows_to_csv(figure3_to_rows(result))


def write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` (creating parent directories) and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return target

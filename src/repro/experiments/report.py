"""Plain-text rendering of experiment results.

The benchmarks and the CLI print the reproduced tables/figures as text
tables: one row per swept parameter value, one column per strategy plus the
theoretical model.  Values are the mean waste ratios; the full candlestick
statistics are available from the :class:`~repro.experiments.runner.SweepResult`.
"""

from __future__ import annotations

from repro.experiments.runner import SweepResult

__all__ = ["render_sweep", "render_sweep_detailed"]


def render_sweep(result: SweepResult, *, title: str, value_format: str = "{:g}") -> str:
    """Compact table of mean waste ratios (plus the theoretical bound)."""
    col = 18
    lines = [title, ""]
    header = result.parameter_name.ljust(30) + "".join(
        name.rjust(col) for name in result.strategies + ["theoretical-model"]
    )
    lines.append(header)
    lines.append("-" * len(header))
    for index, value in enumerate(result.parameter_values):
        row = value_format.format(value).ljust(30)
        for strategy in result.strategies:
            row += f"{result.waste[strategy][index].mean:>{col}.3f}"
        row += f"{result.theory[index]:>{col}.3f}"
        lines.append(row)
    return "\n".join(lines)


def render_sweep_detailed(result: SweepResult, *, title: str) -> str:
    """Long-form rendering including the candlestick statistics of each cell."""
    lines = [title, ""]
    for index, value in enumerate(result.parameter_values):
        lines.append(f"{result.parameter_name} = {value:g}")
        lines.append(f"  theoretical-model : {result.theory[index]:.3f}")
        for strategy in result.strategies:
            summary = result.waste[strategy][index]
            lines.append(f"  {strategy:<18}: {summary.format()}")
        lines.append("")
    return "\n".join(lines)

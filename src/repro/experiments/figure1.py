"""Figure 1 — waste ratio vs. aggregate file-system bandwidth on Cielo.

The paper varies the Cielo file-system bandwidth from 40 to 160 GB/s with a
2-year node MTBF and plots, for each of the seven strategies, the waste
ratio over a 60-day segment (candlesticks over at least 1 000 Monte-Carlo
repetitions) together with the theoretical lower bound.

The observations this experiment should reproduce (at reduced scale):

* ``oblivious-fixed`` and ``ordered-fixed`` stay above ~40 % waste even at
  the full 160 GB/s;
* ``orderednb-*`` and ``least-waste`` drop quickly below ~20 % and approach
  the theoretical model;
* ``oblivious-daly`` and ``ordered-daly`` start as badly as the Fixed
  variants and only slowly improve with bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.exec.runner import ParallelRunner
from repro.experiments.report import render_sweep
from repro.experiments.runner import SweepResult, run_sweep
from repro.iosched.registry import STRATEGIES
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform

__all__ = ["Figure1Config", "run_figure1", "render_figure1"]

#: Bandwidth axis of the paper's Figure 1 (GB/s).
PAPER_BANDWIDTHS_GBS: tuple[float, ...] = (40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0)


@dataclass(frozen=True)
class Figure1Config:
    """Parameters of the Figure 1 reproduction.

    The defaults are laptop-scale; pass ``bandwidths_gbs=PAPER_BANDWIDTHS_GBS``,
    ``horizon_days=60`` and ``num_runs=1000`` to match the paper exactly.
    """

    bandwidths_gbs: tuple[float, ...] = (40.0, 80.0, 120.0, 160.0)
    node_mtbf_years: float = 2.0
    strategies: tuple[str, ...] = STRATEGIES
    horizon_days: float = 6.0
    warmup_days: float = 1.0
    cooldown_days: float = 1.0
    num_runs: int = 3
    base_seed: int = 0
    field_label: str = field(default="System Aggregated Bandwidth (GB/s)", repr=False)


def run_figure1(
    config: Figure1Config | None = None, runner: ParallelRunner | None = None
) -> SweepResult:
    """Run the Figure 1 sweep and return the per-strategy waste summaries.

    ``runner`` optionally parallelises and/or caches the Monte-Carlo
    repetitions (see :mod:`repro.exec`); results are backend-independent.
    """
    config = config or Figure1Config()
    return run_sweep(
        parameter_name=config.field_label,
        parameter_values=config.bandwidths_gbs,
        platform_for=lambda bw: cielo_platform(
            bandwidth_gbs=bw, node_mtbf_years=config.node_mtbf_years
        ),
        workload_for=lambda platform: apex_workload(platform),
        strategies=config.strategies,
        horizon_days=config.horizon_days,
        warmup_days=config.warmup_days,
        cooldown_days=config.cooldown_days,
        num_runs=config.num_runs,
        base_seed=config.base_seed,
        runner=runner,
    )


def render_figure1(result: SweepResult) -> str:
    """Plain-text rendering of the Figure 1 data (one row per bandwidth)."""
    title = "Figure 1: waste ratio vs. system bandwidth (Cielo, LANL APEX workload)"
    return render_sweep(result, title=title, value_format="{:.0f}")


def figure1_series(config: Figure1Config | None = None) -> dict[str, Sequence[float]]:
    """Convenience: mean waste-ratio series keyed by strategy (plus theory)."""
    result = run_figure1(config)
    series: dict[str, Sequence[float]] = {
        strategy: result.series(strategy) for strategy in result.strategies
    }
    series["theoretical-model"] = list(result.theory)
    return series

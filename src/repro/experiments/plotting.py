"""Plain-text (ASCII) charts for terminal-friendly figure rendering.

The library has no plotting dependency; this module renders the reproduced
series as simple ASCII charts so the qualitative shape of each figure can be
inspected straight from the CLI or a benchmark log.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import AnalysisError
from repro.experiments.runner import SweepResult

__all__ = ["ascii_chart", "sweep_chart"]

_MARKERS = "ox+*#@%&sd"


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    *,
    x_values: Sequence[float],
    width: int = 72,
    height: int = 18,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more named series as an ASCII scatter/line chart.

    Parameters
    ----------
    series:
        Mapping from series name to y-values (all the same length as
        ``x_values``).
    x_values:
        Common x-axis values.
    width / height:
        Plot area size in characters.
    y_label / x_label:
        Axis captions printed around the chart.
    """
    if not series:
        raise AnalysisError("ascii_chart requires at least one series")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise AnalysisError(f"series {name!r} length does not match x_values")
    if not x_values:
        raise AnalysisError("x_values must not be empty")

    all_y = [y for values in series.values() for y in values]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
        row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
        grid[height - 1 - row][column] = marker

    legend_lines: list[str] = []
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend_lines.append(f"  {marker} {name}")
        for x, y in zip(x_values, values):
            place(float(x), float(y), marker)

    lines: list[str] = []
    if y_label:
        lines.append(y_label)
    top = f"{y_max:10.3g} +" + "-" * width + "+"
    bottom = f"{y_min:10.3g} +" + "-" * width + "+"
    lines.append(top)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(bottom)
    lines.append(" " * 12 + f"{x_min:<12.6g}" + " " * max(0, width - 24) + f"{x_max:>12.6g}")
    if x_label:
        lines.append(" " * 12 + x_label)
    lines.append("legend:")
    lines.extend(legend_lines)
    return "\n".join(lines)


def sweep_chart(result: SweepResult, *, width: int = 72, height: int = 18) -> str:
    """ASCII chart of a sweep's mean waste ratios (plus the theoretical bound)."""
    series: dict[str, Sequence[float]] = {
        strategy: result.series(strategy) for strategy in result.strategies
    }
    series["theoretical-model"] = list(result.theory)
    return ascii_chart(
        series,
        x_values=result.parameter_values,
        width=width,
        height=height,
        y_label="waste ratio",
        x_label=result.parameter_name,
    )

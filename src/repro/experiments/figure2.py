"""Figure 2 — waste ratio vs. node MTBF on Cielo at 40 GB/s.

The paper fixes the Cielo file-system bandwidth at a constrained 40 GB/s and
varies the individual-node MTBF from 2 years (≈1 h system MTBF) to 50 years
(≈1 day system MTBF).  Expected behaviour:

* ``oblivious-fixed`` / ``ordered-fixed`` stay saturated around 80 % waste
  for every MTBF (the I/O subsystem is the bottleneck);
* ``oblivious-daly`` / ``ordered-daly`` are poor at low MTBF but approach
  the bound as failures become rare;
* ``orderednb-*`` and ``least-waste`` reach the theoretical bound already at
  a 4-year node MTBF.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exec.runner import ParallelRunner
from repro.experiments.report import render_sweep
from repro.experiments.runner import SweepResult, run_sweep
from repro.iosched.registry import STRATEGIES
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform

__all__ = ["Figure2Config", "run_figure2", "render_figure2"]

#: MTBF axis of the paper's Figure 2 (years, log-scale in the plot).
PAPER_MTBFS_YEARS: tuple[float, ...] = (2.0, 5.0, 10.0, 20.0, 50.0)


@dataclass(frozen=True)
class Figure2Config:
    """Parameters of the Figure 2 reproduction (laptop-scale defaults)."""

    node_mtbf_years: tuple[float, ...] = (2.0, 5.0, 20.0, 50.0)
    bandwidth_gbs: float = 40.0
    strategies: tuple[str, ...] = STRATEGIES
    horizon_days: float = 6.0
    warmup_days: float = 1.0
    cooldown_days: float = 1.0
    num_runs: int = 3
    base_seed: int = 0
    field_label: str = field(default="Node MTBF (years)", repr=False)


def run_figure2(
    config: Figure2Config | None = None, runner: ParallelRunner | None = None
) -> SweepResult:
    """Run the Figure 2 sweep and return the per-strategy waste summaries.

    ``runner`` optionally parallelises and/or caches the Monte-Carlo
    repetitions (see :mod:`repro.exec`); results are backend-independent.
    """
    config = config or Figure2Config()
    return run_sweep(
        parameter_name=config.field_label,
        parameter_values=config.node_mtbf_years,
        platform_for=lambda mtbf: cielo_platform(
            bandwidth_gbs=config.bandwidth_gbs, node_mtbf_years=mtbf
        ),
        workload_for=lambda platform: apex_workload(platform),
        strategies=config.strategies,
        horizon_days=config.horizon_days,
        warmup_days=config.warmup_days,
        cooldown_days=config.cooldown_days,
        num_runs=config.num_runs,
        base_seed=config.base_seed,
        runner=runner,
    )


def render_figure2(result: SweepResult) -> str:
    """Plain-text rendering of the Figure 2 data (one row per MTBF value)."""
    title = (
        "Figure 2: waste ratio vs. node MTBF "
        "(Cielo, 40 GB/s aggregated bandwidth, LANL APEX workload)"
    )
    return render_sweep(result, title=title, value_format="{:.0f}")

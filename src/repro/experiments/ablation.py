"""Ablation studies for the design choices called out in DESIGN.md.

Two ablations complement the paper's figures:

* :func:`fixed_period_ablation` — how sensitive the *Fixed* strategies are
  to the choice of the fixed checkpoint period (the paper uses one hour;
  §7 cites Arunagiri et al. on deliberately sub-optimal longer periods).
* :func:`interference_model_ablation` — how much of the Oblivious
  strategies' loss comes from the linear-interference assumption itself,
  by re-running the same scenario under the adversarial models of
  :mod:`repro.platform.interference` (paper footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.apps.app_class import ApplicationClass
from repro.errors import ConfigurationError
from repro.exec.runner import ParallelRunner
from repro.platform.interference import (
    DegradingInterference,
    InterferenceModel,
    LinearInterference,
)
from repro.platform.spec import PlatformSpec
from repro.simulation.config import SimulationConfig
from repro.stats.montecarlo import derive_seeds
from repro.stats.summary import DistributionSummary, summarize
from repro.units import DAY, HOUR

__all__ = [
    "AblationCell",
    "fixed_period_ablation",
    "interference_model_ablation",
    "render_ablation",
]


@dataclass(frozen=True)
class AblationCell:
    """One ablation measurement: a label and its waste-ratio summary."""

    label: str
    waste: DistributionSummary


def _run_cells(
    platform: PlatformSpec,
    workload: Sequence[ApplicationClass],
    strategy: str,
    *,
    horizon_days: float,
    num_runs: int,
    base_seed: int,
    fixed_period_s: float = HOUR,
    interference: InterferenceModel | None = None,
    runner: ParallelRunner | None = None,
) -> DistributionSummary:
    if runner is None:
        runner = ParallelRunner()
    config = SimulationConfig(
        platform=platform,
        classes=tuple(workload),
        strategy=strategy,
        horizon_s=horizon_days * DAY,
        warmup_s=min(1.0, horizon_days / 4.0) * DAY,
        cooldown_s=min(1.0, horizon_days / 4.0) * DAY,
        seed=0,
        fixed_period_s=fixed_period_s,
        interference=interference,
    )
    values = runner.run_config(config, derive_seeds(base_seed, num_runs))
    return summarize(values)


def fixed_period_ablation(
    platform: PlatformSpec,
    workload: Sequence[ApplicationClass],
    *,
    strategy: str = "oblivious-fixed",
    periods_hours: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    horizon_days: float = 4.0,
    num_runs: int = 2,
    base_seed: int = 0,
    runner: ParallelRunner | None = None,
) -> list[AblationCell]:
    """Waste of a Fixed-period strategy as the fixed period varies.

    The paper's Fixed variants always use one hour; this ablation shows how
    much of their loss is attributable to that specific choice rather than
    to the fixed-period policy itself.
    """
    if not periods_hours:
        raise ConfigurationError("periods_hours must not be empty")
    if "fixed" not in strategy:
        raise ConfigurationError("fixed_period_ablation only applies to *-fixed strategies")
    cells = []
    for hours in periods_hours:
        summary = _run_cells(
            platform,
            workload,
            strategy,
            horizon_days=horizon_days,
            num_runs=num_runs,
            base_seed=base_seed,
            fixed_period_s=hours * HOUR,
            runner=runner,
        )
        cells.append(AblationCell(label=f"{strategy}, P = {hours:g} h", waste=summary))
    return cells


def interference_model_ablation(
    platform: PlatformSpec,
    workload: Sequence[ApplicationClass],
    *,
    strategy: str = "oblivious-daly",
    alphas: Sequence[float] = (0.0, 0.25, 1.0),
    horizon_days: float = 4.0,
    num_runs: int = 2,
    base_seed: int = 0,
    runner: ParallelRunner | None = None,
) -> list[AblationCell]:
    """Waste of one strategy under increasingly adversarial interference.

    ``alpha = 0`` is the paper's linear model; larger values destroy
    aggregate throughput when transfers overlap, which hurts the Oblivious
    strategies (whose transfers always overlap) far more than the token-based
    ones (which never overlap).
    """
    if not alphas:
        raise ConfigurationError("alphas must not be empty")
    cells = []
    for alpha in alphas:
        model: InterferenceModel
        if alpha == 0.0:
            model = LinearInterference()
            label = f"{strategy}, linear interference"
        else:
            model = DegradingInterference(alpha=alpha)
            label = f"{strategy}, degrading interference (alpha={alpha:g})"
        summary = _run_cells(
            platform,
            workload,
            strategy,
            horizon_days=horizon_days,
            num_runs=num_runs,
            base_seed=base_seed,
            interference=model,
            runner=runner,
        )
        cells.append(AblationCell(label=label, waste=summary))
    return cells


def render_ablation(title: str, cells: Sequence[AblationCell]) -> str:
    """Plain-text table of an ablation study."""
    width = max((len(cell.label) for cell in cells), default=10) + 2
    lines = [title, ""]
    lines.append("configuration".ljust(width) + "mean waste   [d1 q1 | q3 d9]")
    lines.append("-" * (width + 32))
    for cell in cells:
        lines.append(cell.label.ljust(width) + cell.waste.format())
    return "\n".join(lines)

"""Table 1 — the LANL APEX workload characteristics.

The experiment simply renders the class definitions of
:mod:`repro.workloads.apex` in the same layout as the paper's Table 1, plus
the derived absolute volumes for a chosen platform (Cielo by default), which
is a useful sanity check of the memory-fraction conversion.
"""

from __future__ import annotations

from repro.platform.spec import PlatformSpec
from repro.units import GB
from repro.workloads.apex import APEX_TABLE, apex_workload
from repro.workloads.cielo import CIELO

__all__ = ["table1_rows", "render_table1"]

_ROW_LABELS: tuple[tuple[str, str], ...] = (
    ("workload_percent", "Workload percentage"),
    ("work_time_hours", "Work time (h)"),
    ("cores", "Number of cores"),
    ("input_percent_of_memory", "Initial Input (% of memory)"),
    ("output_percent_of_memory", "Final Output (% of memory)"),
    ("checkpoint_percent_of_memory", "Checkpoint Size (% of memory)"),
)


def table1_rows() -> list[dict[str, float | str]]:
    """Table 1 as a list of dictionaries, one per row (attribute)."""
    rows: list[dict[str, float | str]] = []
    for attribute, label in _ROW_LABELS:
        row: dict[str, float | str] = {"Workflow": label}
        for spec in APEX_TABLE:
            row[spec.name] = getattr(spec, attribute)
        rows.append(row)
    return rows


def render_table1(platform: PlatformSpec | None = None) -> str:
    """Render Table 1 (and the derived absolute sizes) as plain text."""
    platform = platform or CIELO
    names = [spec.name for spec in APEX_TABLE]
    width = 28
    col = 12
    lines = ["Table 1: LANL Workflow Workload from the APEX Workflows report", ""]
    header = "Workflow".ljust(width) + "".join(name.rjust(col) for name in names)
    lines.append(header)
    lines.append("-" * len(header))
    for row in table1_rows():
        label = str(row["Workflow"]).ljust(width)
        values = "".join(f"{row[name]:>{col}g}" for name in names)
        lines.append(label + values)

    lines.append("")
    lines.append(f"Derived absolute volumes on {platform.name} (GB per job):")
    classes = apex_workload(platform)
    derived_header = "Quantity".ljust(width) + "".join(name.rjust(col) for name in names)
    lines.append(derived_header)
    lines.append("-" * len(derived_header))
    for label, getter in (
        ("Nodes", lambda app: app.nodes),
        ("Initial input (GB)", lambda app: app.input_bytes / GB),
        ("Final output (GB)", lambda app: app.output_bytes / GB),
        ("Checkpoint (GB)", lambda app: app.checkpoint_bytes / GB),
    ):
        values = "".join(f"{getter(app):>{col}.0f}" for app in classes)
        lines.append(label.ljust(width) + values)
    return "\n".join(lines)

"""Theoretical-model curves (Theorem 1) used as the reference in Figs. 1-3.

The steady-state analysis needs, for each application class, the number of
jobs running concurrently on a fully-packed platform.  Following §4, class
``A_i`` receives its APEX share of the platform's nodes, so

    n_i = share_i * N / q_i

jobs of the class run at any instant (``n_i`` may be fractional).  The
checkpoint commit time is the interference-free one, ``C_i = size_i / beta``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.apps.app_class import ApplicationClass
from repro.core.lower_bound import LowerBoundResult, SteadyStateClass, platform_lower_bound
from repro.errors import AnalysisError
from repro.platform.spec import PlatformSpec

__all__ = ["steady_state_classes", "theoretical_waste"]


def steady_state_classes(
    workload: Sequence[ApplicationClass],
    platform: PlatformSpec,
) -> list[SteadyStateClass]:
    """Convert a workload into the steady-state description of §4."""
    if not workload:
        raise AnalysisError("workload must contain at least one class")
    total_share = sum(app.workload_share for app in workload)
    if total_share <= 0.0:
        raise AnalysisError("workload classes must define positive workload shares")
    bandwidth = platform.io_bandwidth_bytes_per_s
    classes: list[SteadyStateClass] = []
    for app in workload:
        share = app.workload_share / total_share
        count = share * platform.num_nodes / app.nodes
        classes.append(
            SteadyStateClass(
                name=app.name,
                count=count,
                nodes=float(app.nodes),
                checkpoint_time=app.checkpoint_time(bandwidth),
                recovery_time=app.recovery_time(bandwidth),
            )
        )
    return classes


def theoretical_waste(
    workload: Sequence[ApplicationClass],
    platform: PlatformSpec,
) -> LowerBoundResult:
    """Lower bound on the platform waste for ``workload`` on ``platform``.

    This is the "Theoretical Model" curve of Figures 1 and 2 and the
    reference efficiency used in Figure 3.
    """
    classes = steady_state_classes(workload, platform)
    return platform_lower_bound(classes, float(platform.num_nodes), platform.node_mtbf_s)

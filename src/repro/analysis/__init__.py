"""Static contract analysis for the repro tree.

``repro.analysis`` is an AST-based linter that turns the project's prose
contracts (ROADMAP "standing contracts") into mechanical checks:

* ``determinism`` — no wall clock, global RNG or unordered set iteration
  in the simulation path;
* ``fsops`` — every filesystem side effect in the spool layer routes
  through the fault-injectable choke point;
* ``digest-drift`` — the digest-relevant config field set matches the
  committed manifest, or DIGEST_VERSION was bumped in the same diff;
* ``locks`` — lock-guarded fields are never written outside the lock;
* ``registry`` — registered plugins implement their full interface with
  compatible signatures.

Run it with ``coopckpt lint`` or ``python -m repro.analysis``.
"""

from __future__ import annotations

from repro.analysis.base import Checker, Finding, Pragma, Project
from repro.analysis.checkers import ALL_CHECKERS, make_checkers
from repro.analysis.engine import LintReport, run_lint

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "LintReport",
    "Pragma",
    "Project",
    "make_checkers",
    "run_lint",
]

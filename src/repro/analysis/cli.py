"""Command-line front end of the contract linter.

Reached two ways, with identical semantics::

    coopckpt lint [--rule determinism --rule fsops] [--json]
    python -m repro.analysis [...]

Exit codes follow the ``coopckpt`` convention: 0 clean, 1 findings,
2 misconfiguration (bad ``--root``, unknown ``--rule``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.checkers.digest_drift import extract_digest_schema, write_manifest
from repro.analysis.engine import BASELINE_PATH, run_lint, write_baseline
from repro.analysis.base import Project
from repro.errors import ConfigurationError

__all__ = ["add_lint_arguments", "default_root", "main", "run_from_args"]

_RULES = tuple(cls.rule for cls in ALL_CHECKERS)


def default_root() -> Path:
    """The source root this installed package was loaded from (``src/``)."""
    return Path(__file__).resolve().parent.parent.parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared by coopckpt and python -m)."""
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="source root to lint (default: the src/ tree this package lives in)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        choices=_RULES,
        default=None,
        metavar="RULE",
        help=f"run only this rule (repeatable; choices: {', '.join(_RULES)})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: {BASELINE_PATH.name} next to the package)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--write-digest-manifest",
        action="store_true",
        help="regenerate digest_manifest.json from the code and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its contract description and exit",
    )


def run_from_args(args: argparse.Namespace) -> tuple[str, int]:
    """Execute a parsed lint invocation; returns (output, exit code)."""
    if args.list_rules:
        width = max(len(rule) for rule in _RULES)
        lines = [f"{cls.rule:<{width}}  {cls.description}" for cls in ALL_CHECKERS]
        return "\n".join(lines), 0

    root = args.root or default_root()
    if not root.is_dir():
        raise ConfigurationError(f"--root {root} is not a directory")

    if args.write_digest_manifest:
        schema, problems = extract_digest_schema(Project.load(root))
        if schema is None:
            rendered = "\n".join(finding.render() for finding in problems)
            return rendered or "cannot extract digest schema", 1
        target = write_manifest(schema)
        return f"wrote {target} (digest v{schema.version}, {len(schema.fields)} fields)", 0

    report = run_lint(root, rules=args.rule, baseline_path=args.baseline)

    if args.write_baseline:
        keys = {finding.key for finding in report.findings}
        target = write_baseline(keys, args.baseline)
        return f"wrote {target} ({len(keys)} grandfathered findings)", 0

    output = report.render_json() if args.json else report.render_text()
    return output, report.exit_code


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Contract linter: determinism, fsops, digest, lock and "
        "registry discipline (same engine as `coopckpt lint`).",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        output, code = run_from_args(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(output)
    return code

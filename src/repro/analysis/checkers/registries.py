"""Registry-conformance checker: registered plugins implement their contract.

The project exposes four open registries (ROADMAP standing contracts):
execution backends (``register_backend``), strategies
(``register_strategy``), simulator kernels (``register_kernel``) and result
stores (``register_store``).  Each has an interface base class whose
"abstract" methods either carry ``@abstractmethod`` or raise
``NotImplementedError``.  A plugin that misses a method — or renames a
parameter so keyword call sites break — fails at *use* time, possibly deep
inside a campaign.  This checker fails it at *lint* time instead:

1. **Subclass sweep** — every class in the tree that (transitively)
   subclasses an interface base must

   * implement all abstract methods of its inheritance chain (leaf classes
     only: intermediate bases that other classes extend may stay partial);
   * override base methods with *compatible* signatures: same positional
     parameter names in the same order, extra parameters defaulted, base
     keyword-only parameters accepted (or ``**kwargs``), and no default
     dropped from an inherited optional parameter.

2. **Registration resolution** — each ``register_*(name, factory)`` call
   (and the built-in factory-dict literals) is resolved to the class the
   factory returns, where that is statically visible; a factory that
   resolves to a class *outside* the interface hierarchy is an error.
   ``register_strategy`` factories are callables, not classes: their
   signature must accept ``(spec, *, fixed_period_s=...)``.

Resolution is best-effort by design: a factory the AST cannot see through
(built dynamically, imported from outside the tree) is skipped, because the
sweep in (1) still covers every in-tree subclass.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.analysis.base import Checker, Finding, ModuleInfo, Project

__all__ = ["RegistryConformanceChecker"]


@dataclass(frozen=True)
class InterfaceSpec:
    """One registry contract: its base class and how plugins register."""

    label: str
    base: str  #: fully qualified interface base class
    registrar: str  #: register_* function name
    factory_dicts: tuple[str, ...] = ()  #: module-level builtin factory dicts


INTERFACES: tuple[InterfaceSpec, ...] = (
    InterfaceSpec(
        label="execution backend",
        base="repro.exec.runner.ExecutionBackend",
        registrar="register_backend",
        factory_dicts=("repro.exec.runner._BACKEND_FACTORIES",),
    ),
    InterfaceSpec(
        label="simulator kernel",
        base="repro.sim.kernel.SimulatorKernel",
        registrar="register_kernel",
        factory_dicts=("repro.sim.kernel._KERNEL_FACTORIES",),
    ),
    InterfaceSpec(
        label="result store",
        base="repro.store.base.ResultStore",
        registrar="register_store",
    ),
    InterfaceSpec(
        label="I/O scheduler",
        base="repro.iosched.base.IOScheduler",
        registrar="",  # reached through strategy factories; sweep-only
    ),
)

#: ``register_strategy`` factories are plain callables; this is their
#: expected call shape (see ``make_strategy`` in repro.iosched.registry).
STRATEGY_REGISTRAR = "register_strategy"
STRATEGY_FACTORY_KEYWORD = "fixed_period_s"


# --------------------------------------------------------------- signatures
@dataclass(frozen=True)
class Signature:
    """Call-shape of one function/method (AST-level)."""

    positional: tuple[str, ...]  #: posonly + regular args (self stripped)
    defaults: int  #: how many trailing positional params have defaults
    vararg: bool
    kwonly: tuple[str, ...]
    kwonly_required: tuple[str, ...]
    kwarg: bool

    def optional_positional(self) -> frozenset[str]:
        return frozenset(self.positional[len(self.positional) - self.defaults :])


def _signature(node: ast.FunctionDef | ast.AsyncFunctionDef, *, method: bool) -> Signature:
    args = node.args
    positional = [a.arg for a in (*args.posonlyargs, *args.args)]
    if method and positional:
        positional = positional[1:]  # drop self/cls
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    kwonly_required = tuple(
        a.arg for a, d in zip(args.kwonlyargs, args.kw_defaults) if d is None
    )
    return Signature(
        positional=tuple(positional),
        defaults=len(args.defaults),
        vararg=args.vararg is not None,
        kwonly=kwonly,
        kwonly_required=kwonly_required,
        kwarg=args.kwarg is not None,
    )


def _incompatibility(base: Signature, override: Signature) -> str | None:
    """Why ``override`` cannot substitute for ``base`` at call sites."""
    if override.kwarg and override.vararg:
        return None  # (*args, **kwargs) accepts anything
    # Positional parameters: same names, same order.
    shared = min(len(base.positional), len(override.positional))
    for index in range(shared):
        if base.positional[index] != override.positional[index]:
            return (
                f"positional parameter {index + 1} is named "
                f"{override.positional[index]!r}, base names it "
                f"{base.positional[index]!r} (keyword call sites break)"
            )
    if len(override.positional) < len(base.positional) and not override.vararg:
        missing = base.positional[len(override.positional) :]
        return f"missing positional parameter(s): {', '.join(missing)}"
    extra = override.positional[len(base.positional) :]
    extra_required = [
        name for name in extra if name not in override.optional_positional()
    ]
    if extra_required:
        return (
            f"adds required positional parameter(s) {', '.join(extra_required)} "
            "the interface's callers do not pass"
        )
    # Base optional positionals must stay optional.
    dropped = [
        name
        for name in base.optional_positional()
        if name in override.positional and name not in override.optional_positional()
    ]
    if dropped:
        return f"drops the default of optional parameter(s): {', '.join(dropped)}"
    if not override.kwarg:
        accepted = set(override.kwonly) | set(override.positional)
        missing_kw = [name for name in base.kwonly if name not in accepted]
        if missing_kw:
            return f"missing keyword parameter(s): {', '.join(missing_kw)}"
    stray_kw = [
        name
        for name in override.kwonly_required
        if name not in base.kwonly and name not in base.positional
    ]
    if stray_kw:
        return (
            f"adds required keyword-only parameter(s) {', '.join(stray_kw)} "
            "the interface's callers do not pass"
        )
    return None


# --------------------------------------------------------------- class index
@dataclass
class MethodInfo:
    name: str
    signature: Signature
    lineno: int
    abstract: bool  #: @abstractmethod or a NotImplementedError body


@dataclass
class ClassInfo:
    qualname: str  #: module.Class
    module: ModuleInfo
    node: ast.ClassDef
    bases: tuple[str, ...]  #: resolved dotted base names
    methods: dict[str, MethodInfo] = field(default_factory=dict)


def _is_abstract_method(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = decorator.attr if isinstance(decorator, ast.Attribute) else (
            decorator.id if isinstance(decorator, ast.Name) else None
        )
        if name == "abstractmethod":
            return True
    for stmt in node.body:
        if isinstance(stmt, ast.Raise):
            exc = stmt.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id == "NotImplementedError":
                return True
    return False


def _build_index(project: Project) -> dict[str, ClassInfo]:
    index: dict[str, ClassInfo] = {}
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                # A bare (unimported) base name is a class in this module.
                origin if "." in origin else f"{module.name}.{origin}"
                for base in node.bases
                if (origin := module.imports.resolve(base)) is not None
            )
            qualname = f"{module.name}.{node.name}"
            info = ClassInfo(qualname=qualname, module=module, node=node, bases=bases)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[stmt.name] = MethodInfo(
                        name=stmt.name,
                        signature=_signature(stmt, method=True),
                        lineno=stmt.lineno,
                        abstract=_is_abstract_method(stmt),
                    )
            # Nested classes resolve local base names to "module.Base".
            index.setdefault(qualname, info)
    return index


def _mro(info: ClassInfo, index: dict[str, ClassInfo]) -> list[ClassInfo]:
    """Linearised ancestry (depth-first, left-to-right, de-duplicated)."""
    seen: dict[str, ClassInfo] = {}

    def walk(current: ClassInfo) -> None:
        if current.qualname in seen:
            return
        seen[current.qualname] = current
        for base in current.bases:
            base_info = index.get(base)
            if base_info is not None:
                walk(base_info)

    walk(info)
    return list(seen.values())


def _inherits(info: ClassInfo, base_qualname: str, index: dict[str, ClassInfo]) -> bool:
    return any(ancestor.qualname == base_qualname for ancestor in _mro(info, index)[1:])


def _lookup(info: ClassInfo, method: str, index: dict[str, ClassInfo]) -> MethodInfo | None:
    for ancestor in _mro(info, index):
        found = ancestor.methods.get(method)
        if found is not None:
            return found
    return None


# ------------------------------------------------------------- registrations
@dataclass
class _ModuleDefs:
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef]


def _module_defs(module: ModuleInfo) -> _ModuleDefs:
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, node)
    return _ModuleDefs(functions=functions)


def _resolve_factory_class(
    expr: ast.expr, module: ModuleInfo, defs: _ModuleDefs, index: dict[str, ClassInfo]
) -> ClassInfo | None:
    """The class a factory expression ultimately constructs, if visible."""
    if isinstance(expr, (ast.Name, ast.Attribute)):
        origin = module.imports.resolve(expr)
        if origin is None:
            return None
        local = f"{module.name}.{origin}"
        if local in index:
            return index[local]
        if origin in index:
            return index[origin]
        tail = origin.rsplit(".", 1)[-1]
        if isinstance(expr, ast.Name) and tail in defs.functions:
            return _class_from_function(defs.functions[tail], module, defs, index)
        return None
    if isinstance(expr, ast.Lambda):
        body = expr.body
        if isinstance(body, ast.Call):
            return _resolve_factory_class(body.func, module, defs, index)
    return None


def _class_from_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    module: ModuleInfo,
    defs: _ModuleDefs,
    index: dict[str, ClassInfo],
) -> ClassInfo | None:
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            resolved = _resolve_factory_class(node.value.func, module, defs, index)
            if resolved is not None:
                return resolved
    return None


def _callable_signature(
    expr: ast.expr, module: ModuleInfo, defs: _ModuleDefs
) -> Signature | None:
    """Signature of the callable a strategy-factory expression denotes."""
    if isinstance(expr, ast.Lambda):
        # Treat a lambda like a function (lambdas cannot have kw-only docs).
        fake = ast.FunctionDef(
            name="<lambda>", args=expr.args, body=[], decorator_list=[]
        )
        return _signature(fake, method=False)
    if isinstance(expr, ast.Name):
        func = defs.functions.get(expr.id)
        if func is not None:
            return _signature(func, method=False)
        return None
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        # factory-factory: f(...) returning a nested function
        outer = defs.functions.get(expr.func.id)
        if outer is not None:
            inner_names = {
                stmt.name
                for stmt in ast.walk(outer)
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name != outer.name
            }
            for node in ast.walk(outer):
                if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
                    if node.value.id in inner_names:
                        for stmt in ast.walk(outer):
                            if (
                                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                                and stmt.name == node.value.id
                            ):
                                return _signature(stmt, method=False)
    return None


# ------------------------------------------------------------------ checker
class RegistryConformanceChecker(Checker):
    rule = "registry"
    description = (
        "classes registered with register_backend/strategy/kernel/store "
        "implement the full interface with compatible signatures"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        return _scan(project)


def _scan(project: Project) -> Iterator[Finding]:
    index = _build_index(project)
    extended = {info.qualname for info in index.values() for info in [info]}
    has_subclass: set[str] = set()
    for info in index.values():
        for base in info.bases:
            has_subclass.add(base)

    # ---- pass 1: subclass sweep
    for spec in INTERFACES:
        base_info = index.get(spec.base)
        if base_info is None:
            continue
        for info in index.values():
            if info.qualname == spec.base or not _inherits(info, spec.base, index):
                continue
            yield from _check_class(spec, info, index, leaf=info.qualname not in has_subclass)

    # ---- pass 2: registration-site resolution
    registrar_to_spec = {spec.registrar: spec for spec in INTERFACES if spec.registrar}
    for module in project.modules:
        defs = _module_defs(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else node.func.id if isinstance(node.func, ast.Name) else None
                )
                if name == STRATEGY_REGISTRAR and len(node.args) >= 2:
                    yield from _check_strategy_factory(node, module, defs)
                elif name in registrar_to_spec and len(node.args) >= 2:
                    yield from _check_registration(
                        registrar_to_spec[name], node, node.args[1], module, defs, index
                    )
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    qual = f"{module.name}.{target.id}"
                    for spec in INTERFACES:
                        if qual in spec.factory_dicts:
                            for value in node.value.values:
                                yield from _check_registration(
                                    spec, value, value, module, defs, index
                                )


def _check_class(
    spec: InterfaceSpec,
    info: ClassInfo,
    index: dict[str, ClassInfo],
    *,
    leaf: bool,
) -> Iterator[Finding]:
    base_info = index[spec.base]
    # Abstract-completeness: every abstract method in the ancestry must
    # resolve to a concrete implementation (leaf classes only).
    if leaf:
        required: set[str] = set()
        for ancestor in _mro(info, index)[1:]:
            for method in ancestor.methods.values():
                if method.abstract:
                    required.add(method.name)
        for name in sorted(required):
            found = _lookup(info, name, index)
            if found is None or found.abstract:
                yield Finding(
                    rule="registry",
                    path=info.module.relpath,
                    line=info.node.lineno,
                    col=info.node.col_offset,
                    message=f"{info.qualname} is a concrete {spec.label} but does "
                    f"not implement {name}() required by {spec.base}",
                )
    # Signature compatibility of overrides against the interface base.
    for name, base_method in base_info.methods.items():
        override = info.methods.get(name)
        if override is None:
            continue
        problem = _incompatibility(base_method.signature, override.signature)
        if problem is not None:
            yield Finding(
                rule="registry",
                path=info.module.relpath,
                line=override.lineno,
                col=info.node.col_offset,
                message=f"{info.qualname}.{name}() is incompatible with "
                f"{spec.base}.{name}(): {problem}",
            )


def _check_registration(
    spec: InterfaceSpec,
    site: ast.expr,
    factory: ast.expr,
    module: ModuleInfo,
    defs: _ModuleDefs,
    index: dict[str, ClassInfo],
) -> Iterator[Finding]:
    resolved = _resolve_factory_class(factory, module, defs, index)
    if resolved is None:
        return  # dynamically built factory: the subclass sweep still applies
    if resolved.qualname != spec.base and not _inherits(resolved, spec.base, index):
        yield Finding(
            rule="registry",
            path=module.relpath,
            line=getattr(site, "lineno", 1),
            col=getattr(site, "col_offset", 0),
            message=f"{spec.registrar or spec.label} registers {resolved.qualname}, "
            f"which does not subclass {spec.base}; plugins must implement "
            "the interface base so the contract suite covers them",
        )


def _check_strategy_factory(
    node: ast.Call, module: ModuleInfo, defs: _ModuleDefs
) -> Iterator[Finding]:
    signature = _callable_signature(node.args[1], module, defs)
    if signature is None:
        return
    if signature.kwarg:
        accepts_keyword = True
    else:
        accepts_keyword = STRATEGY_FACTORY_KEYWORD in (
            *signature.kwonly,
            *signature.positional[1:],
        )
    takes_spec = signature.vararg or len(signature.positional) >= 1
    required_beyond_spec = [
        name
        for name in signature.positional[1:]
        if name not in signature.optional_positional() and name != STRATEGY_FACTORY_KEYWORD
    ] + [name for name in signature.kwonly_required if name != STRATEGY_FACTORY_KEYWORD]
    problems = []
    if not takes_spec:
        problems.append("must accept the parsed StrategySpec as its first argument")
    if not accepts_keyword:
        problems.append(f"must accept the keyword argument {STRATEGY_FACTORY_KEYWORD!r}")
    if required_beyond_spec:
        problems.append(
            "has extra required parameter(s) make_strategy() will not pass: "
            + ", ".join(required_beyond_spec)
        )
    for problem in problems:
        yield Finding(
            rule="registry",
            path=module.relpath,
            line=node.lineno,
            col=node.col_offset,
            message=f"register_strategy factory {problem} "
            "(contract: factory(spec, *, fixed_period_s=...) -> Strategy)",
        )

"""The contract checkers, in the order ``coopckpt lint`` runs them."""

from __future__ import annotations

from repro.analysis.base import Checker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.digest_drift import DigestDriftChecker
from repro.analysis.checkers.fsops import FsopsChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.registries import RegistryConformanceChecker

__all__ = [
    "ALL_CHECKERS",
    "DeterminismChecker",
    "DigestDriftChecker",
    "FsopsChecker",
    "LockDisciplineChecker",
    "RegistryConformanceChecker",
    "make_checkers",
]

ALL_CHECKERS: tuple[type[Checker], ...] = (
    DeterminismChecker,
    FsopsChecker,
    DigestDriftChecker,
    LockDisciplineChecker,
    RegistryConformanceChecker,
)


def make_checkers(rules: list[str] | None = None) -> list[Checker]:
    """Instantiate the selected checkers (all of them by default)."""
    selected = []
    for cls in ALL_CHECKERS:
        if rules is None or cls.rule in rules:
            selected.append(cls())
    return selected

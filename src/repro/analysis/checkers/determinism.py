"""Determinism checker: no wall clock, global RNG or set iteration in the
simulation path.

The bit-identity contract (same seeds → same bytes on every backend) only
holds if the modules that *compute* results never consult ambient state:

* wall-clock reads (``time.time``, ``datetime.now``, ``time.monotonic``,
  perf counters) — two runs would disagree;
* process-global RNG (module-level ``random.*``, ``np.random.*`` free
  functions, ``os.urandom``, ``uuid.uuid4``, ``secrets``) — state shared
  across cells breaks per-seed reproducibility (seeded instances such as
  ``random.Random(seed)`` or ``np.random.default_rng(seed)`` are fine);
* iterating a ``set``/``frozenset`` — iteration order depends on insertion
  history and ``PYTHONHASHSEED``; wrap the set in ``sorted(...)`` instead.

Scope: :data:`repro.analysis.policy.DETERMINISM_TARGETS`.  The service,
spool and cache layers are exempt by named policy
(:data:`~repro.analysis.policy.DETERMINISM_EXEMPT`), not by accident.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis import policy
from repro.analysis.base import Checker, Finding, ModuleInfo, Project

__all__ = ["DeterminismChecker"]

#: Dotted call origins that read the wall clock.
WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Dotted call origins that consume process-global or OS entropy.
GLOBAL_ENTROPY = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.seed",
        "random.random",
        "random.uniform",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.gauss",
        "random.normalvariate",
        "random.expovariate",
        "random.betavariate",
        "random.gammavariate",
        "random.lognormvariate",
        "random.weibullvariate",
        "random.getrandbits",
        "random.paretovariate",
        "random.triangular",
        "random.vonmisesvariate",
    }
)

#: ``numpy.random`` free functions share one hidden global generator.
_NUMPY_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"})


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically-certain set values: literals, comprehensions, set()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.findings: list[Finding] = []
        #: Local names currently known to hold a set (simple forward scan).
        self._set_names: set[str] = set()

    # ------------------------------------------------------------ helpers
    def _emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule="determinism",
                path=self.module.relpath,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def _check_iter_target(self, node: ast.expr, context: str) -> None:
        if _is_set_expr(node):
            self._emit(
                node,
                f"{context} iterates a set: iteration order depends on "
                "PYTHONHASHSEED and insertion history; wrap it in sorted(...)",
            )
        elif isinstance(node, ast.Name) and node.id in self._set_names:
            self._emit(
                node,
                f"{context} iterates set {node.id!r}: iteration order depends on "
                "PYTHONHASHSEED and insertion history; wrap it in sorted(...)",
            )

    # ------------------------------------------------------------ visits
    def visit_Call(self, node: ast.Call) -> None:
        origin = self.module.imports.resolve(node.func)
        if origin is not None:
            if origin in WALL_CLOCK:
                self._emit(
                    node,
                    f"wall-clock read {origin}() in a determinism-contract module; "
                    "simulated results must be a pure function of (config, seed)",
                )
            elif origin in GLOBAL_ENTROPY:
                self._emit(
                    node,
                    f"{origin}() uses process-global/OS entropy; draw from a "
                    "seeded generator (random.Random(seed) / "
                    "np.random.default_rng(seed)) instead",
                )
            else:
                parts = origin.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in ("numpy", "np")
                    and parts[1] == "random"
                    and parts[2] not in _NUMPY_RANDOM_OK
                ):
                    self._emit(
                        node,
                        f"{origin}() draws from numpy's hidden global generator; "
                        "use np.random.default_rng(seed)",
                    )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Track obvious set-valued locals so `for x in pool:` is caught too.
        for target in node.targets:
            if isinstance(target, ast.Name):
                if _is_set_expr(node.value):
                    self._set_names.add(target.id)
                else:
                    self._set_names.discard(target.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iter_target(node.iter, "for loop")
        self.generic_visit(node)

    def visit_comprehension_generators(self, generators: list[ast.comprehension]) -> None:
        for gen in generators:
            self._check_iter_target(gen.iter, "comprehension")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)


class DeterminismChecker(Checker):
    rule = "determinism"
    description = (
        "no wall clock, global RNG or unordered set iteration in the "
        "simulation path (repro.sim / repro.iosched / repro.platform / "
        "repro.exec.digest)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        return _scan(project)


def _scan(project: Project) -> Iterator[Finding]:
    for module in project.matching(policy.DETERMINISM_TARGETS):
        visitor = _Visitor(module)
        visitor.visit(module.tree)
        yield from visitor.findings

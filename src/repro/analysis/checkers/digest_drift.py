"""Digest-field-drift checker: digest inputs may not change silently.

The on-disk result cache is keyed by ``config_digest``: a hash over every
:class:`~repro.simulation.config.SimulationConfig` field except the ones
``repro.exec.digest._EXCLUDED_FIELDS`` names, stamped with
``DIGEST_VERSION``.  Adding, removing or re-excluding a field changes what
the digest *means* — cached entries keyed under the old meaning silently
stop (or worse, keep) matching — so the contract is: any change to the
digest-relevant field set must land together with a ``DIGEST_VERSION``
bump (and regenerated golden pins).

This checker extracts the field set *statically* (AST only, no imports)
and compares it against the committed manifest
(``src/repro/analysis/digest_manifest.json``):

* fields drifted, version unchanged  →  **error** (the silent-drift case);
* version bumped                     →  the manifest must be regenerated in
  the same diff (``coopckpt lint --write-digest-manifest``), so a stale
  manifest is also an error;
* manifest matches extraction        →  clean.

The manifest is committed next to the checker, which is what lets a code
review see the digest schema change as an explicit diff hunk.
"""

from __future__ import annotations

import ast
import json
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.analysis import policy
from repro.analysis.base import Checker, Finding, ModuleInfo, Project

__all__ = ["DigestDriftChecker", "extract_digest_schema", "write_manifest"]

#: The committed manifest, next to this package.
MANIFEST_PATH = Path(__file__).resolve().parent.parent / "digest_manifest.json"

#: The dataclass whose fields feed the digest, and the names the digest
#: module must define.
CONFIG_CLASS = "SimulationConfig"
VERSION_NAME = "DIGEST_VERSION"
EXCLUDED_NAME = "_EXCLUDED_FIELDS"


@dataclass(frozen=True)
class DigestSchema:
    """Statically extracted digest inputs."""

    version: str
    fields: tuple[str, ...]  #: digest-relevant config fields, sorted
    excluded: tuple[str, ...]  #: fields excluded from the digest, sorted

    def to_payload(self) -> dict:
        return {
            "comment": (
                "Digest-relevant SimulationConfig fields, extracted by "
                "`coopckpt lint` (rule digest-drift). Regenerate with "
                "`coopckpt lint --write-digest-manifest` -- only together "
                "with a DIGEST_VERSION bump when `fields` changed."
            ),
            "digest_version": self.version,
            "fields": list(self.fields),
            "excluded": list(self.excluded),
        }


def _config_fields(module: ModuleInfo) -> tuple[list[str], int]:
    """Field names of the config dataclass, plus the class line number."""
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            names = [
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            ]
            return names, node.lineno
    return [], 1


def _digest_constants(module: ModuleInfo) -> tuple[str | None, list[str] | None, int]:
    """(DIGEST_VERSION, excluded-field names, version line) from the digest
    module, or ``None`` components when not statically extractable."""
    version: str | None = None
    excluded: list[str] | None = None
    version_line = 1
    for node in module.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id == VERSION_NAME:
            if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
                version = node.value.value
                version_line = node.lineno
        elif target.id == EXCLUDED_NAME:
            value = node.value
            if isinstance(value, ast.Call) and value.args:
                value = value.args[0]  # frozenset({...})
            if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
                items = [
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant) and isinstance(element.value, str)
                ]
                if len(items) == len(value.elts):
                    excluded = items
    return version, excluded, version_line


def extract_digest_schema(project: Project) -> tuple[DigestSchema | None, list[Finding]]:
    """Extract the digest schema from the project, or explain why not."""
    problems: list[Finding] = []
    config = project.module(policy.DIGEST_CONFIG_MODULE)
    digest = project.module(policy.DIGEST_MODULE)
    if config is None or digest is None:
        missing = policy.DIGEST_CONFIG_MODULE if config is None else policy.DIGEST_MODULE
        problems.append(
            Finding(
                rule="digest-drift",
                path=".",
                line=1,
                col=0,
                message=f"cannot extract digest schema: module {missing} not found "
                "under the source root",
            )
        )
        return None, problems
    fields, class_line = _config_fields(config)
    if not fields:
        problems.append(
            Finding(
                rule="digest-drift",
                path=config.relpath,
                line=1,
                col=0,
                message=f"cannot find dataclass {CONFIG_CLASS} with annotated fields",
            )
        )
    version, excluded, version_line = _digest_constants(digest)
    if version is None:
        problems.append(
            Finding(
                rule="digest-drift",
                path=digest.relpath,
                line=1,
                col=0,
                message=f"cannot statically read {VERSION_NAME} "
                "(expected a string-constant assignment)",
            )
        )
    if excluded is None:
        problems.append(
            Finding(
                rule="digest-drift",
                path=digest.relpath,
                line=1,
                col=0,
                message=f"cannot statically read {EXCLUDED_NAME} "
                "(expected frozenset({...}) of string constants)",
            )
        )
    if problems or version is None or excluded is None or not fields:
        return None, problems
    ghost = sorted(set(excluded) - set(fields))
    if ghost:
        problems.append(
            Finding(
                rule="digest-drift",
                path=digest.relpath,
                line=version_line,
                col=0,
                message=f"{EXCLUDED_NAME} names non-existent config field(s): "
                f"{', '.join(ghost)} (stale exclusion after a rename?)",
            )
        )
        return None, problems
    relevant = tuple(sorted(set(fields) - set(excluded)))
    return DigestSchema(version=version, fields=relevant, excluded=tuple(sorted(excluded))), []


def write_manifest(schema: DigestSchema, path: Path | None = None) -> Path:
    """Write the manifest (used by ``--write-digest-manifest``)."""
    target = path or MANIFEST_PATH
    target.write_text(json.dumps(schema.to_payload(), indent=2) + "\n", encoding="utf-8")
    return target


class DigestDriftChecker(Checker):
    rule = "digest-drift"
    description = (
        "digest-relevant SimulationConfig fields match the committed "
        "manifest; changing them requires a DIGEST_VERSION bump in the "
        "same diff"
    )

    def __init__(self, manifest_path: Path | None = None) -> None:
        self.manifest_path = manifest_path or MANIFEST_PATH

    def check(self, project: Project) -> Iterable[Finding]:
        schema, problems = extract_digest_schema(project)
        if schema is None:
            return problems
        config = project.module(policy.DIGEST_CONFIG_MODULE)
        digest = project.module(policy.DIGEST_MODULE)
        assert config is not None and digest is not None  # extract() verified
        _, class_line = _config_fields(config)
        _, _, version_line = _digest_constants(digest)
        manifest_name = self.manifest_path.name
        try:
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
            recorded = DigestSchema(
                version=str(manifest["digest_version"]),
                fields=tuple(manifest["fields"]),
                excluded=tuple(manifest["excluded"]),
            )
        except FileNotFoundError:
            return [
                Finding(
                    rule="digest-drift",
                    path=digest.relpath,
                    line=version_line,
                    col=0,
                    message=f"digest manifest {manifest_name} is missing; "
                    "generate it with `coopckpt lint --write-digest-manifest` "
                    "and commit it",
                )
            ]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            return [
                Finding(
                    rule="digest-drift",
                    path=digest.relpath,
                    line=version_line,
                    col=0,
                    message=f"digest manifest {manifest_name} is unreadable "
                    f"({exc}); regenerate it with --write-digest-manifest",
                )
            ]
        findings: list[Finding] = []
        drifted = recorded.fields != schema.fields or recorded.excluded != schema.excluded
        if drifted and recorded.version == schema.version:
            added = sorted(set(schema.fields) - set(recorded.fields))
            removed = sorted(set(recorded.fields) - set(schema.fields))
            details = []
            if added:
                details.append(f"now digest-relevant: {', '.join(added)}")
            if removed:
                details.append(f"no longer digest-relevant: {', '.join(removed)}")
            findings.append(
                Finding(
                    rule="digest-drift",
                    path=config.relpath,
                    line=class_line,
                    col=0,
                    message="digest-relevant fields changed without a "
                    f"{VERSION_NAME} bump ({'; '.join(details) or 'exclusion set changed'}); "
                    f"bump {VERSION_NAME}, regenerate the golden pins and the "
                    "manifest (--write-digest-manifest) in the same commit",
                )
            )
        elif recorded.version != schema.version or drifted:
            findings.append(
                Finding(
                    rule="digest-drift",
                    path=digest.relpath,
                    line=version_line,
                    col=0,
                    message=f"{manifest_name} is stale (records digest v"
                    f"{recorded.version}, code says v{schema.version}); "
                    "regenerate it with `coopckpt lint --write-digest-manifest` "
                    "in the same commit as the version bump",
                )
            )
        return findings

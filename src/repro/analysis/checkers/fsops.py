"""Fsops-discipline checker: spool filesystem side effects use the choke point.

Every filesystem *mutation* performed by :mod:`repro.distributed` must go
through :mod:`repro.distributed.fsops` (or the shared
``repro.exec.cache.atomic_write_text`` it delegates to).  That choke point
is what makes the fault-injection suite able to fail/delay/count every
operation — a raw ``os.rename`` or ``open(..., "w")`` is invisible to it,
so the crash-safety proofs silently stop covering that code path.

Flagged inside :data:`repro.analysis.policy.FSOPS_TARGETS` (minus the choke
point itself):

* ``os.rename/replace/remove/unlink/rmdir/removedirs/mkdir/makedirs/
  utime/truncate/link/symlink`` and ``shutil`` mutation helpers;
* built-in ``open`` with a write/append/exclusive/update mode (or a mode
  the checker cannot prove is read-only);
* ``Path.write_text/write_bytes/touch/unlink/rename/replace/rmdir/mkdir``
  method calls on anything that is not the fsops module itself.

Reads (``open(path)``, ``Path.read_text``, ``os.scandir``) are allowed:
the contract covers side effects, which is what fault injection and the
O(shards-touched) op accounting need to observe.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis import policy
from repro.analysis.base import Checker, Finding, ModuleInfo, Project, module_matches

__all__ = ["FsopsChecker"]

#: Dotted origins that mutate the filesystem directly.
RAW_MUTATIONS = frozenset(
    {
        "os.rename",
        "os.replace",
        "os.remove",
        "os.unlink",
        "os.rmdir",
        "os.removedirs",
        "os.renames",
        "os.mkdir",
        "os.makedirs",
        "os.utime",
        "os.truncate",
        "os.link",
        "os.symlink",
        "os.chmod",
        "shutil.move",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.rmtree",
        "tempfile.mkstemp",
        "tempfile.mkdtemp",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
    }
)

#: Path/file-object method names that mutate the filesystem.
MUTATING_METHODS = frozenset(
    {
        "write_text",
        "write_bytes",
        "touch",
        "unlink",
        "rename",
        "rmdir",
        "mkdir",
        "symlink_to",
        "hardlink_to",
        "chmod",
    }
)
# ``Path.replace`` is deliberately absent: the name collides with
# ``str.replace`` (ubiquitous and harmless), and ``os.replace`` plus the
# write_* methods already cover the realistic bypass routes.


def _open_mode(node: ast.Call) -> str | None:
    """The constant mode string of an ``open``-style call, if provable."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic: cannot prove it is read-only


def _is_write_mode(mode: str | None) -> bool:
    return mode is None or any(ch in mode for ch in "wax+")


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.findings: list[Finding] = []

    def _emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule="fsops",
                path=self.module.relpath,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        origin = self.module.imports.resolve(node.func)
        if origin is not None:
            if any(
                origin == choke or origin.startswith(choke + ".")
                for choke in policy.FSOPS_CHOKEPOINTS
            ):
                self.generic_visit(node)
                return
            if origin in RAW_MUTATIONS:
                self._emit(
                    node,
                    f"raw filesystem mutation {origin}() bypasses the fsops "
                    "choke point; route it through repro.distributed.fsops so "
                    "fault injection and op accounting can observe it",
                )
                self.generic_visit(node)
                return
            if origin == "open" or origin == "io.open":
                mode = _open_mode(node)
                if _is_write_mode(mode):
                    shown = "dynamic mode" if mode is None else f"mode {mode!r}"
                    self._emit(
                        node,
                        f"open(..., {shown}) writes outside the fsops choke "
                        "point; use fsops.write_text / fsops.append_text "
                        "(atomic, fault-injectable) instead",
                    )
                self.generic_visit(node)
                return
        if isinstance(node.func, ast.Attribute) and node.func.attr in MUTATING_METHODS:
            self._emit(
                node,
                f".{node.func.attr}() mutates the filesystem outside the fsops "
                "choke point; use the matching repro.distributed.fsops helper",
            )
        self.generic_visit(node)


class FsopsChecker(Checker):
    rule = "fsops"
    description = (
        "every filesystem side effect in repro.distributed routes through "
        "the fsops choke point (fault injection + op accounting)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        return _scan(project)


def _scan(project: Project) -> Iterator[Finding]:
    for module in project.matching(policy.FSOPS_TARGETS):
        if module_matches(module.name, ("repro.distributed.fsops",)):
            continue  # the choke point implements the raw calls by design
        visitor = _Visitor(module)
        visitor.visit(module.tree)
        yield from visitor.findings

"""Guarded-by-lock checker: lock-guarded fields stay lock-guarded.

The service and store layers follow one convention: a class that mutates
shared state under ``with self._lock:`` (any ``self.*lock*`` attribute)
treats every field it assigns there as *guarded by that lock* — readers
snapshot under the lock, writers never touch the field outside it.  The
convention is easy to state and easy to silently break: one new handler
method assigning ``self.cells_done`` without the ``with`` compiles, passes
single-threaded tests, and loses updates in production.

This checker makes the convention mechanical.  Per class in
:data:`repro.analysis.policy.LOCK_TARGETS`:

1. collect the *guarded set*: every ``self.X`` assigned (plain, augmented,
   annotated or tuple-unpacked) lexically inside a ``with self.<lock>:``
   block, for each lock attribute whose name contains ``lock``;
2. flag every assignment to a guarded field outside such a block.

``__init__``/``__post_init__`` are exempt: they run before the object is
shared, which is the same reasoning the convention itself rests on.
Nested ``class``/``def`` scopes get their own ``self``, so they are
analysed separately and never leak writes into the enclosing class.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis import policy
from repro.analysis.base import Checker, Finding, ModuleInfo, Project

__all__ = ["LockDisciplineChecker"]

_CONSTRUCTORS = ("__init__", "__post_init__", "__new__")


def _lock_name(item: ast.withitem) -> str | None:
    """The attribute name of a ``with self.<lock>:`` context item."""
    expr = item.context_expr
    # `with self._lock:` and `with self._lock, other:` both count; so does
    # an acquire through a helper like `self._lock.acquire()` NOT — only the
    # context-manager form is recognised, which is the codebase idiom.
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and "lock" in expr.attr.lower()
    ):
        return expr.attr
    return None


def _self_targets(node: ast.stmt) -> Iterator[ast.Attribute]:
    """``self.X`` attribute targets of one assignment statement."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        yield from _attribute_targets(target)


def _attribute_targets(target: ast.expr) -> Iterator[ast.Attribute]:
    if isinstance(target, ast.Attribute):
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            yield target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _attribute_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _attribute_targets(target.value)


class _ClassScan:
    """One pass over a class body collecting writes in/out of lock blocks."""

    def __init__(self, class_node: ast.ClassDef) -> None:
        #: field -> lock names it was assigned under
        self.guarded: dict[str, set[str]] = {}
        #: (field, node, method name) for writes outside any lock block
        self.unguarded: list[tuple[str, ast.Attribute, str]] = []
        for method in class_node.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_method(method)

    def _walk_method(self, method: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        exempt = method.name in _CONSTRUCTORS
        self._walk(list(method.body), method.name, held=frozenset(), exempt=exempt)

    def _walk(
        self,
        statements: list[ast.stmt],
        method_name: str,
        held: frozenset[str],
        exempt: bool,
    ) -> None:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # a nested scope has its own `self`
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for attr in _self_targets(stmt):
                    if held:
                        for lock in held:
                            self.guarded.setdefault(attr.attr, set()).add(lock)
                    elif not exempt:
                        self.unguarded.append((attr.attr, attr, method_name))
            now_held = held
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                locks = {name for item in stmt.items if (name := _lock_name(item))}
                now_held = held | locks
                self._walk(list(stmt.body), method_name, now_held, exempt)
                continue
            for body in _sub_bodies(stmt):
                self._walk(body, method_name, held, exempt)


def _sub_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field_name, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


class LockDisciplineChecker(Checker):
    rule = "locks"
    description = (
        "fields assigned under `with self._lock:` in the service/store/"
        "metrics layers are never written outside the lock"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        return _scan(project)


def _scan(project: Project) -> Iterator[Finding]:
    for module in project.matching(policy.LOCK_TARGETS):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            scan = _ClassScan(node)
            if not scan.guarded:
                continue
            for field_name, attr, method_name in scan.unguarded:
                locks = scan.guarded.get(field_name)
                if not locks:
                    continue
                lock_list = ", ".join(f"self.{name}" for name in sorted(locks))
                yield Finding(
                    rule="locks",
                    path=module.relpath,
                    line=attr.lineno,
                    col=attr.col_offset,
                    message=f"{node.name}.{method_name} writes self.{field_name} "
                    f"outside `with {lock_list}:` although the field is "
                    "lock-guarded elsewhere in the class; take the lock (or "
                    "move the write into __init__)",
                )

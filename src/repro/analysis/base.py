"""Core types of the contract linter: findings, modules, pragmas, checkers.

The linter operates on a *project*: a source root (normally ``src/``)
holding the ``repro`` package tree.  Every Python file under the root is
parsed once into a :class:`ModuleInfo` — AST, source lines, dotted module
name and the ``# repro: allow[rule]`` suppression pragmas it carries — and
each checker walks those modules to emit :class:`Finding` records.

Pragma syntax (one comment, same line as the violation or the line
directly above it)::

    value = time.time()  # repro: allow[determinism] lease stamps are wall-clock by design
    # repro: allow[fsops] journal appends are whole-line atomic on POSIX
    handle.write(line)

The reason text after the closing bracket is **mandatory**: a pragma with
no reason is itself reported (rule ``pragma``), as is a pragma that
suppresses nothing — suppressions must never outlive the violation they
excuse.  Several rules may share one pragma: ``allow[determinism,fsops]``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "Checker",
    "Finding",
    "ImportMap",
    "ModuleInfo",
    "Pragma",
    "Project",
    "module_matches",
]

#: ``# repro: allow[rule1,rule2] reason...`` — the reason is everything after
#: the bracket (optionally introduced by ``--`` or ``:``).
_PRAGMA_RE = re.compile(
    r"\A#\s*repro:\s*allow\[(?P<rules>[a-z0-9_,\s-]+)\]\s*(?:--|:)?\s*(?P<reason>.*)$"
)

#: A comment that *intends* to be a pragma (used to report malformed ones).
_PRAGMA_INTRO_RE = re.compile(r"\A#\s*repro:\s*allow")


@dataclass(frozen=True)
class Finding:
    """One contract violation at a specific source location."""

    rule: str
    path: str  #: source-root-relative POSIX path
    line: int
    col: int
    message: str

    @property
    def key(self) -> str:
        """Line-number-free identity used by the baseline (survives edits
        that only move code around)."""
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str


class ImportMap:
    """Resolves names in one module to dotted origins, through its imports.

    ``import os`` maps ``os`` → ``os``; ``from repro.distributed import
    fsops`` maps ``fsops`` → ``repro.distributed.fsops``; ``from time import
    time as now`` maps ``now`` → ``time.time``.  :meth:`resolve` walks an
    expression like ``fsops.write_text`` back to
    ``"repro.distributed.fsops.write_text"`` (or ``None`` when the head name
    is not an import — a local variable, say).
    """

    def __init__(self, tree: ast.Module) -> None:
        self._names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    origin = alias.name if alias.asname else alias.name.partition(".")[0]
                    self._names[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._names[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def origin(self, name: str) -> str | None:
        """Dotted origin of one imported local name (``None`` if not imported)."""
        return self._names.get(name)

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of a ``Name``/``Attribute`` chain, or ``None``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self._names.get(node.id, node.id)
        return ".".join([head, *reversed(parts)])


@dataclass
class ModuleInfo:
    """One parsed source file of the project."""

    name: str  #: dotted module name relative to the source root
    path: Path  #: absolute path on disk
    relpath: str  #: source-root-relative POSIX path (what findings report)
    source: str
    tree: ast.Module
    pragmas: tuple[Pragma, ...]
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree)

    def pragma_for(self, rule: str, line: int) -> Pragma | None:
        """The pragma (if any) covering ``rule`` at ``line``: same line, or a
        comment-only pragma on the line directly above."""
        for pragma in self.pragmas:
            if rule in pragma.rules and pragma.line in (line, line - 1):
                return pragma
        return None


def _comment_tokens(source: str) -> Iterator[tuple[int, int, str]]:
    """(line, col, text) of every real comment token — docstrings that merely
    *show* a pragma (like the one above) must not parse as pragmas."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError):
        return  # the ast.parse pass reports the syntax problem


def _parse_pragmas(source: str, relpath: str) -> tuple[tuple[Pragma, ...], list[Finding]]:
    """Extract pragmas; malformed ones (no reason) become findings."""
    pragmas: list[Pragma] = []
    problems: list[Finding] = []
    for lineno, col, text in _comment_tokens(source):
        match = _PRAGMA_RE.match(text)
        if match is None:
            if _PRAGMA_INTRO_RE.match(text):
                problems.append(
                    Finding(
                        rule="pragma",
                        path=relpath,
                        line=lineno,
                        col=col,
                        message="malformed pragma; expected "
                        "'# repro: allow[rule] <reason>'",
                    )
                )
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = match.group("reason").strip()
        if not reason:
            problems.append(
                Finding(
                    rule="pragma",
                    path=relpath,
                    line=lineno,
                    col=col,
                    message=f"pragma allow[{','.join(rules)}] has no reason text; "
                    "every suppression must say why it is safe",
                )
            )
            continue
        pragmas.append(Pragma(line=lineno, rules=rules, reason=reason))
    return tuple(pragmas), problems


class Project:
    """Every parsed module under one source root."""

    def __init__(self, root: Path, modules: list[ModuleInfo], problems: list[Finding]):
        self.root = root
        self.modules = modules
        #: Findings produced while loading (syntax errors, malformed pragmas).
        self.load_problems = problems
        self._by_name = {module.name: module for module in modules}

    @classmethod
    def load(cls, root: str | Path) -> "Project":
        """Parse every ``*.py`` file under ``root`` (deterministic order)."""
        root = Path(root).resolve()
        if not root.is_dir():
            raise ConfigurationError(f"no source root at {root}")
        modules: list[ModuleInfo] = []
        problems: list[Finding] = []
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            relpath = path.relative_to(root).as_posix()
            parts = list(path.relative_to(root).with_suffix("").parts)
            if parts[-1] == "__init__":
                parts.pop()
            name = ".".join(parts)
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                problems.append(
                    Finding(
                        rule="parse",
                        path=relpath,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"cannot parse: {exc.msg}",
                    )
                )
                continue
            pragmas, pragma_problems = _parse_pragmas(source, relpath)
            problems.extend(pragma_problems)
            modules.append(
                ModuleInfo(
                    name=name, path=path, relpath=relpath, source=source,
                    tree=tree, pragmas=pragmas,
                )
            )
        return cls(root, modules, problems)

    def module(self, name: str) -> ModuleInfo | None:
        return self._by_name.get(name)

    def matching(self, prefixes: Iterable[str]) -> Iterator[ModuleInfo]:
        """Modules whose dotted name falls under any of ``prefixes``."""
        for module in self.modules:
            if module_matches(module.name, prefixes):
                yield module


def module_matches(name: str, prefixes: Iterable[str]) -> bool:
    """True when dotted ``name`` equals or falls under any dotted prefix."""
    return any(name == prefix or name.startswith(prefix + ".") for prefix in prefixes)


class Checker:
    """Base class of contract checkers.

    A checker declares its ``rule`` name and implements :meth:`check`,
    yielding findings over the whole project (most checkers iterate the
    modules selected by their policy in :mod:`repro.analysis.policy`).
    """

    #: Rule name (what pragmas and ``--rule`` select).
    rule = "abstract"
    #: One-line description shown by ``coopckpt lint --list-rules``.
    description = ""

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

"""Module policy: which contracts bind which parts of the tree.

Every allowlist here is *named policy*, not accident: a module that may
legitimately read the wall clock (the service layer stamping job lifecycle
times, worker heartbeats, cache mtimes) is listed below with the reason,
and everything else inside a checker's target set is held to the contract.
Moving a module between these lists is a reviewed change to the project's
correctness story and belongs in the same commit as the code move.
"""

from __future__ import annotations

__all__ = [
    "DETERMINISM_TARGETS",
    "DETERMINISM_EXEMPT",
    "FSOPS_TARGETS",
    "FSOPS_CHOKEPOINTS",
    "LOCK_TARGETS",
    "DIGEST_CONFIG_MODULE",
    "DIGEST_MODULE",
]

#: Modules whose results must be a pure function of (config, seed): the
#: simulation hot path, the schedulers it drives, the platform models and
#: the digest that keys the result cache.  Wall-clock reads, process-global
#: RNG state and unordered set iteration are forbidden here.
DETERMINISM_TARGETS: tuple[str, ...] = (
    "repro.sim",
    "repro.iosched",
    "repro.platform",
    "repro.exec.digest",
)

#: Layers deliberately *outside* the determinism contract, with the reason.
#: They are exempt because they never feed simulated results — not because
#: nobody looked.  (These are documentation: the checker only scans
#: DETERMINISM_TARGETS, so membership here is informative, and tested.)
DETERMINISM_EXEMPT: dict[str, str] = {
    "repro.service": "job lifecycle timestamps are wall-clock by definition",
    "repro.distributed": "lease heartbeats and claim stamps measure real time",
    "repro.exec.cache": "cache gc ages entries by real mtime",
    "repro.store": "store mtimes and stats record real time",
    "repro.exec.journal": "journal entries are stamped with real time",
}

#: The spool package: every filesystem side effect must route through the
#: fsops choke point so fault injection and op accounting see it.
FSOPS_TARGETS: tuple[str, ...] = ("repro.distributed",)

#: The choke point itself (and the shared atomic-write helper it delegates
#: to) are the only places raw filesystem mutation is allowed.
FSOPS_CHOKEPOINTS: tuple[str, ...] = (
    "repro.distributed.fsops",
    "repro.exec.cache",
)

#: Modules whose classes follow the guarded-by-lock convention: a field
#: written under ``with self._lock:`` anywhere in a class is lock-guarded
#: everywhere (except ``__init__``/``__post_init__``, which run before the
#: object is shared).
LOCK_TARGETS: tuple[str, ...] = (
    "repro.service",
    "repro.store.sqlite",
    "repro.distributed.metrics",
)

#: Where the digest-relevant configuration fields are declared, and where
#: the digest (version + exclusion set) is computed.
DIGEST_CONFIG_MODULE = "repro.simulation.config"
DIGEST_MODULE = "repro.exec.digest"

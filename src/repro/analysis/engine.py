"""Lint engine: run checkers, apply pragmas and the baseline, render.

The pipeline is::

    Project.load(root)
      → checker.check(project) for every selected checker
      → pragma suppression   (# repro: allow[rule] reason, same/previous line)
      → baseline suppression (committed JSON of finding keys; shrink-only)
      → LintReport

Two meta-rules ride along:

* ``pragma`` — malformed pragmas (no reason) and pragmas that suppressed
  nothing this run.  A suppression must never outlive its violation.
* ``baseline`` — baseline entries that no finding matched.  The baseline
  may only shrink: stale entries are errors, so the committed file
  monotonically approaches (and on this repo, is) empty.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import Checker, Finding, Project
from repro.analysis.checkers import make_checkers

__all__ = ["LintReport", "Suppression", "load_baseline", "run_lint", "BASELINE_PATH"]

#: The committed baseline, next to this module.  Empty on this repo — it
#: exists so downstream forks can adopt the linter before fixing legacy
#: findings, and so stale entries are caught mechanically.
BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"


@dataclass(frozen=True)
class Suppression:
    """One finding silenced by a pragma or a baseline entry."""

    finding: Finding
    via: str  #: "pragma" or "baseline"
    reason: str


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Suppression] = field(default_factory=list)
    checked_modules: int = 0
    rules: tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} "
            f"({len(self.suppressed)} suppressed) across "
            f"{self.checked_modules} modules [rules: {', '.join(self.rules)}]"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "findings": [
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "message": finding.message,
                    "key": finding.key,
                }
                for finding in self.findings
            ],
            "suppressed": [
                {
                    "rule": item.finding.rule,
                    "path": item.finding.path,
                    "line": item.finding.line,
                    "via": item.via,
                    "reason": item.reason,
                }
                for item in self.suppressed
            ],
            "checked_modules": self.checked_modules,
            "rules": list(self.rules),
            "exit_code": self.exit_code,
        }
        return json.dumps(payload, indent=2)


def load_baseline(path: Path | None = None) -> set[str]:
    """Finding keys grandfathered by the committed baseline."""
    target = path or BASELINE_PATH
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return set()
    entries = payload.get("findings", []) if isinstance(payload, dict) else payload
    return {str(entry) for entry in entries}


def write_baseline(keys: set[str], path: Path | None = None) -> Path:
    target = path or BASELINE_PATH
    payload = {
        "comment": (
            "Grandfathered contract-lint findings (shrink-only: fixing a "
            "finding MUST remove its entry; stale entries fail the lint). "
            "Regenerate with `coopckpt lint --write-baseline`."
        ),
        "findings": sorted(keys),
    }
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target


def run_lint(
    root: str | Path,
    *,
    rules: list[str] | None = None,
    baseline_path: Path | None = None,
    checkers: list[Checker] | None = None,
) -> LintReport:
    """Run the contract linter over ``root`` and return the report."""
    project = Project.load(root)
    active = checkers if checkers is not None else make_checkers(rules)
    report = LintReport(
        checked_modules=len(project.modules),
        rules=tuple(checker.rule for checker in active),
    )
    raw: list[Finding] = []
    for checker in active:
        raw.extend(checker.check(project))
    # Load-time problems (syntax errors, malformed pragmas) are always-on:
    # they are defects of the lint input itself, not of any one rule.
    raw.extend(project.load_problems)

    modules_by_path = {module.relpath: module for module in project.modules}
    used_pragmas: set[tuple[str, int]] = set()
    baseline = load_baseline(baseline_path)
    matched_baseline: set[str] = set()

    for finding in raw:
        module = modules_by_path.get(finding.path)
        pragma = (
            module.pragma_for(finding.rule, finding.line)
            if module is not None and finding.rule not in ("pragma", "parse")
            else None
        )
        if pragma is not None:
            used_pragmas.add((finding.path, pragma.line))
            report.suppressed.append(
                Suppression(finding=finding, via="pragma", reason=pragma.reason)
            )
            continue
        if finding.key in baseline:
            matched_baseline.add(finding.key)
            report.suppressed.append(
                Suppression(finding=finding, via="baseline", reason="grandfathered")
            )
            continue
        report.findings.append(finding)

    # Unused pragmas: a suppression whose violation is gone must go too.
    for module in project.modules:
        for pragma in module.pragmas:
            if (module.relpath, pragma.line) not in used_pragmas:
                report.findings.append(
                    Finding(
                        rule="pragma",
                        path=module.relpath,
                        line=pragma.line,
                        col=0,
                        message=f"unused pragma allow[{','.join(pragma.rules)}]: "
                        "it suppresses nothing; remove it so suppressions "
                        "never outlive their violation",
                    )
                )

    # Stale baseline entries: the baseline may only shrink.
    for key in sorted(baseline - matched_baseline):
        report.findings.append(
            Finding(
                rule="baseline",
                path=(baseline_path or BASELINE_PATH).name,
                line=1,
                col=0,
                message=f"stale baseline entry (finding no longer occurs): {key}",
            )
        )

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return report

"""IORequest bookkeeping and the shared scheduler machinery (repro.iosched.base)."""

from __future__ import annotations

import pytest

from repro.apps.job import Job
from repro.apps.phases import IOKind
from repro.errors import SchedulingError
from repro.iosched.base import IORequest
from repro.iosched.ordered import OrderedScheduler
from repro.platform.io_subsystem import IOSubsystem
from repro.sim.engine import SimulationEngine
from repro.units import HOUR


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def io(engine) -> IOSubsystem:
    return IOSubsystem(engine, bandwidth_bytes_per_s=100.0)


@pytest.fixture
def job(tiny_classes) -> Job:
    return Job(app_class=tiny_classes[0], total_work_s=HOUR)


def make_request(job, kind=IOKind.INPUT, volume=500.0, submitted=0.0, **callbacks) -> IORequest:
    return IORequest(job=job, kind=kind, volume_bytes=volume, submitted_at=submitted, **callbacks)


def test_request_initial_state(job):
    request = make_request(job)
    assert request.pending
    assert not request.in_flight
    assert request.waited == 0.0
    assert request.waiting_for(12.0) == 12.0
    assert request.transfer is None


def test_request_rejects_negative_volume(job):
    with pytest.raises(SchedulingError):
        make_request(job, volume=-1.0)


def test_request_lifecycle_through_scheduler(engine, io, job):
    scheduler = OrderedScheduler(engine, io, node_mtbf_s=1e6)
    granted: list[float] = []
    completed: list[float] = []
    request = make_request(
        job,
        on_granted=lambda r: granted.append(engine.now),
        on_complete=lambda r: completed.append(engine.now),
    )
    scheduler.submit(request)
    engine.run()
    assert granted == [0.0]
    assert completed == [pytest.approx(5.0)]
    assert request.granted_at == 0.0
    assert request.completed_at == pytest.approx(5.0)
    assert not request.pending and not request.in_flight
    assert request.waited == 0.0


def test_token_scheduler_serializes_requests(engine, io, job, tiny_classes):
    scheduler = OrderedScheduler(engine, io, node_mtbf_s=1e6)
    other = Job(app_class=tiny_classes[1], total_work_s=HOUR)
    completions: list[str] = []
    first = make_request(job, volume=500.0, on_complete=lambda r: completions.append("first"))
    second = make_request(other, volume=500.0, on_complete=lambda r: completions.append("second"))
    scheduler.submit(first)
    scheduler.submit(second)
    # Only one transfer is in flight at a time.
    assert len(scheduler.active_requests()) == 1
    assert len(scheduler.pending_requests()) == 1
    engine.run()
    assert completions == ["first", "second"]
    # FCFS: the second request waited exactly the service time of the first.
    assert second.waited == pytest.approx(5.0)
    assert first.completed_at == pytest.approx(5.0)
    assert second.completed_at == pytest.approx(10.0)


def test_cancel_job_removes_pending_and_aborts_active(engine, io, job, tiny_classes):
    scheduler = OrderedScheduler(engine, io, node_mtbf_s=1e6)
    other = Job(app_class=tiny_classes[1], total_work_s=HOUR)
    done: list[str] = []
    active = make_request(job, volume=1000.0, on_complete=lambda r: done.append("active"))
    waiting = make_request(job, volume=1000.0, on_complete=lambda r: done.append("waiting"))
    unaffected = make_request(other, volume=100.0, on_complete=lambda r: done.append("other"))
    scheduler.submit(active)
    scheduler.submit(waiting)
    scheduler.submit(unaffected)
    engine.schedule(1.0, lambda: scheduler.cancel_job(job))
    engine.run()
    assert done == ["other"]
    assert active.cancelled and waiting.cancelled
    # After the cancellation the third request got the token immediately.
    assert unaffected.granted_at == pytest.approx(1.0)


def test_cancelled_transfer_does_not_fire_completion(engine, io, job):
    scheduler = OrderedScheduler(engine, io, node_mtbf_s=1e6)
    fired: list[str] = []
    request = make_request(job, on_complete=lambda r: fired.append("done"))
    scheduler.submit(request)
    scheduler.cancel_job(job)
    engine.run()
    assert fired == []


def test_scheduler_requires_positive_mtbf(engine, io):
    with pytest.raises(SchedulingError):
        OrderedScheduler(engine, io, node_mtbf_s=0.0)

"""Contract linter: checker semantics on fixture trees, and repo cleanliness.

Every checker is exercised both ways — a known-bad fixture tree must
produce its finding, a known-good one must not — plus the machinery
around them: pragma suppression (reason mandatory, unused pragmas are
errors), the shrink-only baseline, and the digest-drift manifest.
"""

from __future__ import annotations

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis.base import Project
from repro.analysis.checkers import make_checkers
from repro.analysis.checkers.digest_drift import (
    DigestDriftChecker,
    extract_digest_schema,
    write_manifest,
)
from repro.analysis.engine import run_lint

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write a fixture source tree and return its root."""
    root = tmp_path / "src"
    for relpath, text in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(text), encoding="utf-8")
    return root


def lint(root: Path, tmp_path: Path, *, rules: list[str] | None = None):
    """run_lint with an isolated (absent → empty) baseline."""
    return run_lint(root, rules=rules, baseline_path=tmp_path / "isolated-baseline.json")


def rules_of(report) -> list[str]:
    return [finding.rule for finding in report.findings]


# --------------------------------------------------------------- determinism
class TestDeterminismChecker:
    def test_wall_clock_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/sim/bad.py": """\
                import time

                def stamp():
                    return time.time()
                """
            },
        )
        report = lint(root, tmp_path, rules=["determinism"])
        assert rules_of(report) == ["determinism"]
        assert "time.time" in report.findings[0].message

    def test_global_rng_and_numpy_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/sim/bad.py": """\
                import random
                import numpy as np

                def draw():
                    return random.random() + np.random.rand()
                """
            },
        )
        report = lint(root, tmp_path, rules=["determinism"])
        assert len(report.findings) == 2
        assert {"random.random" in f.message or "np.random" in f.message
                for f in report.findings} == {True}

    def test_set_iteration_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/sim/bad.py": """\
                def order(items):
                    pool = set(items)
                    return [x for x in pool] + [y for y in {1, 2, 3}]
                """
            },
        )
        report = lint(root, tmp_path, rules=["determinism"])
        assert len(report.findings) == 2
        assert all("iterates" in f.message for f in report.findings)

    def test_seeded_instances_and_sorted_sets_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/sim/good.py": """\
                import random
                import numpy as np

                def draw(seed):
                    rng = random.Random(seed)
                    gen = np.random.default_rng(seed)
                    pool = {1, 2, 3}
                    return rng.random() + gen.random() + sum(sorted(pool))
                """
            },
        )
        report = lint(root, tmp_path, rules=["determinism"])
        assert report.findings == []

    def test_outside_targets_not_scanned(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/service/clock.py": """\
                import time

                def stamp():
                    return time.time()
                """
            },
        )
        report = lint(root, tmp_path, rules=["determinism"])
        assert report.findings == []


# --------------------------------------------------------------------- fsops
class TestFsopsChecker:
    def test_raw_mutations_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/distributed/bad.py": """\
                import os
                from pathlib import Path

                def mutate(a, b):
                    os.rename(a, b)
                    Path(b).write_text("x")
                    with open(b, "w") as handle:
                        handle.write("y")
                """
            },
        )
        report = lint(root, tmp_path, rules=["fsops"])
        assert rules_of(report) == ["fsops", "fsops", "fsops"]

    def test_chokepoint_calls_and_reads_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/distributed/good.py": """\
                from repro.distributed import fsops

                def move(a, b):
                    fsops.rename(a, b)
                    fsops.write_text(b, "payload")
                    with open(a) as handle:
                        return handle.read()
                """
            },
        )
        report = lint(root, tmp_path, rules=["fsops"])
        assert report.findings == []

    def test_dynamic_open_mode_is_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/distributed/bad.py": """\
                def touch(path, mode):
                    return open(path, mode)
                """
            },
        )
        report = lint(root, tmp_path, rules=["fsops"])
        assert rules_of(report) == ["fsops"]
        assert "dynamic mode" in report.findings[0].message


# --------------------------------------------------------------------- locks
class TestLockDisciplineChecker:
    def test_unguarded_write_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/service/bad.py": """\
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.total = 0

                    def add(self, n):
                        with self._lock:
                            self.total += n

                    def reset(self):
                        self.total = 0
                """
            },
        )
        report = lint(root, tmp_path, rules=["locks"])
        assert rules_of(report) == ["locks"]
        finding = report.findings[0]
        assert "Counter.reset" in finding.message and "self.total" in finding.message

    def test_constructor_and_guarded_writes_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/service/good.py": """\
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.total = 0

                    def add(self, n):
                        with self._lock:
                            self.total += n

                    def reset(self):
                        with self._lock:
                            self.total = 0
                """
            },
        )
        report = lint(root, tmp_path, rules=["locks"])
        assert report.findings == []

    def test_nested_function_has_its_own_self(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/service/nested.py": """\
                import threading

                class Outer:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def bump(self):
                        with self._lock:
                            self.count += 1

                    def helper_factory(self):
                        class Helper:
                            def set(self, n):
                                self.count = n  # Helper.count, not Outer.count
                        return Helper
                """
            },
        )
        report = lint(root, tmp_path, rules=["locks"])
        assert report.findings == []


# ------------------------------------------------------------------ registry
_INTERFACE = """\
class ExecutionBackend:
    persists_results = False

    def run(self, tasks, *, label=""):
        raise NotImplementedError

    def close(self):
        return None
"""


class TestRegistryChecker:
    def test_missing_method_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/exec/runner.py": _INTERFACE
                + """\

class HollowBackend(ExecutionBackend):
    pass
"""
            },
        )
        report = lint(root, tmp_path, rules=["registry"])
        assert rules_of(report) == ["registry"]
        assert "does not implement run()" in report.findings[0].message

    def test_incompatible_signature_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/exec/runner.py": _INTERFACE
                + """\

class RenamedBackend(ExecutionBackend):
    def run(self, jobs, *, label=""):
        return []
"""
            },
        )
        report = lint(root, tmp_path, rules=["registry"])
        assert rules_of(report) == ["registry"]
        assert "positional parameter 1" in report.findings[0].message

    def test_compatible_subclass_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/exec/runner.py": _INTERFACE
                + """\

class FineBackend(ExecutionBackend):
    def run(self, tasks, *, label="", retries=3):
        return []
"""
            },
        )
        report = lint(root, tmp_path, rules=["registry"])
        assert report.findings == []

    def test_registering_a_non_subclass_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/exec/runner.py": _INTERFACE
                + """\

def register_backend(name, factory):
    return None
""",
                "repro/exec/plugin.py": """\
                from repro.exec.runner import register_backend

                class Freeloader:
                    def run(self, tasks, *, label=""):
                        return []

                register_backend("free", Freeloader)
                """,
            },
        )
        report = lint(root, tmp_path, rules=["registry"])
        assert rules_of(report) == ["registry"]
        assert "does not subclass" in report.findings[0].message

    def test_strategy_factory_signature(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/iosched/custom.py": """\
                from repro.iosched.spec import register_strategy

                register_strategy("bad", lambda spec: spec)
                register_strategy(
                    "good", lambda spec, *, fixed_period_s=3600.0: spec
                )
                """
            },
        )
        report = lint(root, tmp_path, rules=["registry"])
        assert rules_of(report) == ["registry"]
        assert "fixed_period_s" in report.findings[0].message


# -------------------------------------------------------------- digest drift
_CONFIG = """\
from dataclasses import dataclass

@dataclass(frozen=True)
class SimulationConfig:
    platform: object
    horizon_s: float
    seed: int
"""

_DIGEST = """\
DIGEST_VERSION = "2"
_EXCLUDED_FIELDS = frozenset({"seed"})
"""


class TestDigestDrift:
    def _project(self, tmp_path, config=_CONFIG, digest=_DIGEST) -> Project:
        root = make_tree(
            tmp_path,
            {
                "repro/simulation/config.py": config,
                "repro/exec/digest.py": digest,
            },
        )
        return Project.load(root)

    def _checker(self, tmp_path) -> DigestDriftChecker:
        return DigestDriftChecker(manifest_path=tmp_path / "manifest.json")

    def test_matching_manifest_is_clean(self, tmp_path):
        project = self._project(tmp_path)
        checker = self._checker(tmp_path)
        schema, problems = extract_digest_schema(project)
        assert problems == [] and schema is not None
        assert schema.fields == ("horizon_s", "platform")
        write_manifest(schema, checker.manifest_path)
        assert list(checker.check(project)) == []

    def test_field_drift_without_version_bump_fires(self, tmp_path):
        checker = self._checker(tmp_path)
        schema, _ = extract_digest_schema(self._project(tmp_path))
        write_manifest(schema, checker.manifest_path)
        drifted = self._project(
            tmp_path, config=_CONFIG + "    warmup_s: float = 0.0\n"
        )
        findings = list(checker.check(drifted))
        assert len(findings) == 1
        assert "without a DIGEST_VERSION bump" in findings[0].message
        assert "warmup_s" in findings[0].message

    def test_version_bump_with_stale_manifest_fires(self, tmp_path):
        checker = self._checker(tmp_path)
        schema, _ = extract_digest_schema(self._project(tmp_path))
        write_manifest(schema, checker.manifest_path)
        bumped = self._project(
            tmp_path,
            config=_CONFIG + "    warmup_s: float = 0.0\n",
            digest=_DIGEST.replace('"2"', '"3"'),
        )
        findings = list(checker.check(bumped))
        assert len(findings) == 1
        assert "stale" in findings[0].message

    def test_missing_manifest_fires(self, tmp_path):
        checker = self._checker(tmp_path)
        findings = list(checker.check(self._project(tmp_path)))
        assert len(findings) == 1
        assert "missing" in findings[0].message

    def test_ghost_exclusion_fires(self, tmp_path):
        project = self._project(
            tmp_path, digest=_DIGEST.replace('{"seed"}', '{"seed", "gone"}')
        )
        schema, problems = extract_digest_schema(project)
        assert schema is None
        assert any("gone" in finding.message for finding in problems)


# ------------------------------------------------------------------- pragmas
class TestPragmas:
    def test_pragma_suppresses_with_reason(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/sim/clocky.py": """\
                import time

                def stamp():
                    return time.time()  # repro: allow[determinism] display-only timestamp
                """
            },
        )
        report = lint(root, tmp_path, rules=["determinism"])
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].via == "pragma"
        assert report.suppressed[0].reason == "display-only timestamp"

    def test_pragma_on_previous_line_suppresses(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/sim/clocky.py": """\
                import time

                def stamp():
                    # repro: allow[determinism] display-only timestamp
                    return time.time()
                """
            },
        )
        report = lint(root, tmp_path, rules=["determinism"])
        assert report.findings == []

    def test_pragma_without_reason_is_a_finding(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/sim/clocky.py": """\
                import time

                def stamp():
                    return time.time()  # repro: allow[determinism]
                """
            },
        )
        report = lint(root, tmp_path, rules=["determinism"])
        rules = sorted(rules_of(report))
        # The violation survives (the pragma is invalid) and the pragma
        # itself is reported.
        assert rules == ["determinism", "pragma"]

    def test_unused_pragma_is_a_finding(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/sim/clean.py": """\
                # repro: allow[determinism] nothing here needs this
                def pure(x):
                    return x + 1
                """
            },
        )
        report = lint(root, tmp_path, rules=["determinism"])
        assert rules_of(report) == ["pragma"]
        assert "unused pragma" in report.findings[0].message

    def test_docstring_mention_is_not_a_pragma(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/sim/doc.py": '''\
                """Example: x = time.time()  # repro: allow[determinism] why"""

                def pure(x):
                    return x
                ''',
            },
        )
        report = lint(root, tmp_path, rules=["determinism"])
        assert report.findings == []


# ------------------------------------------------------------------ baseline
class TestBaseline:
    def test_baselined_finding_is_suppressed(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/sim/bad.py": """\
                import time

                def stamp():
                    return time.time()
                """
            },
        )
        first = run_lint(root, rules=["determinism"], baseline_path=tmp_path / "b.json")
        assert len(first.findings) == 1
        baseline = tmp_path / "b.json"
        baseline.write_text(
            json.dumps({"findings": [first.findings[0].key]}), encoding="utf-8"
        )
        second = run_lint(root, rules=["determinism"], baseline_path=baseline)
        assert second.findings == []
        assert [s.via for s in second.suppressed] == ["baseline"]

    def test_stale_baseline_entry_is_a_finding(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/sim/clean.py": """\
                def pure(x):
                    return x
                """
            },
        )
        baseline = tmp_path / "b.json"
        baseline.write_text(
            json.dumps({"findings": ["determinism::repro/sim/clean.py::gone"]}),
            encoding="utf-8",
        )
        report = run_lint(root, rules=["determinism"], baseline_path=baseline)
        assert rules_of(report) == ["baseline"]
        assert "stale baseline entry" in report.findings[0].message


# ------------------------------------------------------------ the repo itself
class TestRepoIsClean:
    def test_full_lint_of_the_repo_has_no_findings(self):
        report = run_lint(REPO_SRC)
        assert [f.render() for f in report.findings] == []

    def test_committed_baseline_is_empty(self):
        from repro.analysis.engine import BASELINE_PATH, load_baseline

        assert BASELINE_PATH.is_file()
        assert load_baseline() == set()

    def test_committed_manifest_matches_the_code(self):
        schema, problems = extract_digest_schema(Project.load(REPO_SRC))
        assert problems == [] and schema is not None
        from repro.analysis.checkers.digest_drift import MANIFEST_PATH

        recorded = json.loads(MANIFEST_PATH.read_text(encoding="utf-8"))
        assert recorded["digest_version"] == schema.version == "2"
        assert tuple(recorded["fields"]) == schema.fields
        assert tuple(recorded["excluded"]) == schema.excluded

    def test_every_rule_has_a_description(self):
        for checker in make_checkers():
            assert checker.rule and checker.description


# ----------------------------------------------------------------------- CLI
class TestLintCli:
    def test_coopckpt_lint_clean_repo_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_module_entry_point_json(self, capsys):
        from repro.analysis.cli import main

        assert main(["--json", "--rule", "determinism"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["rules"] == ["determinism"]

    def test_findings_exit_one(self, tmp_path, capsys):
        from repro.cli import main

        root = make_tree(
            tmp_path,
            {
                "repro/sim/bad.py": "import time\n\ndef f():\n    return time.time()\n"
            },
        )
        code = main(
            [
                "lint",
                "--root", str(root),
                "--baseline", str(tmp_path / "none.json"),
            ]
        )
        assert code == 1
        assert "[determinism]" in capsys.readouterr().out

    def test_bad_root_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["lint", "--root", str(tmp_path / "missing")]) == 2

    def test_list_rules(self, capsys):
        from repro.analysis.cli import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("determinism", "fsops", "digest-drift", "locks", "registry"):
            assert rule in out

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        root = make_tree(
            tmp_path,
            {
                "repro/sim/bad.py": "import time\n\ndef f():\n    return time.time()\n"
            },
        )
        baseline = tmp_path / "b.json"
        assert main(
            ["lint", "--root", str(root), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        capsys.readouterr()
        assert main(["lint", "--root", str(root), "--baseline", str(baseline)]) == 0
        # The wall-clock finding plus the fixture tree's missing digest
        # schema are both grandfathered by the written baseline.
        assert "0 findings (2 suppressed)" in capsys.readouterr().out

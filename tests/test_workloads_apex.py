"""APEX workload definitions (repro.workloads.apex) and platforms."""

from __future__ import annotations

import pytest

from repro.units import GB, HOUR, TB, YEAR
from repro.workloads.apex import APEX_CLASSES, APEX_TABLE, apex_workload
from repro.workloads.cielo import CIELO, cielo_platform
from repro.workloads.prospective import PROSPECTIVE, prospective_platform, prospective_workload


def test_table_matches_paper_values():
    table = {spec.name: spec for spec in APEX_TABLE}
    assert APEX_CLASSES == ("EAP", "LAP", "Silverton", "VPIC")
    assert table["EAP"].workload_percent == 66.0
    assert table["EAP"].work_time_hours == 262.4
    assert table["EAP"].cores == 16384
    assert table["LAP"].output_percent_of_memory == 220.0
    assert table["Silverton"].checkpoint_percent_of_memory == 350.0
    assert table["Silverton"].input_percent_of_memory == 70.0
    assert table["VPIC"].cores == 30000
    assert sum(s.workload_percent for s in APEX_TABLE) == pytest.approx(100.0)


def test_apex_workload_on_cielo_has_expected_geometry():
    classes = {app.name: app for app in apex_workload(CIELO)}
    # 16384 cores on 16-core nodes -> 1024 nodes; checkpoint = 160% of 32 GB/node.
    eap = classes["EAP"]
    assert eap.nodes == 1024
    assert eap.checkpoint_bytes == pytest.approx(1.6 * 1024 * 32 * GB)
    assert eap.work_s == pytest.approx(262.4 * HOUR)
    assert eap.workload_share == pytest.approx(0.66)
    # VPIC: 30000 cores -> ceil(30000/16) = 1875 nodes.
    assert classes["VPIC"].nodes == 1875
    # Silverton has the largest checkpoint (350% of a 2048-node footprint).
    assert classes["Silverton"].checkpoint_bytes > eap.checkpoint_bytes


def test_apex_workload_routine_io_fraction():
    classes = apex_workload(CIELO, routine_io_fraction=0.1)
    for app in classes:
        assert app.routine_io_bytes == pytest.approx(0.1 * app.nodes * CIELO.memory_per_node_bytes)


def test_cielo_platform_parameters():
    assert CIELO.num_nodes == 8944
    assert CIELO.total_cores == 143_104
    assert CIELO.total_memory_bytes == pytest.approx(286.0 * TB, rel=0.01)
    assert CIELO.io_bandwidth_bytes_per_s == pytest.approx(160.0 * GB)
    custom = cielo_platform(bandwidth_gbs=40.0, node_mtbf_years=10.0)
    assert custom.io_bandwidth_bytes_per_s == pytest.approx(40.0 * GB)
    assert custom.node_mtbf_s == pytest.approx(10.0 * YEAR)
    assert custom.num_nodes == CIELO.num_nodes


def test_prospective_platform_parameters():
    assert PROSPECTIVE.num_nodes == 50_000
    assert PROSPECTIVE.total_memory_bytes == pytest.approx(7e15)
    custom = prospective_platform(bandwidth_tbs=5.0, node_mtbf_years=20.0)
    assert custom.io_bandwidth_bytes_per_s == pytest.approx(5.0 * TB)
    assert custom.node_mtbf_s == pytest.approx(20.0 * YEAR)


def test_prospective_workload_scales_volumes_with_memory():
    cielo_classes = {app.name: app for app in apex_workload(CIELO)}
    future_classes = {app.name: app for app in prospective_workload(PROSPECTIVE)}
    memory_ratio = PROSPECTIVE.total_memory_bytes / CIELO.total_memory_bytes
    for name in APEX_CLASSES:
        before = cielo_classes[name]
        after = future_classes[name]
        # Node share of the machine is preserved (within rounding).
        assert after.nodes / PROSPECTIVE.num_nodes == pytest.approx(
            before.nodes / CIELO.num_nodes, rel=0.05
        )
        # Checkpoint volume grows roughly with the machine memory.
        assert after.checkpoint_bytes / before.checkpoint_bytes == pytest.approx(
            memory_ratio, rel=0.1
        )
        # Work time and share are unchanged.
        assert after.work_s == before.work_s
        assert after.workload_share == before.workload_share

"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.daly import job_mtbf, young_period
from repro.core.least_waste import CkptCandidate, IOCandidate, expected_waste, select_candidate
from repro.core.lower_bound import (
    SteadyStateClass,
    constrained_periods,
    io_pressure,
    optimal_periods,
    platform_lower_bound,
)
from repro.core.waste import job_waste
from repro.platform.io_subsystem import IOSubsystem
from repro.platform.nodes import NodePool
from repro.sim.engine import SimulationEngine
from repro.simulation.accounting import Accounting, Category
from repro.stats.summary import summarize

# Bounded positive floats that keep the analytics numerically sane.
positive = st.floats(min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False)
small_positive = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False)


# ----------------------------------------------------------------- Young/Daly
@given(checkpoint=small_positive, mtbf=positive)
def test_young_period_is_positive_and_monotone(checkpoint, mtbf):
    period = young_period(checkpoint, mtbf)
    assert period > 0.0
    assert young_period(checkpoint * 4.0, mtbf) == pytest.approx(2.0 * period, rel=1e-9)


@given(
    checkpoint=st.floats(min_value=1.0, max_value=1e4),
    q=st.integers(min_value=1, max_value=100_000),
    mu_ind=st.floats(min_value=1e6, max_value=1e10),
)
def test_daly_period_minimizes_first_order_waste(checkpoint, q, mu_ind):
    """The analytic optimum of Eq. (3) beats nearby periods."""
    p_opt = young_period(checkpoint, job_mtbf(mu_ind, q))
    w_opt = job_waste(p_opt, checkpoint, checkpoint, q, mu_ind)
    for factor in (0.5, 0.9, 1.1, 2.0):
        assert job_waste(p_opt * factor, checkpoint, checkpoint, q, mu_ind) >= w_opt - 1e-9


# ---------------------------------------------------------------- lower bound
@st.composite
def steady_state_workloads(draw):
    n_classes = draw(st.integers(min_value=1, max_value=5))
    classes = []
    for index in range(n_classes):
        classes.append(
            SteadyStateClass(
                name=f"c{index}",
                count=draw(st.floats(min_value=0.1, max_value=50.0)),
                nodes=draw(st.floats(min_value=1.0, max_value=5000.0)),
                checkpoint_time=draw(st.floats(min_value=1.0, max_value=5000.0)),
            )
        )
    total_nodes = sum(c.count * c.nodes for c in classes) * draw(
        st.floats(min_value=1.0, max_value=2.0)
    )
    mu_ind = draw(st.floats(min_value=1e5, max_value=1e10))
    return classes, total_nodes, mu_ind


@settings(max_examples=60, deadline=None)
@given(workload=steady_state_workloads())
def test_lower_bound_invariants(workload):
    classes, total_nodes, mu_ind = workload
    result = platform_lower_bound(classes, total_nodes, mu_ind)
    # The I/O constraint holds at the optimum.
    assert result.io_pressure <= 1.0 + 1e-6
    # lambda >= 0, and the constrained optimum never beats the unconstrained one.
    assert result.lam >= 0.0
    assert result.waste >= result.unconstrained_waste - 1e-9
    # Constrained periods never undercut Daly periods.
    for period, daly in zip(result.periods, result.daly_periods):
        assert period >= daly - 1e-6
    # Efficiency and waste_fraction are consistent.
    assert 0.0 < result.efficiency <= 1.0
    assert result.waste_fraction == pytest.approx(1.0 - result.efficiency, rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(workload=steady_state_workloads(), lam=st.floats(min_value=0.0, max_value=10.0))
def test_io_pressure_decreases_with_lambda(workload, lam):
    classes, total_nodes, mu_ind = workload
    base = io_pressure(constrained_periods(0.0, classes, total_nodes, mu_ind), classes)
    stretched = io_pressure(constrained_periods(lam, classes, total_nodes, mu_ind), classes)
    assert stretched <= base + 1e-9


@settings(max_examples=40, deadline=None)
@given(workload=steady_state_workloads())
def test_optimal_periods_saturate_constraint_only_when_needed(workload):
    classes, total_nodes, mu_ind = workload
    periods, lam = optimal_periods(classes, total_nodes, mu_ind)
    pressure = io_pressure(periods, classes)
    if lam > 0.0:
        assert pressure == pytest.approx(1.0, rel=1e-5)
    else:
        assert pressure <= 1.0 + 1e-9


# ----------------------------------------------------------------- least waste
@st.composite
def candidate_pools(draw):
    pool = []
    for index in range(draw(st.integers(min_value=1, max_value=6))):
        if draw(st.booleans()):
            pool.append(
                IOCandidate(
                    key=index,
                    duration=draw(st.floats(min_value=0.1, max_value=1e4)),
                    nodes=draw(st.floats(min_value=1.0, max_value=1e4)),
                    waited=draw(st.floats(min_value=0.0, max_value=1e5)),
                )
            )
        else:
            pool.append(
                CkptCandidate(
                    key=index,
                    duration=draw(st.floats(min_value=0.1, max_value=1e4)),
                    nodes=draw(st.floats(min_value=1.0, max_value=1e4)),
                    since_last_checkpoint=draw(st.floats(min_value=0.0, max_value=1e5)),
                    recovery_time=draw(st.floats(min_value=0.0, max_value=1e4)),
                )
            )
    return pool


@settings(max_examples=80, deadline=None)
@given(pool=candidate_pools(), mu_ind=st.floats(min_value=1e3, max_value=1e10))
def test_select_candidate_returns_pool_minimum(pool, mu_ind):
    best, best_waste = select_candidate(pool, mu_ind)
    assert best in pool
    assert best_waste >= 0.0
    for candidate in pool:
        assert best_waste <= expected_waste(candidate, pool, mu_ind) + 1e-9


# --------------------------------------------------------------------- engine
@settings(max_examples=40, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_engine_fires_events_in_nondecreasing_time_order(delays):
    engine = SimulationEngine()
    fired: list[float] = []
    for delay in delays:
        engine.schedule(delay, lambda: fired.append(engine.now))
    engine.run()
    assert len(fired) == len(delays)
    assert fired == sorted(fired)
    assert engine.now == max(delays)


# --------------------------------------------------------------- IO subsystem
@settings(max_examples=30, deadline=None)
@given(
    volumes=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=10),
    weights=st.lists(st.floats(min_value=0.5, max_value=64.0), min_size=10, max_size=10),
    bandwidth=st.floats(min_value=1.0, max_value=1e6),
)
def test_io_subsystem_conserves_aggregate_throughput(volumes, weights, bandwidth):
    """All concurrent transfers finish no earlier than total_volume/bandwidth,
    and the last one finishes exactly then (work conservation)."""
    engine = SimulationEngine()
    io = IOSubsystem(engine, bandwidth_bytes_per_s=bandwidth)
    finish_times: list[float] = []
    for volume, weight in zip(volumes, weights):
        io.start(volume, weight=weight, on_complete=lambda t: finish_times.append(engine.now))
    engine.run()
    assert len(finish_times) == len(volumes)
    makespan = sum(volumes) / bandwidth
    assert max(finish_times) == pytest.approx(makespan, rel=1e-6)
    assert all(t <= makespan * (1 + 1e-9) for t in finish_times)
    assert io.bytes_completed == pytest.approx(sum(volumes), rel=1e-9)


# ------------------------------------------------------------------ node pool
@settings(max_examples=50, deadline=None)
@given(
    num_nodes=st.integers(min_value=1, max_value=256),
    requests=st.lists(st.integers(min_value=1, max_value=64), max_size=20),
)
def test_node_pool_conservation(num_nodes, requests):
    pool = NodePool(num_nodes)
    owners = []
    for index, count in enumerate(requests):
        if pool.can_allocate(count):
            owner = f"job{index}"
            nodes = pool.allocate(count, owner)
            assert len(nodes) == count
            owners.append((owner, nodes))
        assert pool.num_free + pool.num_allocated == num_nodes
    for owner, nodes in owners:
        released = pool.release_owner(owner)
        assert sorted(released) == sorted(nodes)
    assert pool.num_free == num_nodes


# ----------------------------------------------------------------- accounting
@settings(max_examples=50, deadline=None)
@given(
    window=st.tuples(
        st.floats(min_value=0.0, max_value=1e4), st.floats(min_value=0.0, max_value=1e4)
    ).map(sorted),
    intervals=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2e4),
            st.floats(min_value=0.0, max_value=2e4),
            st.floats(min_value=0.0, max_value=64.0),
        ),
        max_size=20,
    ),
)
def test_accounting_never_exceeds_window_capacity_per_stream(window, intervals):
    start, end = window
    accounting = Accounting(start, end)
    total_nodes = 0.0
    for a, b, nodes in intervals:
        lo, hi = min(a, b), max(a, b)
        accounting.record_interval(Category.COMPUTE, nodes, lo, hi)
        total_nodes += nodes
    # Each stream can contribute at most the window length.
    assert accounting.total(Category.COMPUTE) <= total_nodes * (end - start) + 1e-6
    assert accounting.total(Category.COMPUTE) >= 0.0


# -------------------------------------------------------------------- summary
@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
    )
)
def test_summary_statistics_are_ordered_and_bounded(values):
    summary = summarize(values)
    assert summary.minimum <= summary.decile1 <= summary.quartile1 <= summary.median
    assert summary.median <= summary.quartile3 <= summary.decile9 <= summary.maximum
    assert summary.minimum <= summary.mean <= summary.maximum
    assert summary.n == len(values)
    assert summary.std >= 0.0
    assert np.isfinite(summary.mean)

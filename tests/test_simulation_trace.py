"""Per-job execution traces (repro.simulation.trace)."""

from __future__ import annotations

import pytest

from repro.apps.job import Job
from repro.platform.failures import FailureEvent, FailureTrace
from repro.simulation.simulator import Simulation
from repro.simulation.trace import TraceEventType, TraceRecorder
from repro.units import DAY, HOUR


def test_recorder_basic_bookkeeping(tiny_classes):
    recorder = TraceRecorder()
    job = Job(app_class=tiny_classes[0], total_work_s=HOUR)
    recorder.record(0.0, job, TraceEventType.JOB_START, nodes=4)
    recorder.record(5.0, job, TraceEventType.INPUT_DONE)
    assert len(recorder) == 2
    assert recorder.job_ids() == [job.job_id]
    assert [e.kind for e in recorder.for_job(job.job_id)] == [
        TraceEventType.JOB_START,
        TraceEventType.INPUT_DONE,
    ]
    assert recorder.of_kind(TraceEventType.INPUT_DONE)[0].time == 5.0
    rows = recorder.to_rows()
    assert rows[0]["event"] == "job-start"
    assert rows[0]["nodes"] == 4


def test_checkpoint_intervals_from_recorded_events(tiny_classes):
    recorder = TraceRecorder()
    job = Job(app_class=tiny_classes[0], total_work_s=10 * HOUR)
    recorder.record(0.0, job, TraceEventType.JOB_START)
    recorder.record(10.0, job, TraceEventType.INPUT_DONE)
    recorder.record(3610.0, job, TraceEventType.CHECKPOINT_DONE)
    recorder.record(7210.0, job, TraceEventType.CHECKPOINT_DONE)
    intervals = recorder.checkpoint_intervals(job.job_id)
    assert intervals == pytest.approx([3600.0, 3600.0])
    assert recorder.achieved_checkpoint_intervals() == {job.job_id: pytest.approx([3600.0, 3600.0])}
    # A job with no checkpoints contributes nothing.
    other = Job(app_class=tiny_classes[1], total_work_s=HOUR)
    assert recorder.checkpoint_intervals(other.job_id) == []


def test_simulation_collects_trace_when_requested(tiny_config, tiny_classes):
    config = tiny_config("ordered-fixed", horizon_s=1 * DAY, warmup_s=0.0, cooldown_s=0.0, collect_trace=True)
    jobs = [Job(app_class=tiny_classes[0], total_work_s=3 * HOUR, priority=0.0)]
    trace = FailureTrace([FailureEvent(1.5 * HOUR, 0)], horizon=config.horizon_s)
    sim = Simulation(config, jobs=jobs, failure_trace=trace)
    result = sim.run()

    assert sim.trace is not None
    kinds = {event.kind for event in sim.trace}
    assert TraceEventType.JOB_START in kinds
    assert TraceEventType.INPUT_DONE in kinds
    assert TraceEventType.CHECKPOINT_DONE in kinds
    assert TraceEventType.JOB_FAILED in kinds
    assert TraceEventType.RESTART_SUBMITTED in kinds
    assert TraceEventType.JOB_COMPLETE in kinds
    # The restart appears as a separate job id in the trace.
    assert len(sim.trace.job_ids()) >= 2
    # Achieved checkpoint intervals are close to (and not shorter than) the
    # requested fixed period minus the commit time.
    intervals = sim.trace.achieved_checkpoint_intervals()
    assert intervals
    for values in intervals.values():
        for interval in values:
            assert interval >= 0.9 * config.fixed_period_s
    assert result.checkpoints_completed == len(sim.trace.of_kind(TraceEventType.CHECKPOINT_DONE))


def test_simulation_trace_disabled_by_default(tiny_config):
    sim = Simulation(tiny_config())
    assert sim.trace is None
    sim.run()
    assert sim.trace is None


def test_io_completion_events_carry_wait_and_duration_details(tiny_config, tiny_classes):
    """Completion events record queue wait, transfer duration and volume —
    the structured inputs of the waste drill-down."""
    config = tiny_config(
        "ordered-fixed", horizon_s=1 * DAY, warmup_s=0.0, cooldown_s=0.0, collect_trace=True
    )
    jobs = [
        Job(app_class=tiny_classes[0], total_work_s=2 * HOUR, priority=0.0),
        Job(app_class=tiny_classes[1], total_work_s=1 * HOUR, priority=1.0),
    ]
    sim = Simulation(config, jobs=jobs, failure_trace=FailureTrace([], horizon=config.horizon_s))
    sim.run()
    assert sim.trace is not None

    completions = (
        TraceEventType.INPUT_DONE,
        TraceEventType.REGULAR_IO_DONE,
        TraceEventType.OUTPUT_DONE,
    )
    seen_kinds = set()
    for kind in completions:
        for event in sim.trace.of_kind(kind):
            assert event.detail["waited"] >= 0.0
            assert event.detail["duration"] > 0.0
            assert event.detail["volume"] > 0.0
            seen_kinds.add(kind)
    # The toy classes perform no routine I/O; input and output must appear.
    assert {TraceEventType.INPUT_DONE, TraceEventType.OUTPUT_DONE} <= seen_kinds
    for event in sim.trace.of_kind(TraceEventType.CHECKPOINT_DONE):
        assert event.detail["waited"] >= 0.0
        assert event.detail["commit_time"] > 0.0


def test_io_wait_by_job_counts_each_wait_once(tiny_classes):
    recorder = TraceRecorder()
    job = Job(app_class=tiny_classes[0], total_work_s=HOUR)
    recorder.record(0.0, job, TraceEventType.JOB_START)
    recorder.record(10.0, job, TraceEventType.INPUT_DONE, waited=4.0, duration=6.0)
    # CHECKPOINT_START and CHECKPOINT_DONE carry the *same* wait: only the
    # completion may be counted.
    recorder.record(20.0, job, TraceEventType.CHECKPOINT_START, waited=3.0)
    recorder.record(25.0, job, TraceEventType.CHECKPOINT_DONE, waited=3.0, commit_time=5.0)
    recorder.record(30.0, job, TraceEventType.OUTPUT_DONE, waited=1.5, duration=2.0)
    assert recorder.io_wait_by_job() == {job.job_id: pytest.approx(8.5)}

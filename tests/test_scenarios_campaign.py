"""Campaign matrix expansion (repro.scenarios.campaign) and presets."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.platform.failures import FailureModel
from repro.scenarios.campaign import Axis, AxisPoint, Campaign
from repro.scenarios.presets import (
    CAMPAIGNS,
    campaign_names,
    make_campaign,
    mini_apex_workload,
    mini_cielo_platform,
)
from repro.scenarios.spec import Scenario
from repro.units import GB


@pytest.fixture
def base(tiny_platform, tiny_classes) -> Scenario:
    return Scenario(
        name="base",
        platform=tiny_platform,
        workload=tiny_classes,
        strategies=("least-waste",),
        num_runs=1,
        horizon_days=0.5,
    )


# ------------------------------------------------------------------- axes
def test_axis_from_values_builds_labelled_points():
    axis = Axis.from_values("io", "bandwidth_gbs", [40.0, 160.0])
    assert axis.name == "io"
    assert [p.label for p in axis.points] == ["40", "160"]
    assert axis.points[0].overrides == {"bandwidth_gbs": 40.0}


def test_axis_validation():
    with pytest.raises(ConfigurationError):
        Axis(name="", points=(AxisPoint("a", {}),))
    with pytest.raises(ConfigurationError):
        Axis(name="x", points=())
    with pytest.raises(ConfigurationError):
        Axis(name="x", points=(AxisPoint("a", {}), AxisPoint("a", {})))
    with pytest.raises(ConfigurationError):
        AxisPoint("", {})
    with pytest.raises(ConfigurationError):
        Axis.from_values("x", "num_runs", [1, 2], labels=["only-one"])


# -------------------------------------------------------------- expansion
def test_campaign_without_axes_is_the_base_scenario(base):
    campaign = Campaign(name="single", base=base)
    assert campaign.size() == 1
    assert campaign.scenarios() == [base]


def test_campaign_expands_row_major_with_composed_names(base):
    campaign = Campaign(
        name="matrix",
        base=base,
        axes=(
            Axis.from_values("io", "bandwidth_gbs", [1.0, 4.0]),
            Axis.from_values("runs", "num_runs", [1, 2]),
        ),
    )
    scenarios = campaign.scenarios()
    assert campaign.size() == 4 and campaign.shape == (2, 2)
    assert [s.name for s in scenarios] == [
        "io=1,runs=1",
        "io=1,runs=2",
        "io=4,runs=1",
        "io=4,runs=2",
    ]
    assert scenarios[0].platform.io_bandwidth_bytes_per_s == 1.0 * GB
    assert scenarios[3].platform.io_bandwidth_bytes_per_s == 4.0 * GB
    assert scenarios[3].num_runs == 2
    # Expansion is deterministic: a second call produces equal scenarios.
    assert campaign.scenarios() == scenarios


def test_campaign_merged_overrides_feed_workload_factories(base):
    """A workload factory sees the platform with every platform override of
    the combination applied, whatever the axis order."""
    seen: list[float] = []

    def rebuild(platform):
        seen.append(platform.io_bandwidth_bytes_per_s)
        return base.workload

    campaign = Campaign(
        name="ordering",
        base=base,
        axes=(
            Axis(name="wl", points=(AxisPoint("mix", {"workload": rebuild}),)),
            Axis.from_values("io", "bandwidth_gbs", [1.0, 4.0]),
        ),
    )
    campaign.scenarios()
    assert seen == [1.0 * GB, 4.0 * GB]


def test_axis_point_name_override_renames_the_cell(base):
    campaign = Campaign(
        name="renamed",
        base=base,
        axes=(
            Axis(
                name="io",
                points=(
                    AxisPoint("slow", {"bandwidth_gbs": 1.0, "name": "weak-io"}),
                    AxisPoint("fast", {"bandwidth_gbs": 4.0}),
                ),
            ),
        ),
    )
    assert [s.name for s in campaign.scenarios()] == ["weak-io", "io=fast"]


def test_campaign_validation(base):
    with pytest.raises(ConfigurationError):
        Campaign(name="", base=base)
    axis = Axis.from_values("io", "bandwidth_gbs", [1.0])
    with pytest.raises(ConfigurationError):
        Campaign(name="dup", base=base, axes=(axis, axis))


def test_campaign_describe_lists_axes(base):
    campaign = Campaign(
        name="matrix",
        base=base,
        axes=(Axis.from_values("io", "bandwidth_gbs", [1.0, 4.0]),),
    )
    text = campaign.describe()
    assert "matrix" in text and "axis io" in text and "2 scenario(s)" in text


# ---------------------------------------------------------------- presets
def test_preset_registry_is_consistent():
    assert set(campaign_names()) == set(CAMPAIGNS)
    for name in campaign_names():
        campaign = make_campaign(name)
        assert campaign.name == name
        assert campaign.size() >= 1
        assert campaign.scenarios()  # expands without error


def test_make_campaign_rejects_unknown_name():
    with pytest.raises(ConfigurationError) as excinfo:
        make_campaign("nope")
    assert "smoke" in str(excinfo.value)


def test_make_campaign_forwards_overrides():
    campaign = make_campaign("smoke", num_runs=5, strategies=("least-waste",))
    assert campaign.base.num_runs == 5
    assert campaign.base.strategies == ("least-waste",)


def test_prospective_presets_use_the_prospective_platform():
    for name in ("prospective-bandwidth", "prospective-resilience"):
        campaign = make_campaign(name)
        assert campaign.base.platform.name == "Prospective"
        assert campaign.base.platform.num_nodes == 50_000


def test_prospective_resilience_crosses_failure_models():
    campaign = make_campaign("prospective-resilience")
    models = {s.failure_model for s in campaign.scenarios()}
    assert FailureModel() in models
    assert FailureModel(kind="weibull", shape=0.7) in models


def test_mini_cielo_mirrors_apex_structure():
    platform = mini_cielo_platform()
    classes = mini_apex_workload(platform)
    assert platform.num_nodes == 64
    assert [c.name for c in classes] == ["EAP", "LAP", "Silverton", "VPIC"]
    assert sum(c.workload_share for c in classes) == pytest.approx(1.0)
    assert all(c.nodes <= platform.num_nodes for c in classes)


# ------------------------------------------------------------ user files
def test_campaign_from_mapping_builds_matrix_from_preset_base():
    campaign = Campaign.from_mapping(
        {
            "name": "mapped",
            "base": "smoke",
            "overrides": {"num_runs": 1, "strategies": ["least-waste"]},
            "axes": [
                {"name": "io", "key": "bandwidth_gbs", "values": [1.0, 4.0]},
                {
                    "name": "mtbf",
                    "points": [
                        {"label": "short", "overrides": {"node_mtbf_years": 0.05}},
                        {"label": "long", "overrides": {"node_mtbf_years": 0.2}},
                    ],
                },
            ],
        }
    )
    assert campaign.name == "mapped"
    assert campaign.base.num_runs == 1 and campaign.base.strategies == ("least-waste",)
    assert campaign.shape == (2, 2)
    names = [scenario.name for scenario in campaign.scenarios()]
    assert names == ["io=1,mtbf=short", "io=1,mtbf=long", "io=4,mtbf=short", "io=4,mtbf=long"]


def test_campaign_from_mapping_validates_schema():
    with pytest.raises(ConfigurationError, match="name"):
        Campaign.from_mapping({"base": "smoke"})
    with pytest.raises(ConfigurationError, match="base"):
        Campaign.from_mapping({"name": "x"})
    with pytest.raises(ConfigurationError, match="unknown campaign"):
        Campaign.from_mapping({"name": "x", "base": "no-such-preset"})
    with pytest.raises(ConfigurationError, match="typo_key"):
        Campaign.from_mapping({"name": "x", "base": "smoke", "typo_key": 1})
    with pytest.raises(ConfigurationError, match="values"):
        Campaign.from_mapping(
            {"name": "x", "base": "smoke", "axes": [{"name": "io", "key": "bandwidth_gbs"}]}
        )
    with pytest.raises(ConfigurationError, match="label"):
        Campaign.from_mapping(
            {"name": "x", "base": "smoke", "axes": [{"name": "io", "points": [{}]}]}
        )
    with pytest.raises(ConfigurationError, match="'key'"):
        Campaign.from_mapping({"name": "x", "base": "smoke", "axes": [{"name": "io"}]})


def test_campaign_from_file_json_round_trip(tmp_path):
    import json

    path = tmp_path / "matrix.json"
    path.write_text(
        json.dumps(
            {
                "name": "file-campaign",
                "base": "smoke",
                "overrides": {"num_runs": 2},
                "axes": [{"name": "io", "key": "bandwidth_gbs", "values": [2.0]}],
            }
        )
    )
    campaign = Campaign.from_file(path)
    assert campaign.name == "file-campaign"
    assert campaign.base.num_runs == 2
    assert campaign.size() == 1
    with pytest.raises(ConfigurationError, match="cannot read"):
        Campaign.from_file(tmp_path / "missing.json")
    bad = tmp_path / "broken.json"
    bad.write_text("{not json")
    with pytest.raises(ConfigurationError, match="cannot parse"):
        Campaign.from_file(bad)


def test_campaign_from_file_toml(tmp_path):
    pytest.importorskip("tomllib")
    path = tmp_path / "matrix.toml"
    path.write_text(
        'name = "toml-campaign"\n'
        'base = "smoke"\n'
        "[overrides]\n"
        "num_runs = 1\n"
        "bandwidth_gbs = 8.0\n"
        "[[axes]]\n"
        'name = "mtbf"\n'
        'key = "node_mtbf_years"\n'
        "values = [0.05, 0.2]\n"
        'labels = ["short", "long"]\n'
    )
    campaign = Campaign.from_file(path)
    assert campaign.name == "toml-campaign"
    assert campaign.base.platform.io_bandwidth_bytes_per_s == pytest.approx(8.0 * GB)
    assert [p.label for p in campaign.axes[0].points] == ["short", "long"]


# --------------------------------------------------- parameterized strategies
def test_period_sweep_preset_sweeps_parameterized_specs():
    campaign = make_campaign("period-sweep", periods_hours=(0.5, 2.0))
    scenarios = campaign.scenarios()
    assert [s.name for s in scenarios] == [
        "period=reference", "period=0.5h", "period=2h",
    ]
    assert scenarios[0].strategies == ("ordered-daly",)
    assert scenarios[1].strategies == ("ordered[policy=fixed,period_s=1800]",)
    assert scenarios[2].strategies == ("ordered[policy=fixed,period_s=7200]",)
    # Every cell maps onto a distinct cache key via its canonical spec.
    strategies = {s.strategies[0] for s in scenarios}
    assert len(strategies) == 3


def test_campaign_axes_may_sweep_strategy_params():
    campaign = Campaign(
        name="bias-sweep",
        base=make_campaign("smoke").base.apply(num_runs=1, strategies=("least-waste",)),
        axes=(
            Axis(
                name="bias",
                points=tuple(
                    AxisPoint(label, {"strategies": (spec,)})
                    for label, spec in [
                        ("1x", "least-waste"),
                        ("2x", "least-waste[mtbf_bias=2]"),
                    ]
                ),
            ),
        ),
    )
    scenarios = campaign.scenarios()
    assert scenarios[0].strategies == ("least-waste",)
    assert scenarios[1].strategies == ("least-waste[mtbf_bias=2]",)
    # Specs survive config construction and digesting.
    from repro.exec.digest import config_digest

    digests = {config_digest(s.config(s.strategies[0])) for s in scenarios}
    assert len(digests) == 2


def test_campaign_file_accepts_parameterized_strategies(tmp_path):
    import json

    path = tmp_path / "period.json"
    path.write_text(
        json.dumps(
            {
                "name": "file-period",
                "base": "smoke",
                "overrides": {
                    "num_runs": 1,
                    "strategies": ["Ordered[Policy=Fixed, Period_s=1800]".replace(" ", "")],
                },
            }
        )
    )
    campaign = Campaign.from_file(path)
    assert campaign.base.strategies == ("ordered[policy=fixed,period_s=1800]",)

"""Kernel equivalence suite (repro.sim.kernel).

Every registered simulator kernel is bound by the float-for-float
equivalence contract: identical failure instants, identical node-pool
decisions, identical milestone offsets and — end to end — identical
simulation results to the ``"python"`` reference.  A kernel that moves any
float is a bug, never grounds for a ``DIGEST_VERSION`` bump; this suite is
what CI runs to enforce that.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SchedulingError
from repro.platform.failures import FailureModel, generate_failure_trace
from repro.platform.nodes import ArrayNodePool, NodePool
from repro.sim.kernel import (
    KERNEL_ENV_VAR,
    NumpyKernel,
    PythonKernel,
    SimulatorKernel,
    default_kernel_name,
    get_kernel,
    kernel_names,
    register_kernel,
    set_default_kernel,
)
from repro.simulation.simulator import Simulation
from repro.units import DAY

ALL_KERNELS = sorted(kernel_names())
FAST_KERNELS = [name for name in ALL_KERNELS if name != "python"]


# ------------------------------------------------------------------ registry
def test_builtin_kernels_are_registered():
    assert {"python", "numpy"} <= set(kernel_names())
    assert isinstance(get_kernel("python"), PythonKernel)
    assert isinstance(get_kernel("numpy"), NumpyKernel)


def test_default_kernel_is_python_without_overrides(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    monkeypatch.setattr("repro.sim.kernel._DEFAULT_KERNEL", None)
    assert default_kernel_name() == "python"
    assert isinstance(get_kernel(), PythonKernel)


def test_env_var_selects_the_default_kernel(monkeypatch):
    monkeypatch.setattr("repro.sim.kernel._DEFAULT_KERNEL", None)
    monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
    assert default_kernel_name() == "numpy"
    assert isinstance(get_kernel(), NumpyKernel)


def test_set_default_kernel_validates_and_exports(monkeypatch):
    monkeypatch.setattr("repro.sim.kernel._DEFAULT_KERNEL", None)
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    set_default_kernel("numpy")
    assert default_kernel_name() == "numpy"
    # Exported so spawned workers inherit the selection.
    import os

    assert os.environ[KERNEL_ENV_VAR] == "numpy"
    with pytest.raises(ConfigurationError):
        set_default_kernel("no-such-kernel")


def test_unknown_kernel_gets_a_did_you_mean():
    with pytest.raises(ConfigurationError, match=r"did you mean 'numpy'\?"):
        get_kernel("nunpy")
    with pytest.raises(ConfigurationError, match="known kernels"):
        get_kernel("fortran")


def test_register_kernel_rejects_duplicates(monkeypatch):
    import repro.sim.kernel as kernel_mod

    monkeypatch.setattr(kernel_mod, "_KERNEL_FACTORIES", dict(kernel_mod._KERNEL_FACTORIES))

    class MyKernel(SimulatorKernel):
        name = "mine"

    register_kernel("mine", MyKernel)
    assert "mine" in kernel_names()
    assert isinstance(get_kernel("mine"), MyKernel)
    with pytest.raises(ConfigurationError, match="already registered"):
        register_kernel("mine", MyKernel)
    register_kernel("mine", SimulatorKernel, replace_existing=True)
    with pytest.raises(ConfigurationError):
        register_kernel("", MyKernel)


def test_config_digest_ignores_the_kernel(tiny_config):
    from repro.exec.digest import config_digest

    config = tiny_config()
    assert config_digest(config.with_kernel("numpy")) == config_digest(
        config.with_kernel(None)
    )


# ----------------------------------------------------- failure-time batches
MODELS = [FailureModel(), FailureModel(kind="weibull", shape=0.7)]
HORIZONS = [0.0, 3.0 * DAY, 200.0 * DAY]


@pytest.mark.parametrize("fast", FAST_KERNELS)
@pytest.mark.parametrize("model", MODELS, ids=repr)
@pytest.mark.parametrize("horizon", HORIZONS)
def test_failure_times_match_the_reference(fast, model, horizon):
    reference = get_kernel("python")
    candidate = get_kernel(fast)
    mean_s = 2.0 * 3600.0
    a = reference.failure_times(model, np.random.default_rng(7), mean_s, horizon)
    b = candidate.failure_times(model, np.random.default_rng(7), mean_s, horizon)
    assert a == b  # exact float equality, not approx
    assert all(isinstance(t, float) for t in b)


@pytest.mark.parametrize("fast", FAST_KERNELS)
def test_kernels_consume_the_random_stream_identically(fast, tiny_platform):
    # After trace generation both kernels must leave the generator in the
    # same state, so everything drawn afterwards (node ids, workload jitter)
    # matches too.  generate_failure_trace draws node ids after the gaps,
    # which only line up if the gap blocks did.
    a = generate_failure_trace(
        tiny_platform, 60 * DAY, np.random.default_rng(3), kernel="python"
    )
    b = generate_failure_trace(
        tiny_platform, 60 * DAY, np.random.default_rng(3), kernel=fast
    )
    assert list(a.times) == list(b.times)
    assert list(a.node_ids) == list(b.node_ids)
    assert a.horizon == b.horizon


# ------------------------------------------------------------- milestones
@pytest.mark.parametrize("fast", FAST_KERNELS)
@given(
    total=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    chunks=st.integers(min_value=0, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_milestone_offsets_match_the_reference(fast, total, chunks):
    reference = get_kernel("python").milestone_offsets(total, chunks)
    candidate = get_kernel(fast).milestone_offsets(total, chunks)
    assert reference == candidate
    assert all(isinstance(x, float) for x in candidate)


# ------------------------------------------------------------- node pools
class _PoolMirror:
    """Drives a reference NodePool and an ArrayNodePool in lock-step."""

    def __init__(self, num_nodes: int) -> None:
        self.reference = NodePool(num_nodes)
        self.candidate = ArrayNodePool(num_nodes)
        self.owners: list[object] = []

    def step(self, op: tuple) -> None:
        results = []
        for pool in (self.reference, self.candidate):
            try:
                results.append(("ok", self._apply(pool, op)))
            except SchedulingError as exc:
                results.append(("err", str(exc)))
        assert results[0] == results[1], f"divergence on {op!r}"
        assert self.reference.num_free == self.candidate.num_free
        assert self.reference.num_allocated == self.candidate.num_allocated

    def _apply(self, pool: NodePool, op: tuple):
        kind = op[0]
        if kind == "alloc":
            _, count, owner_idx = op
            while owner_idx >= len(self.owners):
                self.owners.append(f"owner-{len(self.owners)}")
            return list(pool.allocate(count, self.owners[owner_idx]))
        if kind == "release_owner":
            if not self.owners:
                return None
            return list(pool.release_owner(self.owners[op[1] % len(self.owners)]))
        if kind == "release":
            # Release the first half of some owner's nodes (partial release).
            if not self.owners:
                return None
            nodes = pool.nodes_of(self.owners[op[1] % len(self.owners)])
            half = list(nodes)[: max(1, len(nodes) // 2)] if nodes else []
            if not half:
                return []
            pool.release(half)
            return list(half)
        if kind == "inspect":
            if not self.owners:
                return None
            owner = self.owners[op[1] % len(self.owners)]
            nodes = list(pool.nodes_of(owner))
            owners = [type(pool.owner_of(n)).__name__ for n in nodes]
            return (nodes, owners, pool.can_allocate(op[2]))
        raise AssertionError(kind)


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 6), st.integers(0, 4)),
            st.tuples(st.just("release_owner"), st.integers(0, 4)),
            st.tuples(st.just("release"), st.integers(0, 4)),
            st.tuples(st.just("inspect"), st.integers(0, 4), st.integers(-1, 8)),
        ),
        max_size=40,
    )
)
@settings(max_examples=150, deadline=None)
def test_array_node_pool_mirrors_the_reference(ops):
    mirror = _PoolMirror(12)
    for op in ops:
        mirror.step(op)


# ------------------------------------------------------------- end to end
def _preset_configs(preset: str, kernel: str):
    from repro.scenarios.presets import make_campaign

    configs = []
    for scenario in make_campaign(preset).scenarios():
        for config in scenario.configs():
            configs.append(config.with_kernel(kernel))
    return configs


@pytest.mark.parametrize("fast", FAST_KERNELS)
@pytest.mark.parametrize("preset", ["smoke", "period-sweep"])
def test_presets_are_float_identical_across_kernels(fast, preset):
    """Smoke + period-sweep presets, full results compared field by field."""
    for ref_cfg, fast_cfg in zip(
        _preset_configs(preset, "python"), _preset_configs(preset, fast)
    ):
        reference = Simulation(ref_cfg).run()
        candidate = Simulation(fast_cfg).run()
        assert reference == candidate, (
            f"kernel {fast!r} diverged from the reference on "
            f"{preset!r} / {ref_cfg.strategy!r}"
        )

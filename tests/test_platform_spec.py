"""Platform specification (repro.platform.spec)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.platform.spec import PlatformSpec
from repro.units import GB, HOUR, YEAR


def make_spec(**overrides) -> PlatformSpec:
    parameters = dict(
        name="Box",
        num_nodes=100,
        cores_per_node=16,
        memory_per_node_bytes=32.0 * GB,
        io_bandwidth_bytes_per_s=10.0 * GB,
        node_mtbf_s=5.0 * YEAR,
    )
    parameters.update(overrides)
    return PlatformSpec(**parameters)


def test_derived_quantities():
    spec = make_spec()
    assert spec.total_cores == 1600
    assert spec.total_memory_bytes == pytest.approx(3200.0 * GB)
    assert spec.system_mtbf_s == pytest.approx(5.0 * YEAR / 100)
    assert spec.failure_rate_per_s == pytest.approx(100 / (5.0 * YEAR))


def test_with_bandwidth_and_mtbf_return_modified_copies():
    spec = make_spec()
    faster = spec.with_bandwidth(40.0 * GB)
    assert faster.io_bandwidth_bytes_per_s == pytest.approx(40.0 * GB)
    assert spec.io_bandwidth_bytes_per_s == pytest.approx(10.0 * GB)

    fragile = spec.with_node_mtbf(1.0 * YEAR)
    assert fragile.node_mtbf_s == pytest.approx(1.0 * YEAR)
    assert fragile.name == spec.name

    bigger = spec.with_num_nodes(500)
    assert bigger.num_nodes == 500


@pytest.mark.parametrize(
    "overrides",
    [
        {"num_nodes": 0},
        {"cores_per_node": 0},
        {"memory_per_node_bytes": 0.0},
        {"io_bandwidth_bytes_per_s": 0.0},
        {"node_mtbf_s": 0.0},
    ],
)
def test_invalid_parameters_rejected(overrides):
    with pytest.raises(ConfigurationError):
        make_spec(**overrides)


def test_describe_mentions_key_figures():
    text = make_spec().describe()
    assert "Box" in text
    assert "100" in text
    assert "GB/s" in text


def test_cielo_system_mtbf_about_two_hours():
    from repro.workloads.cielo import CIELO

    assert 1.5 * HOUR < CIELO.system_mtbf_s < 2.5 * HOUR

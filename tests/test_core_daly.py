"""Young/Daly periods and MTBF scaling (repro.core.daly)."""

from __future__ import annotations

import math

import pytest

from repro.core import daly
from repro.errors import AnalysisError
from repro.units import HOUR, YEAR


def test_job_mtbf_scales_inversely_with_processors():
    assert daly.job_mtbf(100.0, 1) == pytest.approx(100.0)
    assert daly.job_mtbf(100.0, 4) == pytest.approx(25.0)
    assert daly.job_mtbf(100.0, 100) == pytest.approx(1.0)


def test_system_mtbf_matches_paper_cielo_example():
    # The paper quotes a 2-year node MTBF as roughly a 1-hour system MTBF
    # (they assume ~17.5k processors); with our 8 944-node Cielo model the
    # system MTBF is close to 2 hours.
    system = daly.system_mtbf(2.0 * YEAR, 8944)
    assert 1.5 * HOUR < system < 2.5 * HOUR


def test_young_period_formula():
    assert daly.young_period(100.0, 50_000.0) == pytest.approx(math.sqrt(2 * 50_000.0 * 100.0))


def test_daly_period_is_alias_of_young_period():
    assert daly.daly_period(123.0, 45_678.0) == daly.young_period(123.0, 45_678.0)


def test_young_period_grows_with_checkpoint_cost_and_mtbf():
    base = daly.young_period(100.0, 10_000.0)
    assert daly.young_period(400.0, 10_000.0) == pytest.approx(2.0 * base)
    assert daly.young_period(100.0, 40_000.0) == pytest.approx(2.0 * base)


def test_high_order_period_close_to_first_order_when_c_small():
    mu = 1_000_000.0
    c = 10.0
    first = daly.young_period(c, mu)
    refined = daly.daly_period_high_order(c, mu)
    assert refined == pytest.approx(first, rel=0.01)


def test_high_order_period_degrades_to_mtbf_when_c_huge():
    assert daly.daly_period_high_order(10_000.0, 100.0) == pytest.approx(100.0)


def test_checkpoint_time_is_volume_over_bandwidth():
    assert daly.checkpoint_time(10e9, 1e9) == pytest.approx(10.0)


@pytest.mark.parametrize(
    ("func", "args"),
    [
        (daly.job_mtbf, (0.0, 4)),
        (daly.job_mtbf, (100.0, 0)),
        (daly.young_period, (0.0, 100.0)),
        (daly.young_period, (100.0, 0.0)),
        (daly.young_period, (-1.0, 100.0)),
        (daly.checkpoint_time, (0.0, 1e9)),
        (daly.checkpoint_time, (1e9, 0.0)),
        (daly.daly_period_high_order, (0.0, 10.0)),
    ],
)
def test_invalid_inputs_raise_analysis_error(func, args):
    with pytest.raises(AnalysisError):
        func(*args)


def test_non_finite_inputs_rejected():
    with pytest.raises(AnalysisError):
        daly.young_period(float("nan"), 100.0)
    with pytest.raises(AnalysisError):
        daly.young_period(100.0, float("inf"))

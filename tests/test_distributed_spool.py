"""Unit tests of the filesystem work spool and the task-spec format.

The spool's whole correctness argument rests on atomic renames: exactly one
claimer wins a task, exactly one reclaimer wins an expired lease, and specs
are content-addressed so re-submission is idempotent.  These tests pin each
of those properties, including under deliberate concurrency.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.distributed import TaskSpec, WorkSpool, make_task_specs
from repro.distributed.tasks import SPOOL_FORMAT_VERSION, shard_of, task_id_for
from repro.errors import ConfigurationError, SpoolError


def _toy_task(seed: int) -> float:
    """Module-level (hence picklable) deterministic toy task."""
    return float(seed % 11) / 11.0


def _spec(seeds=(1, 2, 3), strategy="least-waste", digest="a" * 64) -> TaskSpec:
    return TaskSpec(task=_toy_task, digest=digest, strategy=strategy, seeds=seeds)


def _queued_path(root, task_id: str):
    """Where one pending task sits in the sharded layout."""
    return root / "tasks" / shard_of(task_id) / f"{task_id}.json"


def _lease_of(root, task_id: str):
    """The lease file of the claim batch currently holding one task."""
    for batch_dir in (root / "claims").iterdir():
        if batch_dir.is_dir() and (batch_dir / f"{task_id}.json").exists():
            return batch_dir / ".lease.json"
    raise AssertionError(f"no claim batch holds {task_id!r}")


# ------------------------------------------------------------ construction
def test_spool_validates_parameters(tmp_path):
    with pytest.raises(ConfigurationError):
        WorkSpool(tmp_path, lease_ttl_s=0.0)
    stray = tmp_path / "stray"
    stray.write_text("not a directory")
    with pytest.raises(ConfigurationError):
        WorkSpool(stray)
    spool = WorkSpool(tmp_path / "spool")
    for state in ("tasks", "claims", "done", "failed"):
        assert (tmp_path / "spool" / state).is_dir()
    assert spool.status().drained


# ------------------------------------------------------------ task specs
def test_task_spec_round_trips_through_json(tmp_path):
    spec = _spec()
    decoded = TaskSpec.decode(spec.encode())
    assert decoded.task_id == spec.task_id
    assert decoded.digest == spec.digest
    assert decoded.strategy == spec.strategy
    assert decoded.seeds == spec.seeds
    assert decoded.task(7) == _toy_task(7)  # the callable survives transport


def test_task_spec_is_content_addressed():
    assert _spec().task_id == _spec().task_id
    assert _spec(seeds=(1, 2)).task_id != _spec(seeds=(1, 2, 3)).task_id
    assert _spec(strategy="ordered-daly").task_id != _spec().task_id
    assert _spec(digest="b" * 64).task_id != _spec().task_id
    # ids are filename-safe and human-scannable: digest prefix + strategy.
    assert _spec().task_id.startswith("aaaaaaaa-least-waste-")
    assert task_id_for("a" * 64, "least-waste", [1, 2, 3]) == _spec().task_id


def test_task_spec_rejects_garbage_and_version_mismatch():
    with pytest.raises(SpoolError):
        TaskSpec.decode("{not json")
    with pytest.raises(SpoolError):
        TaskSpec.decode('{"format": "0", "task_id": "x"}')
    with pytest.raises(SpoolError):
        TaskSpec.decode('{"format": "%s"}' % SPOOL_FORMAT_VERSION)  # missing fields
    with pytest.raises(SpoolError):
        TaskSpec(task=_toy_task, digest="a" * 64, strategy="s", seeds=())


def test_make_task_specs_chunking():
    specs = make_task_specs(_toy_task, "a" * 64, "least-waste", range(10), chunk_size=4)
    assert [list(s.seeds) for s in specs] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
    # Default: about four chunks per batch so one cell spreads across workers.
    assert len(make_task_specs(_toy_task, "a" * 64, "s" , range(10))) == 4
    assert make_task_specs(_toy_task, "a" * 64, "s", []) == []


# ------------------------------------------------------------ lifecycle
def test_enqueue_claim_ack_lifecycle(tmp_path):
    spool = WorkSpool(tmp_path)
    spec = _spec()
    assert spool.enqueue(spec) is True
    assert spool.enqueue(spec) is False  # content-addressed: double submit is a no-op
    assert spool.status().pending == 1

    claimed = spool.claim("w1")
    assert claimed is not None and claimed.task_id == spec.task_id
    assert spool.status().claimed == 1 and spool.status().pending == 0
    assert spool.enqueue(spec) is False  # claimed tasks can't be re-queued
    assert spool.claim("w2") is None  # nothing left to claim

    spool.ack(spec.task_id, worker_id="w1")
    status = spool.status()
    assert status.done == 1 and status.drained


def test_ack_without_claim_raises(tmp_path):
    spool = WorkSpool(tmp_path)
    with pytest.raises(SpoolError):
        spool.ack("no-such-task")


def test_release_returns_task_to_queue(tmp_path):
    spool = WorkSpool(tmp_path)
    spec = _spec()
    spool.enqueue(spec)
    spool.claim("w1")
    spool.release(spec.task_id)
    assert spool.status().pending == 1 and spool.status().claimed == 0
    assert spool.claim("w2").task_id == spec.task_id


def test_fail_records_error_and_resubmission_retries(tmp_path):
    spool = WorkSpool(tmp_path)
    spec = _spec()
    spool.enqueue(spec)
    spool.claim("w1")
    spool.fail(spec.task_id, "ValueError: boom", worker_id="w1")
    assert spool.status().failed == 1
    assert spool.failed_ids() == [spec.task_id]
    assert "boom" in spool.failure(spec.task_id)
    assert spool.failure("unknown-task") is None
    # Re-submitting retries: the failure record is cleared.
    assert spool.enqueue(spec) is True
    assert spool.status().failed == 0 and spool.status().pending == 1


def test_enqueue_clears_stale_done_marker(tmp_path):
    spool = WorkSpool(tmp_path)
    spec = _spec()
    spool.enqueue(spec)
    spool.claim("w1")
    spool.ack(spec.task_id)
    # The submitter only enqueues cache misses, so a done marker for work
    # being re-submitted is stale (e.g. the cache was pruned) and must yield.
    assert spool.enqueue(spec) is True
    assert spool.status().pending == 1 and spool.status().done == 0


def test_corrupt_spec_is_quarantined_not_wedging_the_queue(tmp_path):
    spool = WorkSpool(tmp_path)
    good = _spec()
    bad = _queued_path(tmp_path, "00000000-bad-deadbeef")
    bad.parent.mkdir(parents=True)
    bad.write_text("{corrupt")
    spool.enqueue(good)
    claimed = []
    while (spec := spool.claim("w1")) is not None:  # quarantines, never wedges
        claimed.append(spec.task_id)
    assert claimed == [good.task_id]
    assert spool.status().failed == 1
    assert "corrupt" in spool.failure("00000000-bad-deadbeef")


# ------------------------------------------------------------ leases
def test_expired_lease_is_reclaimed_exactly_once(tmp_path):
    spool = WorkSpool(tmp_path, lease_ttl_s=0.05)
    spec = _spec()
    spool.enqueue(spec)
    spool.claim("doomed")
    assert spool.reclaim_expired() == []  # lease still fresh
    past = time.time() - 60.0
    os.utime(_lease_of(tmp_path, spec.task_id), (past, past))
    assert spool.reclaim_expired() == [spec.task_id]
    assert spool.reclaim_expired() == []  # second sweep finds nothing
    assert spool.status().pending == 1
    assert spool.claim("survivor").task_id == spec.task_id


def test_sweeper_honours_the_claimers_recorded_lease_ttl(tmp_path):
    """Expiry is judged by the TTL the *claimer* recorded, so a submitter
    configured with a shorter lease than the workers never steals a live
    claim whose heartbeat cadence is legitimate under the longer TTL."""
    worker_spool = WorkSpool(tmp_path, lease_ttl_s=300.0)
    spec = _spec()
    worker_spool.enqueue(spec)
    worker_spool.claim("long-lease-worker")
    past = time.time() - 60.0  # stale under 0.05s, fresh under 300s
    lease = _lease_of(tmp_path, spec.task_id)
    os.utime(lease, (past, past))
    sweeper = WorkSpool(tmp_path, lease_ttl_s=0.05)
    assert sweeper.reclaim_expired() == []
    # Without a lease the sweep falls back to its own (short) TTL, judged
    # on the batch directory's mtime.
    batch_dir = lease.parent
    lease.unlink()
    os.utime(batch_dir, (past, past))
    assert sweeper.reclaim_expired() == [spec.task_id]


def test_claim_refreshes_a_stale_queue_mtime(tmp_path):
    """A task that waited in the queue longer than the lease TTL must not
    look instantly expired once claimed (the rename preserves the old
    enqueue mtime; the claim's freshly written lease is what counts)."""
    spool = WorkSpool(tmp_path, lease_ttl_s=0.05)
    spec = _spec()
    spool.enqueue(spec)
    past = time.time() - 60.0
    os.utime(_queued_path(tmp_path, spec.task_id), (past, past))
    assert spool.claim("w1") is not None
    assert spool.reclaim_expired() == []  # the fresh claim holds its lease


def test_claim_hands_batch_back_when_the_lease_cannot_be_written(tmp_path):
    """A claim whose lease write keeps failing (full disk, PFS hiccup) must
    hand the batch back and report no claim — a leaseless batch would only
    expire via the slow directory-mtime fallback — not crash or run dark."""
    from repro.distributed import fsops

    spool = WorkSpool(tmp_path)
    spec = _spec()
    spool.enqueue(spec)

    def deny_lease_writes(op: str, path: str) -> None:
        if op == "write" and path.endswith(".lease.json"):
            raise OSError(f"injected: {op} {path}")

    previous = fsops.install_fault_hook(deny_lease_writes)
    try:
        assert spool.claim("w1") is None  # lost to the fault, no exception
    finally:
        fsops.install_fault_hook(previous)
    assert spool.status().pending == 1  # the task is back in the queue
    assert spool.claim("w2").task_id == spec.task_id


def test_heartbeat_keeps_lease_alive(tmp_path):
    spool = WorkSpool(tmp_path, lease_ttl_s=0.05)
    spec = _spec()
    spool.enqueue(spec)
    spool.claim("w1")
    past = time.time() - 60.0
    os.utime(_lease_of(tmp_path, spec.task_id), (past, past))
    spool.heartbeat(spec.task_id)  # refreshes the lease before the sweep
    assert spool.reclaim_expired() == []
    spool.heartbeat("missing-task")  # reclaimed/acked tasks are ignored


# ------------------------------------------------------------ concurrency
def test_concurrent_claimers_partition_the_queue(tmp_path):
    """N threads hammering claim() must partition tasks with no duplicates."""
    spool_paths = [WorkSpool(tmp_path) for _ in range(4)]
    specs = [_spec(seeds=(seed,)) for seed in range(40)]
    for spec in specs:
        assert spool_paths[0].enqueue(spec)

    claimed: list[list[str]] = [[] for _ in spool_paths]

    def drain(worker: int) -> None:
        while True:
            spec = spool_paths[worker].claim(f"w{worker}")
            if spec is None:
                return
            claimed[worker].append(spec.task_id)

    threads = [threading.Thread(target=drain, args=(i,)) for i in range(len(spool_paths))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    all_claimed = [task_id for per_worker in claimed for task_id in per_worker]
    assert len(all_claimed) == len(specs)  # nothing lost
    assert len(set(all_claimed)) == len(specs)  # nothing claimed twice
    assert sorted(all_claimed) == sorted(spec.task_id for spec in specs)

"""Golden-value regression pins for the simulator.

These tests pin exact small-sample summary statistics for one
representative strategy per scheduler family on the miniature Cielo
configuration.  They exist to make silent behaviour drift impossible: any
refactor that changes a simulated result — event ordering, accounting,
RNG consumption, scheduling decisions — fails here.

If a change is *intentional* (a bug fix, a model change), do three things
in the same commit:

1. bump ``repro.exec.digest.DIGEST_VERSION`` (cached results on disk are
   stale the moment results change),
2. regenerate the pinned values below (run this file with
   ``--print-golden`` style snippet in the module docstring of the test),
3. say so in the commit message.

``EXPECTED_DIGEST_VERSION`` ties 1 and 2 together: forgetting the bump
fails the suite even if the goldens were regenerated.
"""

from __future__ import annotations

import pytest

from repro.exec.digest import DIGEST_VERSION
from repro.scenarios.presets import FAMILY_STRATEGIES, mini_apex_workload, mini_cielo_platform
from repro.scenarios.runner import CampaignRunner
from repro.scenarios.spec import Scenario

#: The digest version these goldens were generated under.  If you changed
#: simulator behaviour on purpose: bump DIGEST_VERSION, regenerate the
#: GOLDEN_* values (see module docstring) and update this pin.
EXPECTED_DIGEST_VERSION = "2"

#: (mean, min, max) of the waste ratio per strategy; 3 seeds, base_seed 2018,
#: miniature Cielo, 12-hour horizon.  Regenerate with:
#:   PYTHONPATH=src python -c "import tests.test_golden_regression as g; g.print_golden()"
GOLDEN_WASTE = {
    "oblivious-daly": (0.13058508725313633, 0.0649079914192458, 0.24271995638571534),
    "ordered-daly": (0.12775522921726082, 0.06178770096567396, 0.23902348856709577),
    "orderednb-daly": (0.12260959233449209, 0.05683971747275822, 0.23902348856709577),
    "least-waste": (0.12125304185116953, 0.05664244107345878, 0.23741511915894367),
}


def golden_scenario() -> Scenario:
    return Scenario(
        name="golden",
        platform=mini_cielo_platform(),
        workload=tuple(mini_apex_workload()),
        strategies=FAMILY_STRATEGIES,
        num_runs=3,
        base_seed=2018,
        horizon_days=0.5,
        warmup_days=0.0625,
        cooldown_days=0.0625,
    )


def print_golden() -> None:  # pragma: no cover - regeneration helper
    outcome = CampaignRunner().run_scenario(golden_scenario())
    for strategy in FAMILY_STRATEGIES:
        summary = outcome.summaries[strategy]
        print(f'    "{strategy}": ({summary.mean!r}, {summary.minimum!r}, {summary.maximum!r}),')


def test_digest_version_matches_the_goldens():
    assert DIGEST_VERSION == EXPECTED_DIGEST_VERSION, (
        "DIGEST_VERSION changed without regenerating the golden values "
        "(or the goldens were regenerated without bumping DIGEST_VERSION); "
        "see the module docstring of test_golden_regression.py"
    )


def test_all_four_families_are_pinned():
    assert tuple(GOLDEN_WASTE) == FAMILY_STRATEGIES


def test_golden_waste_statistics_are_bit_exact():
    outcome = CampaignRunner().run_scenario(golden_scenario())
    observed = {
        strategy: (summary.mean, summary.minimum, summary.maximum)
        for strategy, summary in outcome.summaries.items()
    }
    mismatches = {
        strategy: (observed[strategy], GOLDEN_WASTE[strategy])
        for strategy in GOLDEN_WASTE
        if observed[strategy] != GOLDEN_WASTE[strategy]
    }
    assert not mismatches, (
        "simulated results drifted from the pinned goldens "
        "(intentional changes must bump DIGEST_VERSION and regenerate; "
        f"see module docstring): {mismatches}"
    )


def test_goldens_preserve_the_papers_strategy_ranking():
    """On the reference scenario the paper's ordering holds: cooperative
    strategies beat oblivious checkpointing, and Least-Waste wins."""
    means = {strategy: mean for strategy, (mean, _, _) in GOLDEN_WASTE.items()}
    assert means["least-waste"] < means["orderednb-daly"]
    assert means["orderednb-daly"] < means["ordered-daly"]
    assert means["ordered-daly"] < means["oblivious-daly"]

"""Campaign execution (repro.scenarios.runner) and its cache/backend contract.

The acceptance bar of the subsystem: a >= 2x2 matrix runs through
``ParallelRunner``, an immediate re-run is served entirely from the
``ResultCache`` (zero new simulations), and serial vs. process backends
render byte-identical campaign tables.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec.runner import ParallelRunner
from repro.scenarios.campaign import Axis, AxisPoint, Campaign
from repro.scenarios.report import campaign_to_csv, render_campaign, render_campaign_details
from repro.scenarios.runner import CampaignRunner
from repro.scenarios.spec import Scenario


@pytest.fixture
def matrix(tiny_platform, tiny_classes) -> Campaign:
    """A 2x2 (bandwidth x MTBF) matrix on the toy platform; 16 tiny sims."""
    base = Scenario(
        name="toy",
        platform=tiny_platform,
        workload=tiny_classes,
        strategies=("ordered-daly", "least-waste"),
        num_runs=2,
        horizon_days=0.5,
        warmup_days=0.05,
        cooldown_days=0.05,
    )
    return Campaign(
        name="toy-matrix",
        base=base,
        axes=(
            Axis.from_values("io", "bandwidth_gbs", [0.5, 2.0]),
            Axis.from_values("mtbf", "node_mtbf_years", [0.05, 0.5]),
        ),
    )


def _cells(campaign: Campaign) -> int:
    return campaign.size() * len(campaign.base.strategies) * campaign.base.num_runs


# ------------------------------------------------------------------ running
def test_campaign_runs_every_cell_through_the_runner(matrix):
    runner = CampaignRunner()
    result = runner.run(matrix)
    assert runner.runner.stats.tasks_run == _cells(matrix)
    assert [o.scenario.name for o in result.outcomes] == [
        s.name for s in matrix.scenarios()
    ]
    for outcome in result.outcomes:
        assert set(outcome.summaries) == set(matrix.base.strategies)
        for summary in outcome.summaries.values():
            assert summary.n == matrix.base.num_runs
            assert 0.0 <= summary.mean <= 1.0


def test_result_lookup_helpers(matrix):
    result = CampaignRunner().run(matrix)
    name = result.outcomes[0].scenario.name
    outcome = result.outcome(name)
    assert result.summary(name, "least-waste") == outcome.summaries["least-waste"]
    assert outcome.best_strategy() in matrix.base.strategies
    with pytest.raises(ConfigurationError):
        result.outcome("nope")
    with pytest.raises(ConfigurationError):
        result.summary(name, "oblivious-fixed")


def test_detail_exposes_the_full_simulation_result(matrix):
    from repro.stats.montecarlo import derive_seeds

    runner = CampaignRunner()
    scenario = matrix.scenarios()[0]
    detail = runner.detail(scenario, "least-waste")
    assert detail.strategy == "least-waste"
    assert 0.0 <= detail.waste_ratio <= 1.0
    # The detailed run replays the scenario's first derived seed exactly.
    values = runner.runner.run_config(
        scenario.config("least-waste"),
        derive_seeds(scenario.base_seed, scenario.num_runs),
    )
    assert detail.waste_ratio == values[0]


def test_detail_requires_a_concrete_base_seed(matrix):
    """With base_seed=None every derive_seeds call resolves fresh entropy,
    so a detail run could not replay a repetition the table measured."""
    import dataclasses

    unseeded = dataclasses.replace(matrix.scenarios()[0], base_seed=None)
    with pytest.raises(ConfigurationError):
        CampaignRunner().detail(unseeded, "least-waste")


# ------------------------------------------------------------------- cache
def test_campaign_rerun_hits_the_cache_with_zero_new_simulations(matrix, tmp_path):
    first = CampaignRunner(runner=ParallelRunner(cache_dir=tmp_path))
    a = first.run(matrix)
    assert first.runner.stats.tasks_run == _cells(matrix)
    assert first.runner.stats.cache_hits == 0

    second = CampaignRunner(runner=ParallelRunner(cache_dir=tmp_path))
    b = second.run(matrix)
    assert second.runner.stats.tasks_run == 0  # zero new simulations
    assert second.runner.stats.cache_hits == _cells(matrix)
    assert render_campaign(a) == render_campaign(b)
    assert campaign_to_csv(a) == campaign_to_csv(b)


def test_growing_the_matrix_only_simulates_new_cells(matrix, tmp_path):
    CampaignRunner(runner=ParallelRunner(cache_dir=tmp_path)).run(matrix)

    grown = Campaign(
        name=matrix.name,
        base=matrix.base,
        axes=(
            Axis.from_values("io", "bandwidth_gbs", [0.5, 2.0, 8.0]),  # one new point
            matrix.axes[1],
        ),
    )
    runner = CampaignRunner(runner=ParallelRunner(cache_dir=tmp_path))
    runner.run(grown)
    new_cells = 2 * len(matrix.base.strategies) * matrix.base.num_runs  # io=8 column
    assert runner.runner.stats.tasks_run == new_cells
    assert runner.runner.stats.cache_hits == _cells(matrix)


def test_corrupt_cache_entry_is_resimulated_and_rewritten(matrix, tmp_path):
    """A corrupt or truncated entry degrades to a miss mid-campaign: the cell
    is re-simulated, the entry rewritten, and the table is unchanged."""
    warm = CampaignRunner(runner=ParallelRunner(cache_dir=tmp_path))
    reference = warm.run(matrix)

    entries = sorted(tmp_path.glob("*/*/*/*.json"))
    assert len(entries) == _cells(matrix)
    entries[0].write_text('{"value": 0.12')  # truncated write
    entries[1].write_text('{"value": Infinity}')  # parses, but not a result
    entries[2].write_bytes(b"\x00\xff\x00garbage")  # binary garbage

    rerun = CampaignRunner(runner=ParallelRunner(cache_dir=tmp_path))
    result = rerun.run(matrix)
    assert rerun.runner.stats.tasks_run == 3  # only the corrupt cells
    assert render_campaign(result) == render_campaign(reference)

    # The corrupt entries were rewritten: a third pass is all hits again.
    final = CampaignRunner(runner=ParallelRunner(cache_dir=tmp_path))
    final.run(matrix)
    assert final.runner.stats.tasks_run == 0


# ------------------------------------------------- backend bit-identity
def test_serial_and_process_backends_render_identical_tables(matrix):
    serial = CampaignRunner(runner=ParallelRunner(backend="serial"))
    table_serial = serial.run(matrix)
    with ParallelRunner(backend="process", workers=2) as pool:
        table_process = CampaignRunner(runner=pool).run(matrix)
    assert render_campaign(table_serial) == render_campaign(table_process)
    assert render_campaign_details(table_serial) == render_campaign_details(table_process)
    assert campaign_to_csv(table_serial) == campaign_to_csv(table_process)


def test_axis_added_strategies_appear_in_the_table(matrix):
    """An axis that overrides ``strategies`` must not lose simulated cells:
    the table columns are the union of every scenario's strategy set."""
    widened = Campaign(
        name="widened",
        base=matrix.base,
        axes=(
            Axis(
                name="strat",
                points=(
                    AxisPoint("families", {"strategies": ("oblivious-daly", "least-waste")}),
                    AxisPoint("base", {}),
                ),
            ),
        ),
    )
    result = CampaignRunner().run(widened)
    assert result.strategies == ("ordered-daly", "least-waste", "oblivious-daly")
    table = render_campaign(result)
    assert "oblivious-daly" in table
    # The cell skipped by the base-strategy scenario renders as '-', while
    # the axis-added strategy's simulated cell is reported.
    assert result.summary("strat=families", "oblivious-daly").n == matrix.base.num_runs
    csv_text = campaign_to_csv(result)
    assert "oblivious-daly" in csv_text


# ------------------------------------------------------------- rendering
def test_render_campaign_marks_the_best_strategy(matrix):
    result = CampaignRunner().run(matrix)
    table = render_campaign(result)
    for outcome in result.outcomes:
        assert outcome.scenario.name in table
    assert table.count("*") >= len(result.outcomes)  # one winner per row


def test_campaign_csv_quotes_scenario_names(matrix):
    import csv
    import io

    result = CampaignRunner().run(matrix)
    rows = list(csv.reader(io.StringIO(campaign_to_csv(result))))
    header, data = rows[0], rows[1:]
    assert header[:5] == ["campaign", "scenario", "strategy", "spec", "best"]
    assert len(data) == matrix.size() * len(matrix.base.strategies)
    # Scenario names contain commas yet survive the round-trip intact.
    names = {row[1] for row in data}
    assert names == {s.name for s in matrix.scenarios()}
    # Exactly one winner per scenario.
    for scenario in matrix.scenarios():
        winners = [row for row in data if row[1] == scenario.name and row[4] == "1"]
        assert len(winners) == 1


def test_campaign_runner_context_manager_closes_the_backend(matrix):
    with CampaignRunner(runner=ParallelRunner(backend="process", workers=2)) as runner:
        runner.run(matrix)
        assert runner.runner._backend_impl is not None
    assert runner.runner._backend_impl is None  # pool shut down on exit
    runner.close()  # idempotent


# ------------------------------------------------------ partial outcomes
def _partial_outcome(matrix, strategies=("least-waste",)):
    """An outcome summarising only a subset of the declared strategies,
    as an interrupted/resumed campaign produces."""
    from repro.scenarios.runner import ScenarioOutcome
    from repro.stats.summary import summarize

    scenario = matrix.scenarios()[0]
    return ScenarioOutcome(
        scenario=scenario,
        summaries={s: summarize([0.1, 0.2]) for s in strategies},
    )


def test_best_strategy_skips_strategies_missing_from_partial_summaries(matrix):
    """Regression: ``min`` over *declared* strategies raised ``KeyError`` when
    a summary was absent; the best must come from the present ones."""
    outcome = _partial_outcome(matrix, strategies=("least-waste",))
    assert set(outcome.scenario.strategies) == {"ordered-daly", "least-waste"}
    assert outcome.best_strategy() == "least-waste"  # no KeyError


def test_best_strategy_of_an_empty_outcome_is_none(matrix):
    assert _partial_outcome(matrix, strategies=()).best_strategy() is None


def test_best_strategy_ties_resolve_in_declaration_order(matrix):
    outcome = _partial_outcome(matrix, strategies=("least-waste", "ordered-daly"))
    # Identical means: the earlier *declared* strategy wins.
    assert outcome.best_strategy() == "ordered-daly"


def test_renderers_handle_partial_and_empty_outcomes(matrix):
    """A partial/resumed campaign must render ('-' cells), not crash."""
    from repro.scenarios.runner import CampaignResult

    result = CampaignResult(
        campaign="partial",
        strategies=tuple(matrix.base.strategies),
        outcomes=[
            _partial_outcome(matrix, strategies=("least-waste",)),
            _partial_outcome(matrix, strategies=()),
        ],
    )
    table = render_campaign(result)
    assert "-" in table  # the missing cells
    assert "*" in table  # the present cell still gets its winner
    details = render_campaign_details(result)
    assert "least-waste" in details
    rows = campaign_to_csv(result).splitlines()
    assert len(rows) == 2  # header + the one populated cell


def test_campaign_csv_degrades_unregistered_strategy_kinds_to_their_spec(matrix):
    """Regression: exporting a campaign that ran a custom strategy kind must
    not require the kind's registering module in the reporting process."""
    import csv
    import io

    from repro.scenarios.runner import CampaignResult, ScenarioOutcome
    from repro.stats.summary import summarize

    spec = "myplugin[gain=2]"  # never registered in this process
    outcome = ScenarioOutcome(
        scenario=matrix.scenarios()[0],
        summaries={spec: summarize([0.3, 0.4])},
    )
    result = CampaignResult(campaign="plugin", strategies=(spec,), outcomes=[outcome])
    rows = list(csv.reader(io.StringIO(campaign_to_csv(result))))
    assert rows[1][2] == spec
    assert rows[1][3] == spec  # resolved spec degrades to the canonical string
    assert rows[1][4] == "1"  # it is still the row's winner

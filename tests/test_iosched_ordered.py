"""Ordered and Ordered-NB FCFS token scheduling."""

from __future__ import annotations

import pytest

from repro.apps.job import Job
from repro.apps.phases import IOKind
from repro.iosched.base import IORequest
from repro.iosched.ordered import OrderedScheduler
from repro.iosched.ordered_nb import OrderedNBScheduler
from repro.platform.io_subsystem import IOSubsystem
from repro.sim.engine import SimulationEngine
from repro.units import HOUR


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def io(engine) -> IOSubsystem:
    return IOSubsystem(engine, bandwidth_bytes_per_s=100.0)


def test_flags_differ_only_in_blocking_semantics():
    assert not OrderedScheduler.shares_bandwidth
    assert not OrderedNBScheduler.shares_bandwidth
    assert not OrderedScheduler.nonblocking_checkpoints
    assert OrderedNBScheduler.nonblocking_checkpoints
    assert OrderedScheduler.name == "ordered"
    assert OrderedNBScheduler.name == "ordered-nb"


@pytest.mark.parametrize("scheduler_cls", [OrderedScheduler, OrderedNBScheduler])
def test_fcfs_order_is_respected(engine, io, tiny_classes, scheduler_cls):
    scheduler = scheduler_cls(engine, io, node_mtbf_s=1e6)
    order: list[str] = []
    jobs = [Job(app_class=tiny_classes[0], total_work_s=HOUR) for _ in range(3)]
    for index, job in enumerate(jobs):
        request = IORequest(
            job,
            IOKind.CHECKPOINT,
            200.0,
            submitted_at=0.0,
            on_complete=lambda r, i=index: order.append(f"job{i}"),
        )
        scheduler.submit(request)
    engine.run()
    assert order == ["job0", "job1", "job2"]


@pytest.mark.parametrize("scheduler_cls", [OrderedScheduler, OrderedNBScheduler])
def test_ordered_paper_example_two_jobs(engine, io, tiny_classes, scheduler_cls):
    """§3.2: two simultaneous transfers of volume V: one ends at V/beta, the
    other at 2V/beta, improving the average over the oblivious 2V/beta both."""
    scheduler = scheduler_cls(engine, io, node_mtbf_s=1e6)
    finish: dict[str, float] = {}
    job_a = Job(app_class=tiny_classes[0], total_work_s=HOUR)
    job_b = Job(app_class=tiny_classes[0], total_work_s=HOUR)
    scheduler.submit(IORequest(job_a, IOKind.INPUT, 500.0, 0.0, on_complete=lambda r: finish.setdefault("a", engine.now)))
    scheduler.submit(IORequest(job_b, IOKind.INPUT, 500.0, 0.0, on_complete=lambda r: finish.setdefault("b", engine.now)))
    engine.run()
    assert finish["a"] == pytest.approx(5.0)
    assert finish["b"] == pytest.approx(10.0)
    # Average completion time 7.5 < the oblivious 10.
    assert (finish["a"] + finish["b"]) / 2 < 10.0


def test_granted_transfer_gets_full_bandwidth_even_with_waiters(engine, io, tiny_classes):
    scheduler = OrderedScheduler(engine, io, node_mtbf_s=1e6)
    first_done: list[float] = []
    job_a = Job(app_class=tiny_classes[0], total_work_s=HOUR)
    job_b = Job(app_class=tiny_classes[1], total_work_s=HOUR)
    scheduler.submit(IORequest(job_a, IOKind.OUTPUT, 300.0, 0.0, on_complete=lambda r: first_done.append(engine.now)))
    scheduler.submit(IORequest(job_b, IOKind.OUTPUT, 300.0, 0.0))
    engine.run()
    # The first transfer is never slowed down by the waiter.
    assert first_done == [pytest.approx(3.0)]


def test_waiting_time_reported_on_request(engine, io, tiny_classes):
    scheduler = OrderedNBScheduler(engine, io, node_mtbf_s=1e6)
    job_a = Job(app_class=tiny_classes[0], total_work_s=HOUR)
    job_b = Job(app_class=tiny_classes[1], total_work_s=HOUR)
    first = IORequest(job_a, IOKind.CHECKPOINT, 400.0, 0.0)
    second = IORequest(job_b, IOKind.CHECKPOINT, 100.0, 0.0)
    scheduler.submit(first)
    scheduler.submit(second)
    assert second.waiting_for(2.0) == pytest.approx(2.0)
    engine.run()
    assert second.waited == pytest.approx(4.0)
    assert second.waiting_for(100.0) == pytest.approx(4.0)

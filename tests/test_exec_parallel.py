"""Parallel execution subsystem (repro.exec).

The key property: dispatching Monte-Carlo repetitions to worker processes
or serving them from the on-disk cache never changes a single bit of any
result.  The equivalence tests below therefore compare full
:class:`DistributionSummary` dataclasses (exact float equality, not
``approx``) between the serial path and every other execution mode.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    BACKENDS,
    ParallelRunner,
    ProgressEvent,
    ResultCache,
    WasteRatioTask,
    config_digest,
)
from repro.experiments.runner import ExperimentCell, run_cell
from repro.stats.montecarlo import derive_seeds, monte_carlo


def _experiment(seed: int) -> float:
    """Module-level (hence picklable) toy experiment: a seed-keyed hash."""
    return float((seed * 2654435761) % 100_003) / 100_003.0


def _tiny_cell(tiny_platform, tiny_classes, **overrides) -> ExperimentCell:
    parameters = dict(
        platform=tiny_platform,
        workload=tiny_classes,
        strategy="least-waste",
        horizon_days=0.5,
        warmup_days=0.05,
        cooldown_days=0.05,
        num_runs=3,
        base_seed=0,
    )
    parameters.update(overrides)
    return ExperimentCell(**parameters)


# ------------------------------------------------------------- construction
def test_runner_validates_parameters(tmp_path):
    with pytest.raises(ConfigurationError):
        ParallelRunner(backend="threads")
    with pytest.raises(ConfigurationError):
        ParallelRunner(workers=0)
    with pytest.raises(ConfigurationError):
        ParallelRunner(chunk_size=0)
    assert set(BACKENDS) == {"serial", "process", "spool"}
    runner = ParallelRunner(cache_dir=tmp_path / "cache")
    assert isinstance(runner.cache, ResultCache)
    # The spool backend needs both a spool directory and a shared cache.
    with pytest.raises(ConfigurationError):
        ParallelRunner(backend="spool", cache_dir=tmp_path / "cache")
    with pytest.raises(ConfigurationError):
        ParallelRunner(backend="spool", spool_dir=tmp_path / "spool")
    with pytest.raises(ConfigurationError):
        ParallelRunner(spool_timeout_s=0.0)
    with pytest.raises(ConfigurationError):
        ParallelRunner(spool_timeout_s=-5.0)


def test_backend_registry_rejects_duplicates_and_accepts_new_backends():
    from repro.exec import ExecutionBackend, backend_names, register_backend
    from repro.exec.runner import _BACKEND_FACTORIES

    with pytest.raises(ConfigurationError):
        register_backend("serial", lambda runner: None)
    with pytest.raises(ConfigurationError):
        register_backend("", lambda runner: None)

    class EchoBackend(ExecutionBackend):
        def run(self, batch):
            return {index: float(seed % 7) for index, seed in batch.pending}

    register_backend("echo-test", EchoBackend)
    try:
        assert "echo-test" in backend_names()
        runner = ParallelRunner(backend="echo-test")
        assert runner.map_seeds(_experiment, [3, 14]) == [3.0 % 7, 14.0 % 7]
    finally:
        del _BACKEND_FACTORIES["echo-test"]


# -------------------------------------------- serial / process equivalence
@pytest.mark.parametrize("num_runs", [1, 5, 12])
@pytest.mark.parametrize("workers", [2, 4])
def test_monte_carlo_process_backend_is_bit_identical(num_runs, workers):
    serial = monte_carlo(_experiment, num_runs=num_runs, base_seed=7)
    parallel = monte_carlo(
        _experiment, num_runs=num_runs, base_seed=7, backend="process", workers=workers
    )
    assert serial == parallel  # exact dataclass equality, field by field


def test_monte_carlo_runner_argument_overrides_backend():
    runner = ParallelRunner(backend="serial")
    summary = monte_carlo(_experiment, num_runs=4, base_seed=1, runner=runner)
    assert summary == monte_carlo(_experiment, num_runs=4, base_seed=1)
    assert runner.stats.tasks_run == 4


@pytest.mark.parametrize("chunk_size", [1, 2, 5])
def test_map_seeds_chunking_preserves_seed_order(chunk_size):
    seeds = derive_seeds(3, 7)
    expected = [_experiment(seed) for seed in seeds]
    runner = ParallelRunner(backend="process", workers=2, chunk_size=chunk_size)
    assert runner.map_seeds(_experiment, seeds) == expected


def test_run_cell_process_backend_matches_serial(tiny_platform, tiny_classes):
    cell = _tiny_cell(tiny_platform, tiny_classes, num_runs=4)
    serial = run_cell(cell)
    parallel = run_cell(cell, runner=ParallelRunner(backend="process", workers=2))
    assert serial == parallel


# ------------------------------------------------------------------ caching
def test_cache_second_run_simulates_nothing(tiny_platform, tiny_classes, tmp_path):
    cell = _tiny_cell(tiny_platform, tiny_classes, num_runs=3)
    first = ParallelRunner(cache_dir=tmp_path)
    a = run_cell(cell, runner=first)
    assert first.stats.tasks_run == cell.num_runs
    assert first.stats.cache_hits == 0

    second = ParallelRunner(cache_dir=tmp_path)
    b = run_cell(cell, runner=second)
    assert a == b
    assert second.stats.tasks_run == 0  # zero simulations on the second run
    assert second.stats.cache_hits == cell.num_runs


def test_cache_growing_num_runs_only_simulates_new_seeds(tiny_platform, tiny_classes, tmp_path):
    small = _tiny_cell(tiny_platform, tiny_classes, num_runs=2)
    run_cell(small, runner=ParallelRunner(cache_dir=tmp_path))

    grown = _tiny_cell(tiny_platform, tiny_classes, num_runs=5)
    runner = ParallelRunner(cache_dir=tmp_path)
    summary = run_cell(grown, runner=runner)
    assert runner.stats.cache_hits == 2  # prefix stability pays off
    assert runner.stats.tasks_run == 3
    assert summary == run_cell(grown)  # identical to a fresh serial run


def test_cache_process_backend(tiny_platform, tiny_classes, tmp_path):
    cell = _tiny_cell(tiny_platform, tiny_classes, num_runs=4)
    warm = ParallelRunner(backend="process", workers=2, cache_dir=tmp_path)
    a = run_cell(cell, runner=warm)
    cached = ParallelRunner(backend="process", workers=2, cache_dir=tmp_path)
    b = run_cell(cell, runner=cached)
    assert a == b
    assert cached.stats.tasks_run == 0


def test_cache_distinguishes_strategies_and_configs(tiny_platform, tiny_classes, tmp_path):
    runner = ParallelRunner(cache_dir=tmp_path)
    base = _tiny_cell(tiny_platform, tiny_classes, num_runs=2)
    other_strategy = _tiny_cell(tiny_platform, tiny_classes, num_runs=2, strategy="oblivious-fixed")
    other_horizon = _tiny_cell(tiny_platform, tiny_classes, num_runs=2, horizon_days=0.6)
    run_cell(base, runner=runner)
    run_cell(other_strategy, runner=runner)
    run_cell(other_horizon, runner=runner)
    # No cross-key collisions: each cell simulated its own repetitions.
    assert runner.stats.tasks_run == 6
    assert runner.stats.cache_hits == 0
    digests = {config_digest(c.config(0)) for c in (base, other_strategy, other_horizon)}
    assert len(digests) == 3


def test_config_digest_excludes_seed_and_trace(tiny_config):
    config = tiny_config()
    assert config_digest(config) == config_digest(config.with_seed(999))
    import dataclasses

    traced = dataclasses.replace(config, collect_trace=True)
    assert config_digest(config) == config_digest(traced)
    assert config_digest(config) != config_digest(config.with_strategy("ordered-daly"))


def test_result_cache_treats_malformed_entries_as_misses(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache._entry_path("e" * 64, "least-waste", 1)
    path.parent.mkdir(parents=True)
    for malformed in ("null", "{}", '{"value": "not a float"}', "{broken"):
        path.write_text(malformed)
        assert cache.get("e" * 64, "least-waste", 1) is None
    assert cache.misses == 4 and cache.hits == 0


def test_result_cache_treats_nonfinite_and_truncated_entries_as_misses(tmp_path):
    """Corruption that still parses as JSON must not escape the cache:
    ``Infinity``/``NaN`` are valid JSON extensions but never valid results,
    and a torn write can truncate mid-document or leave raw bytes."""
    cache = ResultCache(tmp_path)
    path = cache._entry_path("f" * 64, "least-waste", 2)
    path.parent.mkdir(parents=True)
    corruptions = [
        '{"value": Infinity}',
        '{"value": -Infinity}',
        '{"value": NaN}',
        '{"value": 0.12',  # truncated write
    ]
    for corrupt in corruptions:
        path.write_text(corrupt)
        assert cache.get("f" * 64, "least-waste", 2) is None
    path.write_bytes(b"\x00\xffgarbage")  # binary garbage
    assert cache.get("f" * 64, "least-waste", 2) is None
    assert cache.misses == len(corruptions) + 1 and cache.hits == 0
    # put() rewrites the corrupt entry in place; subsequent reads hit.
    cache.put("f" * 64, "least-waste", 2, 0.25)
    assert cache.get("f" * 64, "least-waste", 2) == 0.25


def test_runner_resimulates_and_rewrites_corrupt_entries(tiny_platform, tiny_classes, tmp_path):
    cell = _tiny_cell(tiny_platform, tiny_classes, num_runs=2)
    reference = run_cell(cell, runner=ParallelRunner(cache_dir=tmp_path))
    entry = sorted(tmp_path.glob("*/*/*/*.json"))[0]
    entry.write_text('{"value": NaN}')

    runner = ParallelRunner(cache_dir=tmp_path)
    assert run_cell(cell, runner=runner) == reference
    assert runner.stats.tasks_run == 1  # only the corrupt seed re-simulated
    assert runner.stats.cache_hits == 1

    fresh = ParallelRunner(cache_dir=tmp_path)
    assert run_cell(cell, runner=fresh) == reference
    assert fresh.stats.tasks_run == 0  # the rewrite stuck


def test_process_pool_is_reused_across_batches():
    with ParallelRunner(backend="process", workers=2) as runner:
        runner.map_seeds(_experiment, derive_seeds(0, 4))
        backend = runner._backend_impl
        first_pool = backend._pool
        runner.map_seeds(_experiment, derive_seeds(1, 4))
        assert first_pool is not None and backend._pool is first_pool
        assert runner._backend_impl is backend  # backend object reused too
    assert runner._backend_impl is None  # context exit shuts the backend down
    assert backend._pool is None
    runner.close()  # idempotent


def test_cache_probe_is_counter_neutral(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("a" * 64, "least-waste", 1, 0.5)
    assert cache.probe("a" * 64, "least-waste", 1) == 0.5
    assert cache.probe("a" * 64, "least-waste", 2) is None
    assert cache.hits == 0 and cache.misses == 0  # probes left no trace
    assert cache.get("a" * 64, "least-waste", 1) == 0.5
    assert cache.hits == 1  # real lookups still count


def test_cache_stats_reports_entries_bytes_and_versions(tmp_path):
    from repro.exec import DIGEST_VERSION

    cache = ResultCache(tmp_path)
    assert cache.stats().entries == 0
    cache.put("a" * 64, "least-waste", 1, 0.25)
    cache.put("a" * 64, "least-waste", 2, 0.5)
    # A pre-PR-3 entry: no "version" field recorded.
    legacy = cache._entry_path("b" * 64, "ordered-daly", 3)
    legacy.parent.mkdir(parents=True)
    legacy.write_text('{"value": 0.75}')
    stats = cache.stats()
    assert stats.entries == 3
    assert stats.total_bytes > 0
    assert stats.versions == {DIGEST_VERSION: 2, "unversioned": 1}


def test_cache_stats_dedupes_rewritten_entries_and_sidecars_by_path(tmp_path):
    """Regression: on a resumed campaign a corrupt-then-rewritten entry (or
    trace sidecar) appends a *second* index-journal record for the same
    path; stats must fold records by path (latest wins) instead of counting
    the file twice."""
    cache = ResultCache(tmp_path)
    digest = "a" * 64
    cache.put(digest, "least-waste", 1, 0.25)
    cache.put_trace(digest, "least-waste", 1, {"categories": []})
    # Torn write corrupts the sidecar; the resumed campaign rewrites it.
    cache.trace_path(digest, "least-waste", 1).write_text("{broken")
    cache.put_trace(digest, "least-waste", 1, {"categories": []})
    stats = cache.stats()
    assert stats.trace_sidecars == 1  # not 2
    assert stats.trace_bytes == cache.trace_path(digest, "least-waste", 1).stat().st_size
    # Scalar entries dedupe the same way on rewrite.
    cache.put(digest, "least-waste", 1, 0.25)
    after = cache.stats()
    assert after.entries == 1
    assert after.total_bytes == stats.total_bytes


def test_cache_gc_prunes_by_version_and_age(tmp_path):
    import os
    import time

    cache = ResultCache(tmp_path)
    cache.put("a" * 64, "least-waste", 1, 0.25)
    legacy = cache._entry_path("b" * 64, "ordered-daly", 3)
    legacy.parent.mkdir(parents=True)
    legacy.write_text('{"value": 0.75}')

    # No criteria: a no-op scan.
    report = cache.gc()
    assert report.scanned == 2 and report.removed == 0

    # Dry run: reports the legacy entry, removes nothing.
    report = cache.gc(digest_version="unversioned", dry_run=True)
    assert report.removed == 1 and report.dry_run
    assert len(cache) == 2

    report = cache.gc(digest_version="unversioned")
    assert report.removed == 1 and report.reclaimed_bytes > 0
    assert len(cache) == 1
    assert not legacy.parent.exists()  # empty directories are cleaned up

    # Age-based pruning: backdate the survivor, then gc with a 1h horizon.
    survivor = cache._entry_path("a" * 64, "least-waste", 1)
    past = time.time() - 7200.0
    os.utime(survivor, (past, past))
    assert cache.gc(older_than_s=3600.0).removed == 1
    assert len(cache) == 0
    # The cache still works after a full prune.
    cache.put("a" * 64, "least-waste", 1, 0.25)
    assert cache.get("a" * 64, "least-waste", 1) == 0.25


def test_result_cache_round_trip_is_exact(tmp_path):
    cache = ResultCache(tmp_path)
    value = 0.1234567890123456789  # exercises shortest-exact float repr
    cache.put("d" * 64, "least-waste", 12345, value)
    assert cache.get("d" * 64, "least-waste", 12345) == value
    assert cache.get("d" * 64, "least-waste", 99999) is None
    assert cache.hits == 1 and cache.misses == 1 and cache.writes == 1
    assert len(cache) == 1


# ------------------------------------------------------------ progress hooks
def test_progress_events_cover_all_seeds(tiny_platform, tiny_classes, tmp_path):
    events: list[ProgressEvent] = []
    cell = _tiny_cell(tiny_platform, tiny_classes, num_runs=3)
    runner = ParallelRunner(cache_dir=tmp_path, progress=events.append)
    run_cell(cell, runner=runner)
    assert [e.completed for e in events] == [1, 2, 3]
    assert all(e.total == 3 and e.cached == 0 for e in events)
    assert events[0].label == "least-waste"

    cached_events: list[ProgressEvent] = []
    cached_runner = ParallelRunner(cache_dir=tmp_path, progress=cached_events.append)
    run_cell(cell, runner=cached_runner)
    assert cached_events[-1].completed == 3
    assert cached_events[-1].cached == 3


def test_progress_events_process_backend():
    events: list[ProgressEvent] = []
    runner = ParallelRunner(
        backend="process", workers=2, chunk_size=2, progress=events.append
    )
    runner.map_seeds(_experiment, derive_seeds(0, 6), label="toy")
    assert events[-1].completed == 6
    assert sorted(e.completed for e in events)[-1] == 6
    assert all(e.label == "toy" for e in events)


# ------------------------------------------------- spool-backend equivalence
def test_run_config_spool_backend_is_bit_identical(tiny_config, tmp_path, spool_workers):
    config = tiny_config(horizon_s=0.25 * 86400.0)
    seeds = derive_seeds(0, 5)
    serial = ParallelRunner().run_config(config, seeds)
    runner = ParallelRunner(
        backend="spool",
        spool_dir=tmp_path / "spool",
        cache_dir=tmp_path / "cache",
        spool_poll_s=0.01,
        spool_timeout_s=120.0,
    )
    with spool_workers(tmp_path / "spool", tmp_path / "cache", count=2):
        spooled = runner.run_config(config, seeds)
    assert spooled == serial  # exact float equality, element by element
    assert runner.stats.tasks_run == 0  # the submitter simulated nothing
    assert runner.stats.remote_seeds == 5

    # A re-run against the now-warm cache never touches the spool.
    rerun = ParallelRunner(
        backend="spool",
        spool_dir=tmp_path / "spool",
        cache_dir=tmp_path / "cache",
        spool_timeout_s=1.0,
    )
    assert rerun.run_config(config, seeds) == serial
    assert rerun.stats.cache_hits == 5
    assert rerun.stats.remote_seeds == 0


def test_spool_backend_requires_content_addressed_tasks(tmp_path):
    runner = ParallelRunner(
        backend="spool", spool_dir=tmp_path / "spool", cache_dir=tmp_path / "cache"
    )
    with pytest.raises(ConfigurationError):
        runner.map_seeds(_experiment, [1, 2])  # no cache_key -> no content address


def test_spool_backend_propagates_remote_failure(tmp_path, spool_workers):
    from repro.errors import SpoolError

    runner = ParallelRunner(
        backend="spool",
        spool_dir=tmp_path / "spool",
        cache_dir=tmp_path / "cache",
        spool_poll_s=0.01,
        spool_timeout_s=60.0,
    )
    with spool_workers(tmp_path / "spool", tmp_path / "cache"):
        with pytest.raises(SpoolError, match="boom"):
            runner.map_seeds(_explosive, [1, 2], cache_key=("a" * 64, "least-waste"))


def _explosive(seed: int) -> float:
    """Module-level (picklable) task that always fails on the worker."""
    raise ValueError(f"boom on seed {seed}")


# ------------------------------------------------------------ waste task
def test_waste_ratio_task_matches_direct_simulation(tiny_config):
    from repro.simulation.simulator import Simulation

    config = tiny_config()
    task = WasteRatioTask(config)
    seed = derive_seeds(0, 1)[0]
    assert task(seed) == Simulation(config.with_seed(seed)).run().waste_ratio


def test_atomic_write_text_cleans_up_on_any_exception(tmp_path, monkeypatch):
    """Regression: a non-OSError escaping mid-write (e.g. KeyboardInterrupt)
    leaked the temp file; cleanup must run for every ``BaseException``."""
    import tempfile as _tempfile

    from repro.exec.cache import atomic_write_text

    class _ExplodingHandle:
        """Proxy whose write raises after the temp file exists on disk."""

        def __init__(self, handle, exc):
            self._handle = handle
            self._exc = exc
            self.name = handle.name

        def write(self, text):
            raise self._exc

        def __enter__(self):
            self._handle.__enter__()
            return self

        def __exit__(self, *exc_info):
            return self._handle.__exit__(*exc_info)

    for exc in (KeyboardInterrupt(), OSError("disk full"), ValueError("boom")):
        real = _tempfile.NamedTemporaryFile

        def exploding(*args, _exc=exc, **kwargs):
            return _ExplodingHandle(real(*args, **kwargs), _exc)

        monkeypatch.setattr("repro.exec.cache.tempfile.NamedTemporaryFile", exploding)
        with pytest.raises(type(exc)):
            atomic_write_text(tmp_path / "target.json", "payload")
        monkeypatch.setattr("repro.exec.cache.tempfile.NamedTemporaryFile", real)
        assert not (tmp_path / "target.json").exists()
        assert list(tmp_path.glob("*.tmp")) == []  # no leaked temp files

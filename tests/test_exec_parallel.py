"""Parallel execution subsystem (repro.exec).

The key property: dispatching Monte-Carlo repetitions to worker processes
or serving them from the on-disk cache never changes a single bit of any
result.  The equivalence tests below therefore compare full
:class:`DistributionSummary` dataclasses (exact float equality, not
``approx``) between the serial path and every other execution mode.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    BACKENDS,
    ParallelRunner,
    ProgressEvent,
    ResultCache,
    WasteRatioTask,
    config_digest,
)
from repro.experiments.runner import ExperimentCell, run_cell
from repro.stats.montecarlo import derive_seeds, monte_carlo


def _experiment(seed: int) -> float:
    """Module-level (hence picklable) toy experiment: a seed-keyed hash."""
    return float((seed * 2654435761) % 100_003) / 100_003.0


def _tiny_cell(tiny_platform, tiny_classes, **overrides) -> ExperimentCell:
    parameters = dict(
        platform=tiny_platform,
        workload=tiny_classes,
        strategy="least-waste",
        horizon_days=0.5,
        warmup_days=0.05,
        cooldown_days=0.05,
        num_runs=3,
        base_seed=0,
    )
    parameters.update(overrides)
    return ExperimentCell(**parameters)


# ------------------------------------------------------------- construction
def test_runner_validates_parameters(tmp_path):
    with pytest.raises(ConfigurationError):
        ParallelRunner(backend="threads")
    with pytest.raises(ConfigurationError):
        ParallelRunner(workers=0)
    with pytest.raises(ConfigurationError):
        ParallelRunner(chunk_size=0)
    assert set(BACKENDS) == {"serial", "process"}
    runner = ParallelRunner(cache_dir=tmp_path / "cache")
    assert isinstance(runner.cache, ResultCache)


# -------------------------------------------- serial / process equivalence
@pytest.mark.parametrize("num_runs", [1, 5, 12])
@pytest.mark.parametrize("workers", [2, 4])
def test_monte_carlo_process_backend_is_bit_identical(num_runs, workers):
    serial = monte_carlo(_experiment, num_runs=num_runs, base_seed=7)
    parallel = monte_carlo(
        _experiment, num_runs=num_runs, base_seed=7, backend="process", workers=workers
    )
    assert serial == parallel  # exact dataclass equality, field by field


def test_monte_carlo_runner_argument_overrides_backend():
    runner = ParallelRunner(backend="serial")
    summary = monte_carlo(_experiment, num_runs=4, base_seed=1, runner=runner)
    assert summary == monte_carlo(_experiment, num_runs=4, base_seed=1)
    assert runner.stats.tasks_run == 4


@pytest.mark.parametrize("chunk_size", [1, 2, 5])
def test_map_seeds_chunking_preserves_seed_order(chunk_size):
    seeds = derive_seeds(3, 7)
    expected = [_experiment(seed) for seed in seeds]
    runner = ParallelRunner(backend="process", workers=2, chunk_size=chunk_size)
    assert runner.map_seeds(_experiment, seeds) == expected


def test_run_cell_process_backend_matches_serial(tiny_platform, tiny_classes):
    cell = _tiny_cell(tiny_platform, tiny_classes, num_runs=4)
    serial = run_cell(cell)
    parallel = run_cell(cell, runner=ParallelRunner(backend="process", workers=2))
    assert serial == parallel


# ------------------------------------------------------------------ caching
def test_cache_second_run_simulates_nothing(tiny_platform, tiny_classes, tmp_path):
    cell = _tiny_cell(tiny_platform, tiny_classes, num_runs=3)
    first = ParallelRunner(cache_dir=tmp_path)
    a = run_cell(cell, runner=first)
    assert first.stats.tasks_run == cell.num_runs
    assert first.stats.cache_hits == 0

    second = ParallelRunner(cache_dir=tmp_path)
    b = run_cell(cell, runner=second)
    assert a == b
    assert second.stats.tasks_run == 0  # zero simulations on the second run
    assert second.stats.cache_hits == cell.num_runs


def test_cache_growing_num_runs_only_simulates_new_seeds(tiny_platform, tiny_classes, tmp_path):
    small = _tiny_cell(tiny_platform, tiny_classes, num_runs=2)
    run_cell(small, runner=ParallelRunner(cache_dir=tmp_path))

    grown = _tiny_cell(tiny_platform, tiny_classes, num_runs=5)
    runner = ParallelRunner(cache_dir=tmp_path)
    summary = run_cell(grown, runner=runner)
    assert runner.stats.cache_hits == 2  # prefix stability pays off
    assert runner.stats.tasks_run == 3
    assert summary == run_cell(grown)  # identical to a fresh serial run


def test_cache_process_backend(tiny_platform, tiny_classes, tmp_path):
    cell = _tiny_cell(tiny_platform, tiny_classes, num_runs=4)
    warm = ParallelRunner(backend="process", workers=2, cache_dir=tmp_path)
    a = run_cell(cell, runner=warm)
    cached = ParallelRunner(backend="process", workers=2, cache_dir=tmp_path)
    b = run_cell(cell, runner=cached)
    assert a == b
    assert cached.stats.tasks_run == 0


def test_cache_distinguishes_strategies_and_configs(tiny_platform, tiny_classes, tmp_path):
    runner = ParallelRunner(cache_dir=tmp_path)
    base = _tiny_cell(tiny_platform, tiny_classes, num_runs=2)
    other_strategy = _tiny_cell(tiny_platform, tiny_classes, num_runs=2, strategy="oblivious-fixed")
    other_horizon = _tiny_cell(tiny_platform, tiny_classes, num_runs=2, horizon_days=0.6)
    run_cell(base, runner=runner)
    run_cell(other_strategy, runner=runner)
    run_cell(other_horizon, runner=runner)
    # No cross-key collisions: each cell simulated its own repetitions.
    assert runner.stats.tasks_run == 6
    assert runner.stats.cache_hits == 0
    digests = {config_digest(c.config(0)) for c in (base, other_strategy, other_horizon)}
    assert len(digests) == 3


def test_config_digest_excludes_seed_and_trace(tiny_config):
    config = tiny_config()
    assert config_digest(config) == config_digest(config.with_seed(999))
    import dataclasses

    traced = dataclasses.replace(config, collect_trace=True)
    assert config_digest(config) == config_digest(traced)
    assert config_digest(config) != config_digest(config.with_strategy("ordered-daly"))


def test_result_cache_treats_malformed_entries_as_misses(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache._entry_path("e" * 64, "least-waste", 1)
    path.parent.mkdir(parents=True)
    for malformed in ("null", "{}", '{"value": "not a float"}', "{broken"):
        path.write_text(malformed)
        assert cache.get("e" * 64, "least-waste", 1) is None
    assert cache.misses == 4 and cache.hits == 0


def test_result_cache_treats_nonfinite_and_truncated_entries_as_misses(tmp_path):
    """Corruption that still parses as JSON must not escape the cache:
    ``Infinity``/``NaN`` are valid JSON extensions but never valid results,
    and a torn write can truncate mid-document or leave raw bytes."""
    cache = ResultCache(tmp_path)
    path = cache._entry_path("f" * 64, "least-waste", 2)
    path.parent.mkdir(parents=True)
    corruptions = [
        '{"value": Infinity}',
        '{"value": -Infinity}',
        '{"value": NaN}',
        '{"value": 0.12',  # truncated write
    ]
    for corrupt in corruptions:
        path.write_text(corrupt)
        assert cache.get("f" * 64, "least-waste", 2) is None
    path.write_bytes(b"\x00\xffgarbage")  # binary garbage
    assert cache.get("f" * 64, "least-waste", 2) is None
    assert cache.misses == len(corruptions) + 1 and cache.hits == 0
    # put() rewrites the corrupt entry in place; subsequent reads hit.
    cache.put("f" * 64, "least-waste", 2, 0.25)
    assert cache.get("f" * 64, "least-waste", 2) == 0.25


def test_runner_resimulates_and_rewrites_corrupt_entries(tiny_platform, tiny_classes, tmp_path):
    cell = _tiny_cell(tiny_platform, tiny_classes, num_runs=2)
    reference = run_cell(cell, runner=ParallelRunner(cache_dir=tmp_path))
    entry = sorted(tmp_path.glob("*/*/*/*.json"))[0]
    entry.write_text('{"value": NaN}')

    runner = ParallelRunner(cache_dir=tmp_path)
    assert run_cell(cell, runner=runner) == reference
    assert runner.stats.tasks_run == 1  # only the corrupt seed re-simulated
    assert runner.stats.cache_hits == 1

    fresh = ParallelRunner(cache_dir=tmp_path)
    assert run_cell(cell, runner=fresh) == reference
    assert fresh.stats.tasks_run == 0  # the rewrite stuck


def test_process_pool_is_reused_across_batches():
    with ParallelRunner(backend="process", workers=2) as runner:
        runner.map_seeds(_experiment, derive_seeds(0, 4))
        first_pool = runner._pool
        runner.map_seeds(_experiment, derive_seeds(1, 4))
        assert first_pool is not None and runner._pool is first_pool
    assert runner._pool is None  # context exit shuts the pool down
    runner.close()  # idempotent


def test_result_cache_round_trip_is_exact(tmp_path):
    cache = ResultCache(tmp_path)
    value = 0.1234567890123456789  # exercises shortest-exact float repr
    cache.put("d" * 64, "least-waste", 12345, value)
    assert cache.get("d" * 64, "least-waste", 12345) == value
    assert cache.get("d" * 64, "least-waste", 99999) is None
    assert cache.hits == 1 and cache.misses == 1 and cache.writes == 1
    assert len(cache) == 1


# ------------------------------------------------------------ progress hooks
def test_progress_events_cover_all_seeds(tiny_platform, tiny_classes, tmp_path):
    events: list[ProgressEvent] = []
    cell = _tiny_cell(tiny_platform, tiny_classes, num_runs=3)
    runner = ParallelRunner(cache_dir=tmp_path, progress=events.append)
    run_cell(cell, runner=runner)
    assert [e.completed for e in events] == [1, 2, 3]
    assert all(e.total == 3 and e.cached == 0 for e in events)
    assert events[0].label == "least-waste"

    cached_events: list[ProgressEvent] = []
    cached_runner = ParallelRunner(cache_dir=tmp_path, progress=cached_events.append)
    run_cell(cell, runner=cached_runner)
    assert cached_events[-1].completed == 3
    assert cached_events[-1].cached == 3


def test_progress_events_process_backend():
    events: list[ProgressEvent] = []
    runner = ParallelRunner(
        backend="process", workers=2, chunk_size=2, progress=events.append
    )
    runner.map_seeds(_experiment, derive_seeds(0, 6), label="toy")
    assert events[-1].completed == 6
    assert sorted(e.completed for e in events)[-1] == 6
    assert all(e.label == "toy" for e in events)


# ------------------------------------------------------------ waste task
def test_waste_ratio_task_matches_direct_simulation(tiny_config):
    from repro.simulation.simulator import Simulation

    config = tiny_config()
    task = WasteRatioTask(config)
    seed = derive_seeds(0, 1)[0]
    assert task(seed) == Simulation(config.with_seed(seed)).run().waste_ratio

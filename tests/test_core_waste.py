"""Waste models, Eq. (3) and (4)/(7) (repro.core.waste)."""

from __future__ import annotations

import pytest

from repro.core.daly import young_period
from repro.core.waste import job_waste, optimal_job_waste, platform_waste
from repro.errors import AnalysisError


def test_job_waste_matches_hand_computation():
    # C=100s, P=3600s, R=100s, q=10, mu_ind=1e6 s.
    expected = 100.0 / 3600.0 + (10.0 / 1e6) * (3600.0 / 2.0 + 100.0)
    assert job_waste(3600.0, 100.0, 100.0, 10.0, 1e6) == pytest.approx(expected)


def test_job_waste_minimized_at_daly_period():
    c, r, q, mu_ind = 200.0, 200.0, 16.0, 5e6
    p_opt = young_period(c, mu_ind / q)
    w_opt = job_waste(p_opt, c, r, q, mu_ind)
    for factor in (0.25, 0.5, 0.8, 1.25, 2.0, 4.0):
        assert job_waste(p_opt * factor, c, r, q, mu_ind) >= w_opt - 1e-12


def test_optimal_job_waste_returns_daly_period_and_matching_waste():
    c, r, q, mu_ind = 150.0, 150.0, 8.0, 2e6
    period, waste = optimal_job_waste(c, r, q, mu_ind)
    assert period == pytest.approx(young_period(c, mu_ind / q))
    assert waste == pytest.approx(job_waste(period, c, r, q, mu_ind))


def test_platform_waste_is_node_weighted_average():
    # Two classes, equal waste -> platform waste equals that value scaled by
    # the fraction of the platform they occupy.
    w = platform_waste(
        periods=[3600.0, 3600.0],
        checkpoint_times=[100.0, 100.0],
        recovery_times=[100.0, 100.0],
        qs=[10.0, 10.0],
        counts=[5.0, 5.0],
        total_nodes=100.0,
        mu_ind=1e6,
    )
    single = job_waste(3600.0, 100.0, 100.0, 10.0, 1e6)
    assert w == pytest.approx(single)  # 10 jobs x 10 nodes fill all 100 nodes


def test_platform_waste_scales_with_occupancy():
    args = dict(
        periods=[3600.0],
        checkpoint_times=[100.0],
        recovery_times=[100.0],
        qs=[10.0],
        mu_ind=1e6,
    )
    full = platform_waste(counts=[10.0], total_nodes=100.0, **args)
    half = platform_waste(counts=[5.0], total_nodes=100.0, **args)
    assert half == pytest.approx(0.5 * full)


def test_platform_waste_input_validation():
    with pytest.raises(AnalysisError):
        platform_waste([3600.0], [100.0], [100.0], [10.0], [1.0, 2.0], 100.0, 1e6)
    with pytest.raises(AnalysisError):
        platform_waste([], [], [], [], [], 100.0, 1e6)
    with pytest.raises(AnalysisError):
        platform_waste([0.0], [100.0], [100.0], [10.0], [1.0], 100.0, 1e6)
    with pytest.raises(AnalysisError):
        platform_waste([3600.0], [100.0], [100.0], [10.0], [1.0], 0.0, 1e6)


def test_job_waste_input_validation():
    with pytest.raises(AnalysisError):
        job_waste(0.0, 100.0, 100.0, 10.0, 1e6)
    with pytest.raises(AnalysisError):
        job_waste(3600.0, -1.0, 100.0, 10.0, 1e6)
    with pytest.raises(AnalysisError):
        job_waste(3600.0, 100.0, 100.0, 0.0, 1e6)
    with pytest.raises(AnalysisError):
        optimal_job_waste(0.0, 100.0, 10.0, 1e6)

"""Scenario specification (repro.scenarios.spec)."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.platform.failures import FailureModel
from repro.scenarios.spec import Scenario
from repro.units import DAY, GB, YEAR


@pytest.fixture
def scenario(tiny_platform, tiny_classes) -> Scenario:
    return Scenario(
        name="base",
        platform=tiny_platform,
        workload=tiny_classes,
        strategies=("ordered-daly", "least-waste"),
        num_runs=2,
        horizon_days=0.5,
        warmup_days=0.05,
        cooldown_days=0.05,
    )


# ------------------------------------------------------------- validation
def test_scenario_validates_inputs(tiny_platform, tiny_classes):
    with pytest.raises(ConfigurationError):
        Scenario(name="", platform=tiny_platform, workload=tiny_classes)
    with pytest.raises(ConfigurationError):
        Scenario(name="x", platform=tiny_platform, workload=())
    with pytest.raises(ConfigurationError):
        Scenario(name="x", platform=tiny_platform, workload=tiny_classes, strategies=())
    with pytest.raises(ConfigurationError):
        Scenario(
            name="x", platform=tiny_platform, workload=tiny_classes, strategies=("bogus",)
        )
    with pytest.raises(ConfigurationError):
        Scenario(name="x", platform=tiny_platform, workload=tiny_classes, num_runs=0)
    with pytest.raises(ConfigurationError):
        Scenario(name="x", platform=tiny_platform, workload=tiny_classes, horizon_days=0.0)


def test_scenario_defaults_to_all_strategies(tiny_platform, tiny_classes):
    from repro.iosched.registry import STRATEGIES

    scenario = Scenario(name="x", platform=tiny_platform, workload=tiny_classes)
    assert scenario.strategies == STRATEGIES
    assert scenario.failure_model == FailureModel()


# ------------------------------------------------------------- configs
def test_config_carries_every_scenario_knob(scenario):
    config = scenario.config("least-waste")
    assert config.platform == scenario.platform
    assert config.classes == scenario.workload
    assert config.strategy == "least-waste"
    assert config.horizon_s == scenario.horizon_days * DAY
    assert config.seed == scenario.base_seed
    # Default exponential model normalises to None inside the config.
    assert config.failure_model is None


def test_config_rejects_unselected_strategy(scenario):
    with pytest.raises(ConfigurationError):
        scenario.config("oblivious-fixed")


def test_configs_cover_strategies_in_order(scenario):
    configs = scenario.configs()
    assert [c.strategy for c in configs] == list(scenario.strategies)


def test_weibull_scenario_reaches_the_config(scenario):
    shaped = scenario.apply(failure_model=FailureModel(kind="weibull", shape=0.7))
    config = shaped.config("least-waste")
    assert config.failure_model == FailureModel(kind="weibull", shape=0.7)


# ------------------------------------------------------------- overrides
def test_apply_platform_shorthands(scenario):
    derived = scenario.apply(
        "derived", bandwidth_gbs=4.0, node_mtbf_years=1.0, num_nodes=8
    )
    assert derived.name == "derived"
    assert derived.platform.io_bandwidth_bytes_per_s == 4.0 * GB
    assert derived.platform.node_mtbf_s == 1.0 * YEAR
    assert derived.platform.num_nodes == 8
    # The original is untouched (scenarios are immutable values).
    assert scenario.platform.num_nodes == 16


def test_apply_direct_field_overrides(scenario):
    derived = scenario.apply(num_runs=7, strategies=("least-waste",), horizon_days=1.0)
    assert derived.num_runs == 7
    assert derived.strategies == ("least-waste",)
    assert derived.horizon_days == 1.0
    assert derived.name == scenario.name  # name only changes when given


def test_apply_workload_callable_sees_final_platform(scenario):
    seen: list[int] = []

    def rebuild(platform):
        seen.append(platform.num_nodes)
        return scenario.workload

    scenario.apply(num_nodes=8, workload=rebuild)
    assert seen == [8]


def test_apply_rejects_unknown_override(scenario):
    with pytest.raises(ConfigurationError) as excinfo:
        scenario.apply(bandwith_gbs=4.0)  # typo
    assert "bandwith_gbs" in str(excinfo.value)
    assert "bandwidth_gbs" in str(excinfo.value)  # valid keys are listed


def test_apply_accepts_name_as_keyword_override(scenario):
    """``name`` may arrive through an axis-point override dict; giving it
    both ways is ambiguous and rejected."""
    assert scenario.apply(name="kw").name == "kw"
    with pytest.raises(ConfigurationError):
        scenario.apply("positional", name="kw")


def test_apply_rejects_platform_replacement_mixed_with_shorthands(scenario, tiny_platform):
    """A full 'platform' override would silently swallow shorthand knobs
    applied in the same call, so the combination is an error."""
    with pytest.raises(ConfigurationError) as excinfo:
        scenario.apply(platform=tiny_platform, bandwidth_gbs=4.0)
    assert "bandwidth_gbs" in str(excinfo.value)
    # Each alone is fine.
    assert scenario.apply(platform=tiny_platform).platform == tiny_platform
    assert scenario.apply(bandwidth_gbs=4.0).platform.io_bandwidth_bytes_per_s == 4.0 * GB


# ------------------------------------------------------------- ergonomics
def test_scenario_is_picklable_and_hashable(scenario):
    assert pickle.loads(pickle.dumps(scenario)) == scenario
    assert hash(scenario) == hash(scenario.apply())


def test_describe_mentions_the_key_facts(scenario):
    text = scenario.describe()
    assert "base" in text
    assert "TestBox" in text
    assert "exponential" in text

"""Monte-Carlo statistics (repro.stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.stats.montecarlo import derive_seeds, monte_carlo
from repro.stats.summary import DistributionSummary, summarize


# ----------------------------------------------------------------- summaries
def test_summarize_basic_statistics():
    summary = summarize(range(1, 101))
    assert summary.n == 100
    assert summary.mean == pytest.approx(50.5)
    assert summary.minimum == 1.0
    assert summary.maximum == 100.0
    assert summary.median == pytest.approx(50.5)
    assert summary.quartile1 < summary.median < summary.quartile3
    assert summary.decile1 < summary.quartile1
    assert summary.decile9 > summary.quartile3


def test_summarize_constant_sample():
    summary = summarize([3.0] * 10)
    assert summary.mean == 3.0
    assert summary.std == 0.0
    assert summary.decile1 == summary.decile9 == 3.0


def test_summarize_mean_clamped_into_sample_range():
    # Pairwise-summation rounding can push np.mean a few ULPs past the
    # extrema for pathological values; summarize must clamp it back.
    value = 5.83321493915412e-210
    summary = summarize([value] * 3)
    assert summary.minimum <= summary.mean <= summary.maximum
    assert summary.mean == value


def test_summarize_rejects_bad_input():
    with pytest.raises(AnalysisError):
        summarize([])
    with pytest.raises(AnalysisError):
        summarize([1.0, float("nan")])


def test_summary_as_dict_and_format():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    data = summary.as_dict()
    assert data["n"] == 4.0
    assert data["mean"] == pytest.approx(2.5)
    text = summary.format()
    assert "2.500" in text
    assert "[" in text and "]" in text


def test_percentile_ordering_invariant():
    rng = np.random.default_rng(0)
    summary = summarize(rng.normal(size=500))
    ordered = [
        summary.minimum,
        summary.decile1,
        summary.quartile1,
        summary.median,
        summary.quartile3,
        summary.decile9,
        summary.maximum,
    ]
    assert ordered == sorted(ordered)


# --------------------------------------------------------------- monte carlo
def test_derive_seeds_is_stable_and_prefix_consistent():
    short = derive_seeds(42, 3)
    long = derive_seeds(42, 6)
    assert long[:3] == short
    assert len(set(long)) == 6
    assert derive_seeds(42, 3) == short
    assert derive_seeds(43, 3) != short


def test_derive_seeds_requires_positive_runs():
    with pytest.raises(AnalysisError):
        derive_seeds(0, 0)


def test_monte_carlo_collects_one_value_per_seed():
    seen: list[int] = []

    def experiment(seed: int) -> float:
        seen.append(seed)
        return float(seed % 7)

    summary = monte_carlo(experiment, num_runs=5, base_seed=1)
    assert summary.n == 5
    assert len(seen) == 5
    assert len(set(seen)) == 5


def test_monte_carlo_is_reproducible():
    experiment = lambda seed: float((seed * 2654435761) % 1000)  # noqa: E731
    a = monte_carlo(experiment, num_runs=4, base_seed=9)
    b = monte_carlo(experiment, num_runs=4, base_seed=9)
    assert a == b


def test_monte_carlo_custom_reduce():
    def reduce_to_max(values):
        return summarize([max(values)])

    summary = monte_carlo(lambda seed: float(seed % 10), num_runs=8, base_seed=2, reduce=reduce_to_max)
    assert summary.n == 1

"""CLI surface of the distributed subsystem: ``worker``, ``cache``,
``campaign --backend spool`` and ``campaign --file``, plus the clean-exit
behaviour of :func:`repro.cli.main`."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.distributed import WorkSpool


def test_parser_knows_the_new_subcommands():
    parser = build_parser()
    args = parser.parse_args(["worker", "--spool", "s", "--cache-dir", "c", "--drain"])
    assert args.command == "worker" and args.drain
    args = parser.parse_args(["cache", "stats", "--cache-dir", "c"])
    assert args.command == "cache" and args.cache_command == "stats"
    args = parser.parse_args(
        ["cache", "gc", "--cache-dir", "c", "--older-than", "30", "--dry-run"]
    )
    assert args.cache_command == "gc" and args.older_than == 30.0 and args.dry_run
    args = parser.parse_args(
        ["campaign", "--backend", "spool", "--spool", "dir", "--cache-dir", "c"]
    )
    assert args.backend == "spool" and args.spool == "dir"


def test_worker_status_reports_counts(tmp_path, capsys):
    WorkSpool(tmp_path / "spool")  # an existing spool reports its counts
    assert main(["worker", "--spool", str(tmp_path / "spool"), "--status"]) == 0
    assert "0 pending, 0 claimed, 0 done, 0 failed" in capsys.readouterr().out
    # ...but --status on a nonexistent path must error, not create a spool.
    assert main(["worker", "--spool", str(tmp_path / "typo"), "--status"]) == 2
    assert not (tmp_path / "typo").exists()


def test_worker_requires_cache_dir(tmp_path):
    # Misconfiguration follows the documented contract: exit 2, not 1.
    assert main(["worker", "--spool", str(tmp_path / "spool")]) == 2


def test_worker_drains_spool_and_campaign_resolves_from_cache(tmp_path, capsys):
    """Submitter-less choreography: spool the smoke campaign, drain it with a
    CLI worker, then re-run the campaign and watch it resolve purely from the
    shared cache — 0 local simulations."""
    spool_dir, cache_dir = str(tmp_path / "spool"), str(tmp_path / "cache")
    common = ["--num-runs", "1", "--horizon-days", "0.25", "--strategies", "least-waste"]

    # A drain-mode worker started concurrently is exercised in the
    # equivalence tests; here the CLI pieces run sequentially, so give the
    # submitter a pre-drained spool by running serial first (fills cache).
    assert main(["campaign", "--preset", "smoke", *common, "--cache-dir", cache_dir]) == 0
    capsys.readouterr()

    # Spool-backend re-run: everything is a cache hit, nothing is spooled.
    assert (
        main(
            ["campaign", "--preset", "smoke", *common, "--backend", "spool",
             "--spool", spool_dir, "--cache-dir", cache_dir, "--spool-timeout", "5"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert ", 0 simulation(s)" in out
    assert WorkSpool(spool_dir).status().drained

    # And a drain-mode CLI worker on the (empty) spool exits immediately.
    assert main(["worker", "--spool", spool_dir, "--cache-dir", cache_dir, "--drain"]) == 0
    assert "0 task(s) done" in capsys.readouterr().out


def test_campaign_spool_backend_requires_spool_dir(tmp_path, capsys):
    code = main(
        ["campaign", "--preset", "smoke", "--num-runs", "1",
         "--backend", "spool", "--cache-dir", str(tmp_path / "cache")]
    )
    assert code == 2
    assert "spool_dir" in capsys.readouterr().err


def test_cache_stats_and_gc_cycle(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert (
        main(
            ["campaign", "--preset", "smoke", "--num-runs", "1", "--horizon-days", "0.25",
             "--strategies", "least-waste", "--cache-dir", cache_dir]
        )
        == 0
    )
    capsys.readouterr()

    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "entries      : 4" in out  # 4 scenarios x 1 strategy x 1 run
    assert "2" in out  # current digest version is listed

    # Dry run reports but removes nothing.
    assert main(["cache", "gc", "--cache-dir", cache_dir, "--digest-version", "2",
                 "--dry-run"]) == 0
    assert "would remove 4" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "entries      : 4" in capsys.readouterr().out

    # --older-than 0 prunes everything written before "now".
    assert main(["cache", "gc", "--cache-dir", cache_dir, "--older-than", "0"]) == 0
    assert "removed 4" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "entries      : 0" in capsys.readouterr().out


def test_cache_stats_rejects_a_missing_directory(tmp_path, capsys):
    """A typo'd --cache-dir must error, not create (and report) an empty cache."""
    assert main(["cache", "stats", "--cache-dir", str(tmp_path / "typo")]) == 2
    assert "no cache at" in capsys.readouterr().err
    assert not (tmp_path / "typo").exists()


def test_campaign_from_json_file(tmp_path, capsys):
    matrix = {
        "name": "json-sweep",
        "base": "smoke",
        "overrides": {
            "num_runs": 1,
            "horizon_days": 0.25,
            "strategies": ["least-waste"],
        },
        "axes": [
            {"name": "io", "key": "bandwidth_gbs", "values": [1.0, 4.0],
             "labels": ["weak", "strong"]},
        ],
    }
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(matrix))
    assert main(["campaign", "--file", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Campaign json-sweep" in out
    assert "io=weak" in out and "io=strong" in out


def test_campaign_from_toml_file_with_cli_overrides(tmp_path, capsys):
    pytest.importorskip("tomllib")
    path = tmp_path / "sweep.toml"
    path.write_text(
        'name = "toml-sweep"\n'
        'base = "smoke"\n'
        "[overrides]\n"
        "num_runs = 3\n"
        "horizon_days = 0.25\n"
        'strategies = ["least-waste"]\n'
        "[[axes]]\n"
        'name = "mtbf"\n'
        "[[axes.points]]\n"
        'label = "short"\n'
        "[axes.points.overrides]\n"
        "node_mtbf_years = 0.0438\n"
    )
    # The CLI's --num-runs beats the file's own overrides.
    assert main(["campaign", "--file", str(path), "--num-runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "Campaign toml-sweep" in out and "1 runs each" in out
    assert "mtbf=short" in out


def test_campaign_file_errors_exit_nonzero(tmp_path, capsys):
    assert main(["campaign", "--file", str(tmp_path / "missing.toml")]) == 2
    assert "error:" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x", "base": "smoke", "bogus_key": 1}')
    assert main(["campaign", "--file", str(bad)]) == 2
    assert "bogus_key" in capsys.readouterr().err


def test_main_reports_library_errors_on_stderr(capsys):
    # A ReproError inside a command must exit 2 with a one-line message.
    assert main(["campaign", "--preset", "smoke", "--num-runs", "1",
                 "--backend", "spool"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
